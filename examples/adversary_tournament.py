#!/usr/bin/env python
"""Adversary tournament: who delays broadcast longest?

Runs the full adversary portfolio over a range of ``n`` and prints the
leaderboard: measured ``t*`` per (adversary, n) with the Theorem 3.1
formulas alongside.  Shows the reproduction's central empirical story --
path heuristics top out at ``n − 1``, the cyclic chain-fan family reaches
the ``⌈(3n−1)/2⌉ − 2`` lower bound, and nothing crosses the
``⌈(1+√2)n − 1⌉`` upper bound.

Run: ``python examples/adversary_tournament.py``
"""

from __future__ import annotations

from repro.adversaries.zeiner import portfolio
from repro.analysis.sweep import sweep_adversaries
from repro.analysis.tables import format_table
from repro.core.bounds import lower_bound, upper_bound


def main() -> None:
    ns = [6, 8, 10, 12]
    # Build one factory per portfolio slot (names must be stable across n).
    slot_names = [a.name.split("[")[0] for a in portfolio(ns[0], include_search=True)]

    def factory_for(i):
        return lambda n: portfolio(n, include_search=True)[i]

    factories = {name: factory_for(i) for i, name in enumerate(slot_names)}
    result = sweep_adversaries(factories, ns)

    headers = ["adversary", *[f"n={n}" for n in ns]]
    rows = []
    for name, points in result.by_adversary().items():
        by_n = {p.n: p.t_star for p in points}
        rows.append([name, *[by_n.get(n, "-") for n in ns]])
    rows.append(["-- LB formula --", *[lower_bound(n) for n in ns]])
    rows.append(["-- UB formula --", *[upper_bound(n) for n in ns]])

    print(format_table(headers, rows, title="Adversary tournament (t* per n)"))

    print("\nWinners per n:")
    for n, point in sorted(result.best_per_n().items()):
        status = "== LB formula" if point.t_star == lower_bound(n) else ""
        print(f"  n={n}: {point.adversary} with t*={point.t_star} {status}")

    assert result.all_within_bounds(), "Theorem 3.1 upper bound violated!"
    print("\nAll measurements respect the Theorem 3.1 upper bound.")


if __name__ == "__main__":
    main()
