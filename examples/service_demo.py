"""Drive the simulation service end to end, in one process.

Starts a :class:`~repro.service.server.ServiceServer` on an ephemeral
port, then uses the HTTP client exactly as a remote caller would: submit
declarative run specs (one by one and as a batch), watch the
content-addressed cache answer repeats instantly, submit a sweep, submit
a whole paper experiment as a **task graph** (``POST /v1/tasks``) and
watch its per-node statuses, and read the ``/metrics`` counters.

Run with::

    PYTHONPATH=src python examples/service_demo.py
"""

from __future__ import annotations

import time

from repro.analysis.tables import format_table
from repro.experiments import experiment_graph, table_from_doc
from repro.service.client import ServiceClient
from repro.service.server import ServiceServer

RUN_SPECS = [
    {"adversary": "static-path", "n": 64, "backend": "bitset"},
    {"adversary": "rotating-path", "n": 64, "params": {"shift": 2}, "backend": "bitset"},
    {"adversary": "sorted-path", "n": 64, "params": {"ascending": False}, "backend": "bitset"},
    {"adversary": "cyclic", "n": 64, "backend": "bitset"},
]


def main() -> None:
    with ServiceServer() as server:
        client = ServiceClient.from_url(server.url)
        print(f"service up at {server.url}: {client.healthz()}")
        print(f"registered adversaries: {sorted(client.specs()['adversaries'])}\n")

        rows = []
        for spec in RUN_SPECS:
            t0 = time.perf_counter()
            doc = client.wait(client.submit_run(spec)["job_id"], timeout=300)
            cold_ms = (time.perf_counter() - t0) * 1e3
            t0 = time.perf_counter()
            warm = client.submit_run(spec)  # identical digest: cache answers
            warm_ms = (time.perf_counter() - t0) * 1e3
            assert warm["cached"] and warm["result"] == doc["result"]
            result = doc["result"]
            rows.append(
                (
                    result["adversary_name"],
                    result["t_star"],
                    f"{result['t_star'] / result['n']:.3f}",
                    f"{cold_ms:.1f}ms",
                    f"{warm_ms:.1f}ms",
                )
            )
        print(
            format_table(
                ["adversary", "t*", "t*/n", "cold submit", "warm (cached)"],
                rows,
                title="Runs at n=64 through the HTTP API",
            )
        )

        # Batch submission: one request, per-item job envelopes in order.
        batch = client.submit_runs(
            [
                {"adversary": "runner", "n": 48, "backend": "bitset"},
                {"adversary": "zeiner-style", "n": 48, "backend": "bitset"},
            ]
        )
        for envelope in batch:
            client.wait(envelope["job_id"], timeout=300)
        print(f"batch of {len(batch)} specs submitted via POST /v1/runs:batch")

        sweep = client.wait(
            client.submit_sweep(
                {
                    "adversaries": ["static-path", "rotating-path", "runner"],
                    "ns": [16, 24, 32],
                    "backend": "bitset",
                }
            )["job_id"],
            timeout=300,
        )
        print(f"sweep produced {len(sweep['result']['points'])} grid points")

        # A paper experiment as a task graph: E2's run grid + aggregation.
        graph, output = experiment_graph("E2")
        doc = graph.to_doc()
        envelope = client.submit_tasks(doc["tasks"], outputs=[output])
        done = client.wait(envelope["job_id"], timeout=300)
        stats = done["result"]["stats"]
        print(
            f"\nexperiment E2 as a task graph ({stats['tasks']} tasks, "
            f"{stats['runs_computed']} runs computed):"
        )
        print(table_from_doc(done["result"]["outputs"][output]).render())
        warm = client.submit_tasks(doc["tasks"], outputs=[output])
        assert warm["cached"] and warm["status"] == "done"
        print("warm resubmission answered from the graph cache\n")

        metrics = client.metrics()
        print(
            f"metrics: {metrics['computations']} computations for "
            f"{metrics['submitted']} submissions; cache "
            f"{metrics['cache']['hits']} hits / {metrics['cache']['misses']} misses "
            f"({metrics['cache']['bytes']} bytes held)"
        )


if __name__ == "__main__":
    main()
