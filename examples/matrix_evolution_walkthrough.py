#!/usr/bin/env python
"""The paper's analytical lens: watching the adjacency matrix evolve.

Section 3: "Our analysis is enabled by a novel perspective on the problem:
adjacency matrices with boolean entries."  This example makes that
perspective visible -- it renders the product graph ``G(t)`` as ASCII art
after every round under three adversaries (static path, random trees, and
the lower-bound construction) and tabulates the per-round potentials the
analysis tracks.

Run: ``python examples/matrix_evolution_walkthrough.py``
"""

from __future__ import annotations

import numpy as np

from repro.adversaries import CyclicFamilyAdversary
from repro.analysis.evolution import evolution_report, render_matrix
from repro.analysis.tables import format_table
from repro.core.broadcast import run_adversary
from repro.core.state import BroadcastState
from repro.trees.generators import path, random_tree


def show_run(title: str, trees, n: int) -> None:
    print(f"\n=== {title} ===")
    state = BroadcastState.initial(n)
    print(f"G(0):\n{render_matrix(state.reach_matrix_view())}")
    for i, tree in enumerate(trees, start=1):
        state.apply_tree_inplace(tree)
        print(f"\nG({i}) after parents={list(tree.parents)}:")
        print(render_matrix(state.reach_matrix_view()))
        if state.is_broadcast_complete():
            print(f"--> broadcast complete at t* = {i} "
                  f"(full row = node {state.broadcasters()[0]})")
            break


def main() -> None:
    n = 6

    # 1. The static path: the staircase pattern of interval reach sets.
    show_run("static path (the n-1 staircase)", [path(n)] * (n - 1), n)

    # 2. Random trees: fast, irregular fill-in.
    rng = np.random.default_rng(4)
    show_run("random trees", [random_tree(n, rng) for _ in range(n * n)], n)

    # 3. The lower-bound adversary: cyclic intervals, maximal delay.
    result = run_adversary(CyclicFamilyAdversary(n), n, keep_trees=True)
    show_run(
        f"cyclic chain-fan adversary (t* = {result.t_star})",
        result.trees,
        n,
    )

    # 4. The potentials the analysis watches, tabulated for the last run.
    report = evolution_report(result.trees, n)
    rows = [
        (
            p.round_index,
            d.new_edges,
            p.max_row,
            p.min_row,
            p.rows_above_half,
            f"{p.quadratic_row_potential:.3f}",
        )
        for p, d in zip(report.potentials, report.deltas)
    ]
    print()
    print(
        format_table(
            ["round", "new edges", "max |R|", "min |R|", "rows > n/2", "sum|R|^2/n^2"],
            rows,
            title="Matrix-evolution potentials under the lower-bound adversary",
        )
    )
    print("\nEvery round adds >= 1 edge (Section 2):",
          report.invariant_min_one_new_edge())


if __name__ == "__main__":
    main()
