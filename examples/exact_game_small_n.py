#!/usr/bin/env python
"""Exact game solving: the true t*(T_n) for small n.

Solves the broadcast game exhaustively for n = 2..5 (optionally 6 with
``--n6``, ~30 minutes), prints the exact values against the Theorem 3.1
formulas, and replays an optimal adversary line for n = 5, classifying
the tree shapes optimal play uses.

Key reproduced finding: the exact value equals the LOWER bound formula at
every solvable size -- the open gap of the paper's Section 5 is, at small
n, entirely on the upper-bound side.

Run: ``python examples/exact_game_small_n.py [--n6]``
"""

from __future__ import annotations

import sys

from repro.adversaries.exact import ExactGameSolver
from repro.analysis.tables import format_table
from repro.core.bounds import lower_bound, upper_bound
from repro.core.broadcast import run_sequence
from repro.trees.canonical import classify_shape


def main() -> None:
    sizes = [2, 3, 4, 5]
    if "--n6" in sys.argv:
        sizes.append(6)

    rows = []
    solvers = {}
    for n in sizes:
        solver = ExactGameSolver(n, max_states=30_000_000)
        result = solver.solve()
        solvers[n] = solver
        rows.append(
            (
                n,
                lower_bound(n),
                result.t_star,
                upper_bound(n),
                result.tree_count,
                result.states_explored,
                f"{result.elapsed_seconds:.2f}s",
            )
        )
    print(
        format_table(
            ["n", "LB formula", "exact t*(T_n)", "UB formula", "|T_n|", "states", "time"],
            rows,
            title="Exact broadcast game values",
        )
    )
    for n, lb, exact, ub, *_ in rows:
        marker = "tight!" if exact == lb else f"gap {exact - lb} above LB"
        print(f"  n={n}: lower bound is {marker}")

    # Replay optimal play at the largest quick size.
    n = 5
    print(f"\nOptimal adversary line for n={n}:")
    seq = solvers[n].optimal_sequence()
    for i, tree in enumerate(seq, start=1):
        print(
            f"  round {i}: {classify_shape(tree):<9} "
            f"root={tree.root} parents={list(tree.parents)}"
        )
    check = run_sequence(seq, n=n)
    print(f"replayed through the plain engine: t* = {check.t_star}")


if __name__ == "__main__":
    main()
