#!/usr/bin/env python
"""Scaling study with terminal graphics: t* vs n across strategies.

Sweeps broadcast time over ``n`` for the static path, a random adversary,
and the lower-bound witness, renders the comparison as an ASCII chart and
per-run leader-growth sparklines, and fits slopes -- the "is it linear,
and with which constant?" question the paper answers.

Run: ``python examples/scaling_study.py``
"""

from __future__ import annotations

from repro.adversaries import (
    CyclicFamilyAdversary,
    RandomTreeAdversary,
    StaticTreeAdversary,
)
from repro.analysis.plots import series_compare, sparkline, trajectory_panel
from repro.analysis.stats import linear_fit
from repro.analysis.tables import format_table
from repro.core.bounds import lower_bound, upper_bound
from repro.core.broadcast import run_adversary
from repro.engine.runner import run_engine
from repro.trees import path


def main() -> None:
    ns = [6, 8, 10, 12, 14, 16, 18, 20]

    series = {"static path": [], "random trees": [], "cyclic chain-fan": []}
    for n in ns:
        series["static path"].append(
            run_adversary(StaticTreeAdversary(path(n)), n).t_star
        )
        series["random trees"].append(
            run_adversary(RandomTreeAdversary(n, seed=1), n).t_star
        )
        series["cyclic chain-fan"].append(
            run_adversary(CyclicFamilyAdversary(n), n).t_star
        )
    series["LB formula"] = [lower_bound(n) for n in ns]
    series["UB formula"] = [upper_bound(n) for n in ns]

    print(series_compare(ns, series, width=64, height=16))

    rows = []
    for name, ys in series.items():
        fit = linear_fit(ns, ys)
        rows.append((name, f"{fit.slope:.3f}", f"{fit.r_squared:.3f}"))
    print()
    print(
        format_table(
            ["series", "slope (t*/n)", "R^2"],
            rows,
            title="Linear fits: the paper's constants are 1.5 (LB) and 2.414 (UB)",
        )
    )

    # Leader-growth sparklines: how fast the best-informed node grows.
    print()
    trajectories = {}
    for name, factory in (
        ("static path", lambda n: StaticTreeAdversary(path(n))),
        ("random trees", lambda n: RandomTreeAdversary(n, seed=1)),
        ("cyclic chain-fan", CyclicFamilyAdversary),
    ):
        run = run_engine(factory(16), 16)
        trajectories[f"{name} (t*={run.t_star})"] = run.metrics.max_reach_trajectory
    print(
        trajectory_panel(
            "Leader reach-set size per round at n=16 "
            "(the adversary's job is to flatten these):",
            trajectories,
        )
    )


if __name__ == "__main__":
    main()
