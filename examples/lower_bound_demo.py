#!/usr/bin/env python
"""The lower-bound witness, round by round.

Runs the cyclic chain-fan adversary at a chosen ``n`` and narrates what
the paper's matrix perspective sees each round: which tree shape was
played, who stalled, who gained, and how the reach sets evolve as cyclic
intervals.  Finishes with the Theorem 3.1 sandwich report and an
independent certificate of the achieved broadcast time.

Run: ``python examples/lower_bound_demo.py [n]``
"""

from __future__ import annotations

import sys

from repro.adversaries import CyclicFamilyAdversary
from repro.analysis.certificates import certify_sequence
from repro.analysis.evolution import render_matrix
from repro.analysis.stalling import stall_report
from repro.core.bounds import lower_bound, upper_bound
from repro.core.state import BroadcastState
from repro.core.theorem import sandwich
from repro.trees.canonical import classify_shape


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    adversary = CyclicFamilyAdversary(n)
    state = BroadcastState.initial(n)
    played = []

    print(f"Cyclic chain-fan adversary on n={n} processes")
    print(f"target: t* = ⌈(3n−1)/2⌉ − 2 = {lower_bound(n)}  (UB: {upper_bound(n)})\n")

    t = 0
    while not state.is_broadcast_complete():
        t += 1
        tree = adversary.next_tree(state, t)
        report = stall_report(state, tree)
        state.apply_tree_inplace(tree)
        played.append(tree)
        sizes = state.reach_sizes()
        intervals = [sorted(state.reach_set(x)) for x in range(n)]
        print(
            f"round {t:>2}: {classify_shape(tree):<11} root={tree.root} "
            f"stalled {len(report.stalled)}/{n} nodes; "
            f"reach sizes {sizes.tolist()}"
        )
        if n <= 10:
            print(f"          reach sets: {intervals}")

    print(f"\nbroadcast completed at t* = {t}")
    print(f"broadcasters: {state.broadcasters()}")
    print("\nfinal product graph G(t*) (rows = reach sets):")
    print(render_matrix(state.reach_matrix_view()))

    cert = certify_sequence(played, t, n)
    print(f"\nindependent certificate: t*={cert.t_star}, "
          f"UB respected: {cert.respects_upper_bound}, "
          f"LB formula met: {cert.meets_lower_bound}")
    print(sandwich(n, t))


if __name__ == "__main__":
    main()
