#!/usr/bin/env python
"""Quickstart: the paper's model in five minutes.

Walks through the objects of Section 2 -- rooted trees, the product graph,
broadcast time -- reproduces the static-path example, prints the Figure 1
bound table at one ``n``, and runs the lower-bound witness adversary.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

from repro import broadcast_time_adversary, lower_bound, sandwich, upper_bound
from repro.adversaries import CyclicFamilyAdversary, StaticTreeAdversary
from repro.analysis.tables import format_table
from repro.core.bounds import all_bounds
from repro.core.broadcast import run_sequence
from repro.trees import path, star


def main() -> None:
    n = 12

    # --- Section 2: round graphs are rooted trees (+ implicit self-loops).
    p = path(n)
    s = star(n)
    print("A rooted tree is a parent array; the root points to itself:")
    print(f"  path : {list(p.parents)}")
    print(f"  star : {list(s.parents)}")

    # --- The paper's static-path example: t* = n - 1.
    result = run_sequence([p] * (n * n), n)
    print(f"\nStatic path broadcast time: {result.t_star} (paper says n-1 = {n - 1})")
    print(f"First broadcaster: node {result.broadcasters[0]} (the path's root)")

    # --- The other extreme: a star finishes in one round.
    print(f"Static star broadcast time: {run_sequence([s], n).t_star}")

    # --- Figure 1 at this n: every known bound.
    rows = [(name, value) for name, value in all_bounds(n).items()]
    print()
    print(format_table(["bound", "value"], rows, title=f"Figure 1 formulas at n={n}"))

    # --- Theorem 3.1 in action: the strongest adversary we have.
    t_static = broadcast_time_adversary(StaticTreeAdversary(p), n)
    t_cyclic = broadcast_time_adversary(CyclicFamilyAdversary(n), n)
    print(f"\nStatic path adversary : t* = {t_static}")
    print(f"Cyclic chain-fan      : t* = {t_cyclic}")
    print(f"Lower-bound formula   : {lower_bound(n)}  (matched: {t_cyclic == lower_bound(n)})")
    print(f"Upper-bound formula   : {upper_bound(n)}")
    print(f"\nSandwich report: {sandwich(n, t_cyclic)}")


if __name__ == "__main__":
    main()
