"""repro -- reproduction of "Broadcasting Time in Dynamic Rooted Trees is
Linear" (El-Hayek, Henzinger, Schmid; PODC 2022, arXiv:2211.11352).

The library implements the paper's model exactly -- synchronous broadcast
over adversarial sequences of rooted trees, analysed through the evolution
of boolean adjacency matrices -- plus every substrate the reproduction
needs: the rooted-tree universe ``T_n``, adversary strategies (explicit
constructions, greedy/beam search, and an exact game solver for small
``n``), a process-level heard-of simulator, the bound formulas of Figure 1
and Theorem 3.1, and analysis/benchmark harnesses.

Quickstart
----------
>>> from repro import broadcast_time_adversary, upper_bound, lower_bound
>>> from repro.adversaries import StaticTreeAdversary
>>> from repro.trees import path
>>> n = 16
>>> t = broadcast_time_adversary(StaticTreeAdversary(path(n)), n)
>>> t == n - 1                      # the paper's static-path example
True
>>> lower_bound(n) <= upper_bound(n)
True

Matrix kernels run on a pluggable backend (``dense`` boolean matrices or
the word-packed ``bitset``; select via ``REPRO_BACKEND``, the CLI's
``--backend``, or explicitly):

>>> t == broadcast_time_adversary(StaticTreeAdversary(path(n)), n,
...                               backend="bitset")
True

Batch many runs into one vectorized step per round with
:class:`repro.engine.BatchRunner` / :func:`repro.engine.run_multi_seed`;
see README.md for backend selection and measured speedups.
"""

from repro._version import __version__
from repro.errors import (
    AdversaryError,
    DimensionMismatchError,
    InvalidGraphError,
    InvalidTreeError,
    ReproError,
    SearchBudgetExceeded,
    SimulationError,
    TraceError,
)
from repro.core import (
    BroadcastResult,
    BroadcastState,
    broadcast_time_adversary,
    broadcast_time_sequence,
    check_theorem_31,
    lower_bound,
    run_adversary,
    run_sequence,
    sandwich,
    upper_bound,
)
from repro.trees import RootedTree

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "InvalidTreeError",
    "InvalidGraphError",
    "DimensionMismatchError",
    "AdversaryError",
    "SearchBudgetExceeded",
    "SimulationError",
    "TraceError",
    # core
    "BroadcastState",
    "BroadcastResult",
    "broadcast_time_sequence",
    "broadcast_time_adversary",
    "run_sequence",
    "run_adversary",
    "lower_bound",
    "upper_bound",
    "check_theorem_31",
    "sandwich",
    # trees
    "RootedTree",
]
