"""Span-based tracer: thread-local context, JSONL sink, Chrome export.

One trace is a tree of **spans** sharing a 32-hex ``trace_id``; each span
is a named, timed unit of work with a 16-hex ``span_id`` and a
``parent_id`` pointing at the span that was active when it opened.  The
service's request handler opens the root span, the scheduler's worker
threads re-activate the request's context around job dispatch, the
task-graph runner opens one span per node, the executors wrap dispatch,
and the kernel observer (:mod:`repro.obs.profile`) wraps individual
compose calls -- so one HTTP request yields one connected tree:
``request -> job -> node -> executor -> kernel``.

Design constraints, in priority order:

* **Disabled means free.**  :func:`span` checks one module-level flag
  and returns a shared no-op when tracing is off; no allocation, no
  thread-local access, no clock read.  The kernel hot loops additionally
  gate on the observer being ``None`` (see :mod:`repro.obs.profile`), so
  a disabled tracer stays within the <2% overhead budget by never
  touching the per-round path at all.
* **Context crosses threads and processes explicitly.**  The active span
  stack is thread-local.  Handoffs serialize a :class:`TraceContext`
  (``to_doc``/``from_doc``) into whatever payload crosses the boundary:
  the scheduler stores it on the :class:`~repro.service.scheduler.Job`,
  the sharded executor packs it into the spawn-worker payload, and HTTP
  carries it as a W3C ``traceparent``-style header.  Spawn workers also
  inherit ``REPRO_TRACE`` through the environment, so they append to the
  same sink (``O_APPEND``; one line per span stays atomic at these
  sizes).
* **The sink is append-only JSONL.**  One JSON object per finished span;
  readers tolerate a torn final line.  :func:`chrome_trace` converts a
  span list to Chrome trace-event JSON (``ph="X"`` complete events,
  microsecond units) loadable in Perfetto / ``chrome://tracing``.

Enable with ``REPRO_TRACE=/path/to/trace.jsonl`` in the environment (in
effect at import) or programmatically with :func:`enable`.
"""

from __future__ import annotations

import json
import os
import re
import secrets
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, TextIO

#: Environment variable: when set to a path, tracing is enabled at
#: import and spans append there.  Inherited by ``spawn`` workers, which
#: is exactly how sharded-executor kernel spans land in the same file.
ENV_TRACE = "REPRO_TRACE"

_HEADER_RE = re.compile(r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")


@dataclass(frozen=True)
class TraceContext:
    """An addressable position in one trace: ``(trace_id, span_id)``."""

    trace_id: str
    span_id: str

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context (new trace id, new span id)."""
        return cls(secrets.token_hex(16), secrets.token_hex(8))

    def child(self) -> "TraceContext":
        """Same trace, fresh span id."""
        return TraceContext(self.trace_id, secrets.token_hex(8))

    def to_header(self) -> str:
        """W3C ``traceparent``-style header value."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_header(cls, value: Optional[str]) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` header; ``None`` on absent/malformed."""
        if not value:
            return None
        match = _HEADER_RE.match(value.strip().lower())
        if match is None:
            return None
        trace_id, span_id = match.group(2), match.group(3)
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return cls(trace_id, span_id)

    def to_doc(self) -> Dict[str, str]:
        """JSON-safe form for payloads that cross thread/process seams."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_doc(cls, doc: Optional[Dict[str, Any]]) -> Optional["TraceContext"]:
        if not doc:
            return None
        trace_id = doc.get("trace_id")
        span_id = doc.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        return cls(trace_id, span_id)


# ----------------------------------------------------------------------
# Tracer state
# ----------------------------------------------------------------------

_enabled = False
_sink_path: Optional[str] = None
_sink: Optional[TextIO] = None
_sink_lock = threading.Lock()
_tls = threading.local()


def _stack() -> List[TraceContext]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def enabled() -> bool:
    """True when spans are being recorded."""
    return _enabled


def sink_path() -> Optional[str]:
    """The active JSONL sink path, or ``None`` when disabled."""
    return _sink_path


def enable(path: str) -> None:
    """Record spans to ``path`` (append-only JSONL) from now on."""
    global _enabled, _sink_path, _sink
    with _sink_lock:
        if _sink is not None:
            _sink.close()
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        _sink = open(path, "a", encoding="utf-8")
        _sink_path = path
        _enabled = True
    from repro.obs import profile

    profile.sync_observer()


def disable() -> None:
    """Stop recording and close the sink."""
    global _enabled, _sink_path, _sink
    with _sink_lock:
        _enabled = False
        _sink_path = None
        if _sink is not None:
            _sink.close()
            _sink = None
    from repro.obs import profile

    profile.sync_observer()


def _write(doc: Dict[str, Any]) -> None:
    with _sink_lock:
        if _sink is None:
            return
        try:
            _sink.write(json.dumps(doc, sort_keys=True) + "\n")
            _sink.flush()
        except (OSError, ValueError):  # pragma: no cover - sink torn away
            pass


def current_context() -> Optional[TraceContext]:
    """The innermost active context on this thread, or ``None``."""
    stack = getattr(_tls, "stack", None)
    if not stack:
        return None
    return stack[-1]


class _ContextScope:
    """Activate a remote parent context without emitting a span.

    Works even when tracing is disabled, so a trace id arriving on a
    ``traceparent`` header still flows into job records and the journal
    with no spans recorded.  ``ctx=None`` is a no-op scope.
    """

    __slots__ = ("_ctx",)

    def __init__(self, ctx: Optional[TraceContext]) -> None:
        self._ctx = ctx

    def __enter__(self) -> Optional[TraceContext]:
        if self._ctx is not None:
            _stack().append(self._ctx)
        return self._ctx

    def __exit__(self, *exc_info: Any) -> None:
        if self._ctx is not None:
            stack = _stack()
            if stack and stack[-1] is self._ctx:
                stack.pop()


def context(ctx: Optional[TraceContext]) -> _ContextScope:
    """Scope manager: make ``ctx`` the current parent for nested spans."""
    return _ContextScope(ctx)


def parented(header: Optional[str]) -> _ContextScope:
    """Scope manager: adopt a W3C ``traceparent`` header as the parent.

    ``parented(item["traceparent"])`` is how a fleet worker attaches
    its execution spans to the trace of the HTTP request that created
    the work item -- across a process *and machine* boundary.  A
    missing/malformed header yields a no-op scope, same as
    :func:`context` with ``None``.
    """
    return _ContextScope(TraceContext.from_header(header))


class _NoopSpan:
    """Shared do-nothing span: the entire disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set_attrs(self, **attrs: Any) -> None:
        pass

    @property
    def ctx(self) -> Optional[TraceContext]:
        return None


_NOOP = _NoopSpan()


class Span:
    """One recorded unit of work; use via ``with span(name, ...) as sp:``."""

    __slots__ = ("name", "attrs", "_ctx", "_parent_id", "_t0", "_p0")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self._ctx: Optional[TraceContext] = None

    @property
    def ctx(self) -> Optional[TraceContext]:
        """This span's own context (valid once entered)."""
        return self._ctx

    def set_attrs(self, **attrs: Any) -> None:
        """Attach/overwrite attributes on the running span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        parent = current_context()
        self._ctx = parent.child() if parent is not None else TraceContext.new()
        self._parent_id = parent.span_id if parent is not None else None
        _stack().append(self._ctx)
        self._t0 = time.time()
        self._p0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        dur = time.perf_counter() - self._p0
        stack = _stack()
        if stack and stack[-1] is self._ctx:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        _write(
            {
                "trace_id": self._ctx.trace_id,
                "span_id": self._ctx.span_id,
                "parent_id": self._parent_id,
                "name": self.name,
                "ts": self._t0,
                "dur": dur,
                "attrs": self.attrs,
                "pid": os.getpid(),
                "thread": threading.current_thread().name,
            }
        )
        return False


def span(name: str, **attrs: Any):
    """Open a span under the current context (no-op when disabled)."""
    if not _enabled:
        return _NOOP
    return Span(name, attrs)


# ----------------------------------------------------------------------
# Reading + export
# ----------------------------------------------------------------------


def read_spans(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL span file, tolerating a torn final line."""
    spans: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError:
        return spans
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                continue  # torn final write (process killed mid-span)
            raise
        if isinstance(doc, dict):
            spans.append(doc)
    return spans


def span_trees(spans: List[Dict[str, Any]]) -> Dict[str, List[Dict[str, Any]]]:
    """Group spans into trees: ``{trace_id: [root spans]}``.

    Each returned span dict gains a ``"children"`` list.  A span whose
    ``parent_id`` is missing from its trace (e.g. the parent came from a
    remote caller that did not export here) is treated as a root.
    """
    by_trace: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for raw in spans:
        node = dict(raw)
        node["children"] = []
        by_trace.setdefault(node["trace_id"], {})[node["span_id"]] = node
    forests: Dict[str, List[Dict[str, Any]]] = {}
    for trace_id, nodes in by_trace.items():
        roots: List[Dict[str, Any]] = []
        for node in nodes.values():
            parent = nodes.get(node.get("parent_id"))
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        forests[trace_id] = roots
    return forests


def chrome_trace(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert spans to Chrome trace-event JSON (Perfetto-loadable)."""
    events = []
    for sp in spans:
        events.append(
            {
                "name": sp.get("name", "?"),
                "ph": "X",
                "ts": round(float(sp.get("ts", 0.0)) * 1e6, 3),
                "dur": round(float(sp.get("dur", 0.0)) * 1e6, 3),
                "pid": sp.get("pid", 0),
                "tid": sp.get("thread", "main"),
                "args": {
                    **(sp.get("attrs") or {}),
                    "trace_id": sp.get("trace_id"),
                    "span_id": sp.get("span_id"),
                    "parent_id": sp.get("parent_id"),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# Environment activation: a spawn worker (or any fresh process) with
# REPRO_TRACE set starts recording on first import, which is what makes
# sharded-executor kernel spans land in the parent's sink file.
_env_path = os.environ.get(ENV_TRACE, "").strip()
if _env_path:
    enable(_env_path)
del _env_path


__all__ = [
    "ENV_TRACE",
    "TraceContext",
    "Span",
    "span",
    "context",
    "parented",
    "current_context",
    "enable",
    "disable",
    "enabled",
    "sink_path",
    "read_spans",
    "span_trees",
    "chrome_trace",
]
