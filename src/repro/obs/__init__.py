"""Unified observability: tracing, typed metrics, profiling hooks.

Zero-dependency (stdlib-only) subsystem wired through every layer of the
stack:

* :mod:`repro.obs.trace` -- span tracer with thread-local context,
  ``traceparent`` header propagation, an append-only JSONL sink, and
  Chrome trace-event export (``repro-broadcast obs export --chrome``);
* :mod:`repro.obs.metrics` -- counters/gauges/histograms behind
  ``/metrics`` (JSON shape unchanged; ``?format=prometheus`` added);
* :mod:`repro.obs.profile` -- per-kernel invocation/time accounting and
  the executor decision-vs-kernel phase split (``repro-broadcast obs
  top``).

Everything is off by default and costs one flag/``is None`` check when
disabled.  Enable via ``REPRO_TRACE=<path>`` / ``REPRO_PROFILE=1`` in
the environment, ``serve --trace <path>``, or programmatically.
"""

from repro.obs import metrics, profile, trace

__all__ = ["trace", "metrics", "profile"]
