"""Typed metrics: counters, gauges, histograms, Prometheus exposition.

:class:`Registry` replaces the service's hand-rolled counter dicts with
typed, individually-locked instruments while keeping the ``/metrics``
JSON shape byte-compatible (the existing tests pin it):

* :class:`Counter` -- monotonically increasing, optionally labelled
  (the scheduler labels submissions by tenant);
* :class:`Gauge` -- a settable level (queue depth, cache bytes);
* :class:`Histogram` -- fixed-bucket distribution with exact ``sum`` /
  ``count`` and interpolated percentiles (request latency p50/p95/p99).

:meth:`Registry.to_prometheus` renders the registered instruments in the
Prometheus text exposition format (``# HELP`` / ``# TYPE`` + samples;
histograms as cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``),
and :func:`parse_prometheus` is the matching validating parser -- the
round-trip the CI obs smoke job asserts.  :func:`flatten_json_metrics`
turns the nested legacy ``/metrics`` JSON blocks (jobs, cache, tenants)
into additional gauge samples so one scrape sees the whole picture.

Everything is stdlib-only and safe under free-threaded access: each
instrument carries its own lock, so reading one block never holds
another block's lock (see the staleness contract on
:meth:`repro.service.scheduler.JobScheduler.metrics`).
"""

from __future__ import annotations

import re
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): sub-millisecond service hits up to
#: multi-second graph submissions.  The +Inf bucket is implicit.
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')

LabelKey = Tuple[Tuple[str, str], ...]


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary key into a legal Prometheus metric name."""
    name = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not name or not _NAME_RE.match(name):
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: LabelKey) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in labels)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """Shared shell: name, help text, label names, per-instrument lock."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, Any]) -> LabelKey:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        return tuple((k, str(labels[k])) for k in self.labelnames)

    def header_lines(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Instrument):
    """Monotonic counter, optionally labelled."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        """One label-set's value, or the sum over all label sets."""
        with self._lock:
            if labels or not self.labelnames:
                return self._values.get(self._key(labels), 0)
            return sum(self._values.values())

    def snapshot(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._values)

    def expose(self) -> List[str]:
        lines = self.header_lines()
        snap = self.snapshot()
        if not snap and not self.labelnames:
            snap = {(): 0}
        for key in sorted(snap):
            lines.append(f"{self.name}{_render_labels(key)} {_format_value(snap[key])}")
        return lines


class Gauge(_Instrument):
    """A settable level; ``set`` replaces, ``inc``/``dec`` adjust."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0)

    def snapshot(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._values)

    def expose(self) -> List[str]:
        lines = self.header_lines()
        for key in sorted(self.snapshot()):
            lines.append(
                f"{self.name}{_render_labels(key)} {_format_value(self.snapshot()[key])}"
            )
        return lines


class Histogram(_Instrument):
    """Fixed-bucket histogram with exact sum/count, interpolated quantiles."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, ())
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> Optional[float]:
        """Interpolated quantile ``q`` in [0, 1]; ``None`` when empty.

        Linear interpolation within the winning bucket; values landing in
        the +Inf overflow report the largest finite bound (a floor, which
        is the honest direction for an alerting percentile).
        """
        with self._lock:
            if self._count == 0:
                return None
            target = q * self._count
            cum = 0
            lo = 0.0
            for i, bound in enumerate(self.buckets):
                prev = cum
                cum += self._counts[i]
                if cum >= target:
                    frac = 0.0 if self._counts[i] == 0 else (target - prev) / self._counts[i]
                    return lo + (bound - lo) * min(1.0, max(0.0, frac))
                lo = bound
            return self.buckets[-1]

    def summary(self) -> Dict[str, Any]:
        """The JSON shape ``/metrics`` serves for this histogram."""
        with self._lock:
            count, total = self._count, self._sum
        doc: Dict[str, Any] = {"count": count, "sum_s": round(total, 6)}
        for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            value = self.percentile(q)
            doc[f"{label}_ms"] = None if value is None else round(value * 1000.0, 3)
        return doc

    def expose(self) -> List[str]:
        lines = self.header_lines()
        with self._lock:
            counts = list(self._counts)
            total, count = self._sum, self._count
        cum = 0
        for i, bound in enumerate(self.buckets):
            cum += counts[i]
            lines.append(
                f'{self.name}_bucket{{le="{_format_value(bound)}"}} {cum}'
            )
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{self.name}_sum {_format_value(total)}")
        lines.append(f"{self.name}_count {count}")
        return lines


class Registry:
    """Get-or-create home for named instruments; one per service."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls: type, name: str, **kwargs: Any) -> Any:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            instrument = cls(name, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help=help, labelnames=labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help=help, labelnames=labelnames)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help=help, buckets=buckets)

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def to_prometheus(self, extra_lines: Iterable[str] = ()) -> str:
        """Text exposition of every registered instrument (+ extras)."""
        lines: List[str] = []
        for instrument in sorted(self.instruments(), key=lambda i: i.name):
            lines.extend(instrument.expose())
        lines.extend(extra_lines)
        return "\n".join(lines) + "\n"


class CounterMap:
    """Dict-shaped facade over named registry counters.

    The scheduler and HTTP layer historically kept ``{"submitted": 0,
    ...}`` dicts and served them verbatim on ``/metrics``; this keeps
    that JSON shape (``to_dict`` returns plain ints under the original
    keys) while the values live in typed, individually-locked
    :class:`Counter` instruments that also render to Prometheus.
    """

    def __init__(
        self,
        registry: Registry,
        prefix: str,
        names: Sequence[str],
        help: str = "",
    ) -> None:
        self._counters: Dict[str, Counter] = {
            name: registry.counter(
                f"{prefix}_{sanitize_metric_name(name)}_total",
                help=help and f"{help} ({name})",
            )
            for name in names
        }

    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name].inc(amount)

    def __getitem__(self, name: str) -> int:
        return int(self._counters[name].value())

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def to_dict(self) -> Dict[str, int]:
        return {name: int(c.value()) for name, c in self._counters.items()}


# ----------------------------------------------------------------------
# Legacy-JSON flattening + exposition parsing
# ----------------------------------------------------------------------


def flatten_json_metrics(
    doc: Dict[str, Any], prefix: str = "repro"
) -> List[str]:
    """Numeric leaves of a nested JSON doc as Prometheus gauge samples.

    ``{"jobs": {"done": 3}, "cache": {"hits": 7}}`` becomes
    ``repro_jobs_done 3`` / ``repro_cache_hits 7``.  Non-numeric leaves
    (kernel names, paths) are skipped -- they have no sample type.
    """
    lines: List[str] = []

    def walk(node: Any, path: List[str]) -> None:
        if isinstance(node, dict):
            for key in sorted(node):
                walk(node[key], path + [str(key)])
        elif isinstance(node, bool):
            return
        elif isinstance(node, (int, float)):
            name = sanitize_metric_name("_".join([prefix] + path))
            lines.append(f"{name} {_format_value(float(node))}")

    walk(doc, [])
    return lines


def parse_prometheus(text: str) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Validating parser for the text exposition format.

    Returns ``{sample_name: [(labels, value), ...]}`` and raises
    :class:`ValueError` on any malformed line -- the round-trip check the
    obs tests and CI smoke job run against ``/metrics?format=prometheus``.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a valid sample: {line!r}")
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for m in _LABEL_RE.finditer(raw_labels):
                labels[m.group("key")] = (
                    m.group("value")
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                consumed = m.end()
            leftover = raw_labels[consumed:].strip().strip(",")
            if leftover:
                raise ValueError(
                    f"line {lineno}: malformed labels {raw_labels!r}"
                )
        raw_value = match.group("value")
        try:
            value = float("inf") if raw_value == "+Inf" else float(raw_value)
        except ValueError:
            raise ValueError(
                f"line {lineno}: not a numeric value: {raw_value!r}"
            ) from None
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "CounterMap",
    "sanitize_metric_name",
    "flatten_json_metrics",
    "parse_prometheus",
]
