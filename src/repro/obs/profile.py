"""Profiling hooks: per-kernel accounting and decision/kernel phase split.

Two complementary views of where engine time goes:

* **Kernel profile** -- every compose that flows through the kernel seam
  (:func:`repro.core.kernels.graph_compose`, the repeated-squaring t*
  search, and the backend tree-compose the executor hot loops drive via
  :class:`~repro.core.state.BroadcastState`) is counted and timed under
  ``(backend namespace, kernel name, n-bucket)``.  Buckets are powers of
  two (``n<=64``, ``n<=128``, ...) so a long-lived service aggregates
  usefully instead of accumulating one row per distinct ``n``.
* **Phase profile** -- executors split each run into *decision* time
  (adversary calls: ``next_tree`` / ``next_parents`` / schedule cursors)
  and *kernel* time (backend composes).  This is exactly the overlap
  budget the ROADMAP's async-executor item needs: an asyncio executor
  can only win ``min(decision, kernel)`` per round, and this measures
  both sides.

The hook mechanism keeps the disabled path free: the kernel seam holds a
module-global observer that defaults to ``None`` -- call sites do one
attribute load + ``is None`` branch and take the raw path.  The observer
is installed only while profiling or tracing is enabled
(:func:`sync_observer`), at which point it times the wrapped call,
records the profile row, and (when tracing) emits a ``kernel`` span.

Enable with ``REPRO_PROFILE=1`` in the environment or :func:`enable`;
``repro-broadcast serve --trace`` enables both tracing and profiling.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, Tuple

#: Environment variable: any non-empty value enables profiling at import.
ENV_PROFILE = "REPRO_PROFILE"

_lock = threading.Lock()
_enabled = False
_kernels: Dict[Tuple[str, str, str], Dict[str, float]] = {}
_phases: Dict[str, Dict[str, float]] = {}


def n_bucket(n: int) -> str:
    """Power-of-two size bucket label for ``n`` (``n<=64``, ``n<=128``...)."""
    if n <= 1:
        return "n<=1"
    return f"n<={1 << (int(n) - 1).bit_length()}"


def enabled() -> bool:
    """True when kernel/phase profiles are being recorded."""
    return _enabled


def enable() -> None:
    """Start recording kernel and phase profiles."""
    global _enabled
    _enabled = True
    sync_observer()


def disable() -> None:
    """Stop recording (existing profile rows are kept until :func:`reset`)."""
    global _enabled
    _enabled = False
    sync_observer()


def reset() -> None:
    """Drop all accumulated profile rows."""
    with _lock:
        _kernels.clear()
        _phases.clear()


def record_kernel(namespace: str, kernel: str, n: int, seconds: float) -> None:
    """Fold one kernel invocation into the profile."""
    key = (namespace, kernel, n_bucket(n))
    with _lock:
        row = _kernels.get(key)
        if row is None:
            row = {"calls": 0, "seconds": 0.0}
            _kernels[key] = row
        row["calls"] += 1
        row["seconds"] += seconds


def record_phases(executor: str, decision_s: float, kernel_s: float) -> None:
    """Fold one run's decision/kernel split into the per-executor totals."""
    with _lock:
        row = _phases.get(executor)
        if row is None:
            row = {"runs": 0, "decision_s": 0.0, "kernel_s": 0.0}
            _phases[executor] = row
        row["runs"] += 1
        row["decision_s"] += decision_s
        row["kernel_s"] += kernel_s


def kernel_profile() -> Dict[str, Dict[str, float]]:
    """Snapshot: ``{"namespace/kernel/bucket": {"calls", "seconds"}}``."""
    with _lock:
        return {
            "/".join(key): dict(row) for key, row in sorted(_kernels.items())
        }


def phase_profile() -> Dict[str, Dict[str, float]]:
    """Snapshot: ``{executor: {"runs", "decision_s", "kernel_s"}}``."""
    with _lock:
        return {name: dict(row) for name, row in sorted(_phases.items())}


# ----------------------------------------------------------------------
# The kernel-seam observer
# ----------------------------------------------------------------------


def _observe_compose(
    namespace: str, kernel: str, n: int, fn: Callable[[], Any]
) -> Any:
    """Time + record one compose call; emit a span when tracing."""
    from repro.obs import trace

    t0 = time.perf_counter()
    if trace.enabled():
        with trace.span("kernel", backend=namespace, kernel=kernel, n=n):
            out = fn()
    else:
        out = fn()
    if _enabled:
        record_kernel(namespace, kernel, n, time.perf_counter() - t0)
    return out


def sync_observer() -> None:
    """Install/remove the kernel-seam observer to match the enabled flags.

    Called by :func:`enable` / :func:`disable` here and by
    :func:`repro.obs.trace.enable` / ``disable``: the observer is live
    iff profiling or tracing is on, so the disabled hot path stays a
    bare ``is None`` check.
    """
    from repro.core import kernels
    from repro.obs import trace

    if _enabled or trace.enabled():
        kernels.set_compose_observer(_observe_compose)
    else:
        kernels.set_compose_observer(None)


if os.environ.get(ENV_PROFILE, "").strip():
    enable()


__all__ = [
    "ENV_PROFILE",
    "n_bucket",
    "enable",
    "disable",
    "enabled",
    "reset",
    "record_kernel",
    "record_phases",
    "kernel_profile",
    "phase_profile",
    "sync_observer",
]
