"""Multi-tenant hardening: bearer-token auth, rate limits, quotas, accounting.

This module is the policy layer the HTTP server and the job scheduler
share when the service is exposed to more than one caller:

* :class:`TokenAuthenticator` maps ``Authorization: Bearer <token>``
  headers onto tenant ids (401 on missing/unknown tokens).  Tokens come
  from ``serve --auth-token TOKEN[:TENANT]`` flags or an ``--auth-file``
  JSON document, which may also carry per-tenant limit overrides;
* :class:`TokenBucket` is the per-tenant rate limiter: a classic token
  bucket (``rate`` requests/second sustained, ``burst`` instantaneous)
  whose :meth:`~TokenBucket.try_acquire` returns how long the caller
  should wait -- the ``Retry-After`` the server sends with a 429;
* :class:`TenantRegistry` keeps one account per tenant: submission and
  rejection counters, the set of cache digests the tenant has touched,
  and the bytes those digests occupy.  Shared digests stay deduplicated
  in the underlying :class:`~repro.service.cache.ResultCache` -- two
  tenants submitting the same spec share one stored entry -- but each
  tenant's account is charged for every digest *it* uses, which is what
  per-tenant byte quotas meter.

Everything here is opt-in: a server constructed without tokens or limits
behaves exactly like the pre-hardening service (one anonymous
:data:`DEFAULT_TENANT`, no limits enforced).

All classes are thread-safe; the HTTP handler threads and the scheduler
worker threads call into one shared registry.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Set, Tuple, Union

from repro.errors import (
    AuthenticationError,
    QuotaExceededError,
    RateLimitedError,
    ServiceError,
)

#: Tenant id used when auth is off (or a token maps to no explicit id).
DEFAULT_TENANT = "public"


@dataclass(frozen=True)
class TenantLimits:
    """Per-tenant policy knobs; ``None`` always means "unlimited".

    ``rate``/``burst`` feed the tenant's :class:`TokenBucket`
    (requests/second sustained and instantaneous); ``max_bytes`` caps the
    cache bytes charged to the tenant's account; ``max_jobs`` caps the
    tenant's *active* (queued or running) jobs at any moment.
    """

    rate: Optional[float] = None
    burst: Optional[int] = None
    max_bytes: Optional[int] = None
    max_jobs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ServiceError(f"rate must be > 0 or None, got {self.rate}")
        if self.burst is not None and self.burst < 1:
            raise ServiceError(f"burst must be >= 1 or None, got {self.burst}")
        if self.max_bytes is not None and self.max_bytes < 1:
            raise ServiceError(f"max_bytes must be >= 1 or None, got {self.max_bytes}")
        if self.max_jobs is not None and self.max_jobs < 1:
            raise ServiceError(f"max_jobs must be >= 1 or None, got {self.max_jobs}")

    @property
    def unlimited(self) -> bool:
        """True when no knob is set (the auth-off default)."""
        return (
            self.rate is None
            and self.max_bytes is None
            and self.max_jobs is None
        )


class TokenBucket:
    """Thread-safe token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``clock`` is injectable (tests drive virtual time).  The bucket
    starts full, so a quiet tenant always has its full burst available.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ServiceError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else max(1, int(rate)))
        if self.burst < 1:
            raise ServiceError(f"burst must be >= 1, got {burst}")
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> Tuple[bool, float]:
        """``(admitted, retry_after_seconds)``; ``retry_after`` is 0 on admit."""
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True, 0.0
            return False, (tokens - self._tokens) / self.rate


class TokenAuthenticator:
    """Bearer-token -> tenant-id map (plus optional per-tenant limits).

    Built from a plain ``{token: tenant}`` dict, or
    :meth:`from_file` on a JSON document whose values are either a bare
    tenant-id string or ``{"tenant": ..., "rate": ..., "burst": ...,
    "max_bytes": ..., "max_jobs": ...}`` objects.
    """

    def __init__(self, tokens: Dict[str, str]) -> None:
        if not tokens:
            raise ServiceError("an authenticator needs at least one token")
        self._tokens = {str(t): str(tenant) for t, tenant in tokens.items()}

    @property
    def tenants(self) -> Set[str]:
        """Every tenant id some token maps to."""
        return set(self._tokens.values())

    def token_map(self) -> Dict[str, str]:
        """A copy of the token -> tenant map (merging auth sources)."""
        return dict(self._tokens)

    @classmethod
    def from_file(
        cls, path: Union[str, Path]
    ) -> Tuple["TokenAuthenticator", Dict[str, TenantLimits]]:
        """Parse an auth file; returns ``(authenticator, per-tenant limits)``.

        Raises :class:`~repro.errors.ServiceError` on malformed files --
        a server must refuse to start half-authenticated.
        """
        path = Path(path)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ServiceError(f"cannot read auth file {path}: {exc}") from exc
        if not isinstance(doc, dict) or not doc:
            raise ServiceError(
                f"auth file {path} must be a non-empty JSON object mapping "
                "tokens to tenants"
            )
        tokens: Dict[str, str] = {}
        limits: Dict[str, TenantLimits] = {}
        for token, value in doc.items():
            if isinstance(value, str):
                tokens[token] = value
                continue
            if not isinstance(value, dict) or "tenant" not in value:
                raise ServiceError(
                    f"auth file {path}: entry for token {token[:8]!r}... must "
                    "be a tenant string or an object with a 'tenant' key"
                )
            tenant = str(value["tenant"])
            tokens[token] = tenant
            knobs = {k: value[k] for k in ("rate", "burst", "max_bytes", "max_jobs") if k in value}
            unknown = set(value) - {"tenant", "rate", "burst", "max_bytes", "max_jobs"}
            if unknown:
                raise ServiceError(
                    f"auth file {path}: unknown keys {sorted(unknown)} for "
                    f"token {token[:8]!r}..."
                )
            if knobs:
                limits[tenant] = TenantLimits(**knobs)
        return cls(tokens), limits

    def authenticate(self, authorization: Optional[str]) -> str:
        """Resolve an ``Authorization`` header value to a tenant id.

        Raises :class:`~repro.errors.AuthenticationError` (-> 401) for a
        missing header, a non-Bearer scheme, or an unknown token.  The
        message never echoes the presented token.
        """
        if not authorization:
            raise AuthenticationError("missing Authorization header (Bearer token)")
        scheme, _, token = authorization.partition(" ")
        if scheme.lower() != "bearer" or not token.strip():
            raise AuthenticationError(
                "Authorization header must be 'Bearer <token>'"
            )
        tenant = self._tokens.get(token.strip())
        if tenant is None:
            raise AuthenticationError("unknown bearer token")
        return tenant


@dataclass
class TenantAccount:
    """One tenant's live accounting state (owned by :class:`TenantRegistry`)."""

    tenant: str
    limits: TenantLimits
    bucket: Optional[TokenBucket] = None
    digests: Set[str] = field(default_factory=set)
    bytes_used: int = 0
    active_jobs: int = 0
    submitted: int = 0
    rate_limited: int = 0
    quota_rejections: int = 0
    #: Fleet work claims made under this tenant's token (workers
    #: authenticate exactly like tenants); accounting only -- claims
    #: drain work, so they are never rate-limited or quota-charged.
    worker_claims: int = 0

    def to_doc(self) -> Dict[str, Any]:
        """The per-tenant block ``/metrics`` serves."""
        return {
            "submitted": self.submitted,
            "active_jobs": self.active_jobs,
            "digests": len(self.digests),
            "bytes_used": self.bytes_used,
            "max_bytes": self.limits.max_bytes,
            "max_jobs": self.limits.max_jobs,
            "rate": self.limits.rate,
            "rate_limited": self.rate_limited,
            "quota_rejections": self.quota_rejections,
            "worker_claims": self.worker_claims,
        }


class TenantRegistry:
    """Shared per-tenant accounts: rate admission, quota checks, usage.

    Parameters
    ----------
    default_limits:
        Limits applied to tenants with no explicit override (the
        ``serve --rate-limit/--tenant-max-bytes/--tenant-max-jobs``
        flags).  Defaults to fully unlimited.
    per_tenant:
        Tenant-id -> :class:`TenantLimits` overrides (usually from the
        auth file).
    clock:
        Injectable time source shared by every tenant's token bucket.
    """

    def __init__(
        self,
        default_limits: Optional[TenantLimits] = None,
        per_tenant: Optional[Dict[str, TenantLimits]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._default = default_limits or TenantLimits()
        self._overrides = dict(per_tenant or {})
        self._clock = clock
        self._accounts: Dict[str, TenantAccount] = {}
        self._lock = threading.Lock()

    def _account(self, tenant: str) -> TenantAccount:
        """Under the lock: the (lazily created) account for a tenant."""
        account = self._accounts.get(tenant)
        if account is None:
            limits = self._overrides.get(tenant, self._default)
            bucket = None
            if limits.rate is not None:
                bucket = TokenBucket(limits.rate, limits.burst, clock=self._clock)
            account = TenantAccount(tenant=tenant, limits=limits, bucket=bucket)
            self._accounts[tenant] = account
        return account

    # ------------------------------------------------------------------
    # Admission (HTTP layer)
    # ------------------------------------------------------------------

    def admit(self, tenant: str, tokens: float = 1.0) -> None:
        """Charge the tenant's token bucket; raise 429 when it is dry.

        Raises :class:`~repro.errors.RateLimitedError` carrying the
        seconds until ``tokens`` will be available again.
        """
        with self._lock:
            account = self._account(tenant)
            bucket = account.bucket
        if bucket is None:
            return
        admitted, retry_after = bucket.try_acquire(tokens)
        if admitted:
            return
        with self._lock:
            account.rate_limited += 1
        raise RateLimitedError(
            f"tenant {tenant!r} exceeded its rate limit of "
            f"{bucket.rate:g} requests/s; retry in {retry_after:.2f}s",
            retry_after=retry_after,
        )

    # ------------------------------------------------------------------
    # Quotas + accounting (scheduler layer)
    # ------------------------------------------------------------------

    def check_quota(self, tenant: str) -> None:
        """Refuse new submissions from a tenant over its byte/job quota.

        Raises :class:`~repro.errors.QuotaExceededError` (-> 429).  The
        byte quota meters cumulative cache bytes charged to the tenant's
        account; the job quota meters currently-active jobs.
        """
        with self._lock:
            account = self._account(tenant)
            limits = account.limits
            if limits.max_bytes is not None and account.bytes_used >= limits.max_bytes:
                account.quota_rejections += 1
                raise QuotaExceededError(
                    f"tenant {tenant!r} is over its cache byte quota "
                    f"({account.bytes_used} of {limits.max_bytes} bytes used)",
                    retry_after=60.0,
                )
            if limits.max_jobs is not None and account.active_jobs >= limits.max_jobs:
                account.quota_rejections += 1
                raise QuotaExceededError(
                    f"tenant {tenant!r} already has {account.active_jobs} active "
                    f"jobs (quota {limits.max_jobs})",
                    retry_after=60.0,
                )

    def on_submit(self, tenant: str) -> None:
        """Record an enqueued (non-cached) submission: one more active job."""
        with self._lock:
            account = self._account(tenant)
            account.submitted += 1
            account.active_jobs += 1

    def on_worker_claim(self, tenant: str) -> None:
        """Record one fleet ``work:claim`` made under this tenant's token.

        Pure accounting: claiming work *drains* the queue, so it passes
        no rate limiter and charges no quota (a throttled heartbeat or
        claim would expire healthy leases and trigger recomputation).
        """
        with self._lock:
            self._account(tenant).worker_claims += 1

    def on_cached(self, tenant: str, digest: str, nbytes: int) -> None:
        """Record a submission answered straight from the cache.

        The tenant is charged for the digest (first use only): a cache
        hit still *occupies* the shared entry on the tenant's behalf.
        """
        with self._lock:
            account = self._account(tenant)
            account.submitted += 1
            self._charge(account, digest, nbytes)

    def on_finish(self, tenant: str, digest: str, nbytes: int, failed: bool) -> None:
        """Record a job leaving the active set; charge its result bytes."""
        with self._lock:
            account = self._account(tenant)
            account.active_jobs = max(0, account.active_jobs - 1)
            if not failed:
                self._charge(account, digest, nbytes)

    @staticmethod
    def _charge(account: TenantAccount, digest: str, nbytes: int) -> None:
        """Under the lock: charge a digest to an account exactly once."""
        if digest not in account.digests:
            account.digests.add(digest)
            account.bytes_used += max(0, int(nbytes))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def usage(self, tenant: str) -> Dict[str, Any]:
        """One tenant's account document (creating the account if new)."""
        with self._lock:
            return self._account(tenant).to_doc()

    def metrics(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant accounting block for ``/metrics``."""
        with self._lock:
            return {
                tenant: account.to_doc()
                for tenant, account in sorted(self._accounts.items())
            }


__all__ = [
    "DEFAULT_TENANT",
    "TenantAccount",
    "TenantLimits",
    "TenantRegistry",
    "TokenAuthenticator",
    "TokenBucket",
]
