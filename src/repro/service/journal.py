"""Persistent job journal: append-only JSONL + restart recovery.

:class:`JobJournal` is the durability layer under the
:class:`~repro.service.scheduler.JobScheduler`.  Every job submission is
recorded with its **full spec payload** (run spec, sweep spec, or whole
task-graph document) keyed by job id and content digest, and every state
transition (``queued -> running -> done | failed | interrupted``) appends
one line.  The file is flushed per record, so a server killed with
``SIGKILL`` loses at most the line being written -- a torn final line is
tolerated (and repaired) on the next open.

Recovery is the scheduler's job (:meth:`JobScheduler.recover`): it calls
:meth:`replay` to fold the journal into one
:class:`JournalEntry` per job (latest state wins), re-resolves terminal
jobs from the content-addressed result cache, and re-enqueues the
unfinished frontier.  The journal records *job identity and lifecycle*
only -- results never live here.  They live in the
:class:`~repro.service.cache.ResultCache`, which is exactly what makes a
resumed task graph recompute only its never-finished nodes.

:meth:`compact` drops fully-terminal jobs (``done``/``failed``): their
lifecycle is over and their results are reachable through the cache, so
keeping their lines only grows the file.  The rewrite is atomic
(temp file + ``os.replace``) and preserves every non-terminal job as a
``submit`` line plus one latest-state line.

When the distributed fleet is enabled the journal additionally carries
``lease`` lines (:meth:`record_lease`) recording work-lease
grant/complete/expire transitions; :meth:`replay_leases` folds them so
restart recovery can count remote work that was in flight.  Lease lines
are ephemeral -- compaction drops them.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from repro.errors import JournalError

#: Bump when the journal line layout changes; mismatched lines are
#: rejected at replay (recovery must never act on misread lifecycles).
JOURNAL_FORMAT_VERSION = 1

#: States with no further transitions; compaction drops jobs that
#: reached one (``interrupted`` is *not* terminal -- it is the state
#: recovery exists for).
TERMINAL_STATES = ("done", "failed")


@dataclass
class JournalEntry:
    """One job's folded journal state: identity + latest lifecycle."""

    job_id: str
    kind: str
    digest: str
    spec: Dict[str, Any]
    status: str = "queued"
    error: Optional[str] = None
    #: Submitting tenant; journals written before multi-tenancy default
    #: to the anonymous tenant on replay.
    tenant: str = "public"
    #: Trace id of the submitting request (observability continuity: a
    #: recovered job rejoins its original trace).  ``None`` for untraced
    #: submissions and journals written before tracing existed.
    trace_id: Optional[str] = None

    @property
    def terminal(self) -> bool:
        """True when no recovery action is needed (``done``/``failed``)."""
        return self.status in TERMINAL_STATES


class JobJournal:
    """Append-only JSONL job journal with atomic compaction.

    Parameters
    ----------
    path:
        The journal file; created (with parent directories) if missing.
        An existing file that does not end in a newline -- the signature
        of a ``kill -9`` mid-write -- is repaired by truncating the torn
        partial record (it was never acknowledged), so new records never
        concatenate onto it.

    All methods are thread-safe (scheduler worker threads and HTTP
    handler threads both write).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._lock = threading.Lock()
        self._path.parent.mkdir(parents=True, exist_ok=True)
        if self._path.exists() and self._path.stat().st_size > 0:
            raw = self._path.read_bytes()
            if not raw.endswith(b"\n"):
                # A SIGKILL mid-write leaves a torn, unacknowledged final
                # record; drop it so appends never concatenate onto it.
                with self._path.open("r+b") as fh:
                    fh.truncate(raw.rfind(b"\n") + 1)
        self._fh = self._path.open("a", encoding="utf-8")

    @property
    def path(self) -> Path:
        """The journal file path."""
        return self._path

    @property
    def nbytes(self) -> int:
        """Current on-disk size in bytes (the ``journal_bytes`` metric)."""
        with self._lock:
            self._fh.flush()
            try:
                return self._path.stat().st_size
            except OSError:
                return 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _append(self, doc: Dict[str, Any]) -> None:
        line = json.dumps(doc, sort_keys=True)
        with self._lock:
            self._fh.write(line + "\n")
            # Flush per record: an OS-level buffer survives SIGKILL of
            # the process, so a killed server loses nothing it recorded.
            self._fh.flush()

    def record_submit(
        self,
        job_id: str,
        kind: str,
        digest: str,
        spec: Dict[str, Any],
        tenant: str = "public",
        trace_id: Optional[str] = None,
    ) -> None:
        """Record one submission with its full spec payload.

        ``trace_id`` (when the submit happened under an active trace)
        is persisted so recovery re-attaches the job to its original
        trace; the key is omitted entirely for untraced submissions,
        keeping those lines byte-identical to pre-tracing journals.
        """
        doc: Dict[str, Any] = {
            "format_version": JOURNAL_FORMAT_VERSION,
            "event": "submit",
            "job_id": job_id,
            "kind": kind,
            "digest": digest,
            "spec": spec,
            "tenant": tenant,
        }
        if trace_id is not None:
            doc["trace_id"] = trace_id
        self._append(doc)

    def record_state(
        self, job_id: str, status: str, error: Optional[str] = None
    ) -> None:
        """Record one lifecycle transition (``error`` only for failures)."""
        doc: Dict[str, Any] = {
            "format_version": JOURNAL_FORMAT_VERSION,
            "event": "state",
            "job_id": job_id,
            "status": status,
        }
        if error is not None:
            doc["error"] = error
        self._append(doc)

    def record_lease(
        self,
        lease_id: str,
        worker: str,
        status: str,
        digests: Optional[Sequence[str]] = None,
    ) -> None:
        """Record one work-lease transition (``granted``/``completed``/``expired``).

        Lease lines exist so restart recovery can account for remote
        work that was in flight when the server died (see
        :meth:`WorkQueue.recover <repro.service.fleet.WorkQueue.recover>`).
        They are *ephemeral* relative to job lifecycle: :meth:`compact`
        drops them -- a compacted journal starts with a clean fleet
        ledger, which is correct because compaction only runs on a live
        server whose queue state supersedes the journal's.
        """
        doc: Dict[str, Any] = {
            "format_version": JOURNAL_FORMAT_VERSION,
            "event": "lease",
            "lease_id": lease_id,
            "worker": worker,
            "status": status,
        }
        if digests is not None:
            doc["digests"] = list(digests)
        self._append(doc)

    # ------------------------------------------------------------------
    # Replay + compaction
    # ------------------------------------------------------------------

    def replay(self) -> "OrderedDict[str, JournalEntry]":
        """Fold the journal into one entry per job, submission-ordered.

        Later ``state`` lines win.  ``state`` lines for unknown job ids
        (their ``submit`` line fell to a torn write) are ignored.  A
        malformed *final* line is tolerated -- that is what a ``SIGKILL``
        mid-write leaves behind -- while corruption anywhere else raises
        :class:`~repro.errors.JournalError`.
        """
        entries: "OrderedDict[str, JournalEntry]" = OrderedDict()
        with self._lock:
            self._fh.flush()
            try:
                raw_lines = self._path.read_text(encoding="utf-8").splitlines()
            except OSError:
                return entries
        for lineno, line in enumerate(raw_lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(raw_lines):
                    continue  # torn final write; the next append repaired framing
                raise JournalError(
                    f"{self._path}:{lineno}: journal line is not valid JSON: {exc}"
                ) from exc
            if not isinstance(doc, dict):
                raise JournalError(f"{self._path}:{lineno}: journal line is not an object")
            if doc.get("format_version") != JOURNAL_FORMAT_VERSION:
                raise JournalError(
                    f"{self._path}:{lineno}: unsupported journal format "
                    f"{doc.get('format_version')!r} (expected {JOURNAL_FORMAT_VERSION})"
                )
            event = doc.get("event")
            if event == "submit":
                try:
                    trace_id = doc.get("trace_id")
                    entry = JournalEntry(
                        job_id=str(doc["job_id"]),
                        kind=str(doc["kind"]),
                        digest=str(doc["digest"]),
                        spec=dict(doc["spec"]),
                        tenant=str(doc.get("tenant", "public")),
                        trace_id=str(trace_id) if trace_id is not None else None,
                    )
                except (KeyError, TypeError) as exc:
                    raise JournalError(
                        f"{self._path}:{lineno}: malformed submit record: {exc!r}"
                    ) from exc
                entries[entry.job_id] = entry
            elif event == "state":
                entry = entries.get(str(doc.get("job_id")))
                if entry is None:
                    continue  # submit line lost to a torn write
                status = doc.get("status")
                if not isinstance(status, str):
                    raise JournalError(
                        f"{self._path}:{lineno}: state record has no status"
                    )
                entry.status = status
                entry.error = doc.get("error")
            elif event == "lease":
                continue  # fleet ledger lines; folded by replay_leases()
            else:
                raise JournalError(
                    f"{self._path}:{lineno}: unknown journal event {event!r}"
                )
        return entries

    def replay_leases(self) -> "OrderedDict[str, Dict[str, Any]]":
        """Fold lease lines into the latest state per lease id.

        Returns ``{lease_id: {"worker", "status", "digests"}}`` in grant
        order; a lease whose folded ``status`` is still ``"granted"``
        was in flight when the journal last saw it.  Malformed lines
        follow the same tolerance rules as :meth:`replay` (torn final
        line skipped, anything else raises).
        """
        leases: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        with self._lock:
            self._fh.flush()
            try:
                raw_lines = self._path.read_text(encoding="utf-8").splitlines()
            except OSError:
                return leases
        for lineno, line in enumerate(raw_lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(raw_lines):
                    continue
                raise JournalError(
                    f"{self._path}:{lineno}: journal line is not valid JSON"
                )
            if not isinstance(doc, dict) or doc.get("event") != "lease":
                continue
            lease_id = str(doc.get("lease_id"))
            rec = leases.setdefault(
                lease_id, {"worker": str(doc.get("worker")), "status": "granted", "digests": []}
            )
            rec["status"] = str(doc.get("status"))
            if doc.get("digests") is not None:
                rec["digests"] = [str(d) for d in doc["digests"]]
        return leases

    def compact(self) -> Dict[str, int]:
        """Atomically drop fully-terminal jobs; keep the live frontier.

        Non-terminal jobs survive as a ``submit`` line plus (when their
        state moved past ``queued``) one latest-state line.  Returns
        ``{"before_bytes", "after_bytes", "kept_jobs", "dropped_jobs"}``.
        """
        entries = self.replay()
        with self._lock:
            self._fh.flush()
            before = self._path.stat().st_size if self._path.exists() else 0
            keep = [e for e in entries.values() if not e.terminal]
            tmp = self._path.with_name(self._path.name + ".compact.tmp")
            with tmp.open("w", encoding="utf-8") as fh:
                for entry in keep:
                    submit_doc: Dict[str, Any] = {
                        "format_version": JOURNAL_FORMAT_VERSION,
                        "event": "submit",
                        "job_id": entry.job_id,
                        "kind": entry.kind,
                        "digest": entry.digest,
                        "spec": entry.spec,
                        "tenant": entry.tenant,
                    }
                    if entry.trace_id is not None:
                        submit_doc["trace_id"] = entry.trace_id
                    fh.write(json.dumps(submit_doc, sort_keys=True) + "\n")
                    if entry.status != "queued":
                        doc: Dict[str, Any] = {
                            "format_version": JOURNAL_FORMAT_VERSION,
                            "event": "state",
                            "job_id": entry.job_id,
                            "status": entry.status,
                        }
                        if entry.error is not None:
                            doc["error"] = entry.error
                        fh.write(json.dumps(doc, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            # Same directory, so the replace is atomic: readers see the
            # old complete file or the new complete file, never a mix.
            os.replace(tmp, self._path)
            self._fh.close()
            self._fh = self._path.open("a", encoding="utf-8")
            after = self._path.stat().st_size
        return {
            "before_bytes": before,
            "after_bytes": after,
            "kept_jobs": len(keep),
            "dropped_jobs": len(entries) - len(keep),
        }

    def close(self) -> None:
        """Flush and close the append handle (safe to call twice)."""
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()

    def __repr__(self) -> str:
        return f"JobJournal({self._path})"


__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "TERMINAL_STATES",
    "JobJournal",
    "JournalEntry",
]
