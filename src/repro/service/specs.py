"""Declarative simulation specs: registry, canonical form, content digests.

A *spec* is a plain JSON document describing one broadcast run::

    {"adversary": "rotating-path", "params": {"shift": 2},
     "n": 512, "seed": 0, "max_rounds": null, "backend": "bitset"}

The registry maps adversary names to the portfolio's factories together
with a typed parameter schema, so a spec can be validated, completed with
defaults, and *canonicalized*: two specs that describe the same run --
whatever their key order, and whether defaults are spelled out or
omitted -- canonicalize to the identical document and therefore hash to
the identical content digest.  The digest is the address everything
downstream keys on: the result cache, in-flight dedup in the scheduler,
and the HTTP job API.

Canonicalization rules (what "same run" means):

* unknown adversaries, unknown params, and wrongly-typed values are
  rejected with :class:`~repro.errors.SpecError` -- a digest never exists
  for an invalid spec;
* omitted params / ``seed`` / ``max_rounds`` are filled with their
  registry defaults, so ``{"adversary": "static-path", "n": 8}`` and the
  fully spelled-out equivalent share a digest;
* an omitted ``backend`` resolves to the *current process default*
  (``$REPRO_BACKEND`` / ``set_default_backend``) at canonicalization
  time; pass it explicitly for digests that must be stable across
  differently-configured processes;
* the canonical JSON encoding is ``sort_keys=True`` with compact
  separators, so the digest is independent of dict ordering and
  whitespace, stable across processes (:func:`hashlib.sha256`, no
  ``PYTHONHASHSEED`` dependence), and versioned by :data:`SPEC_VERSION`.

:class:`SpecHandle` bridges specs to the executor layer: it is a
picklable ``n -> adversary`` factory (usable anywhere
``default_sweep_factories`` entries are, including across ``spawn``
boundaries) that *carries its declarative spec*, which is what lets
``Executor.sweep`` content-address individual grid cells (see
:class:`repro.service.cache.SweepCellCache`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.backend import get_backend
from repro.errors import SpecError
from repro.types import AdversaryProtocol

#: Version prefix baked into every digest: bump when canonicalization or
#: run semantics change, so stale cache entries can never be served.
SPEC_VERSION = 1

#: Parameter types the schema language supports (JSON-representable).
_PARAM_TYPES = {"int": int, "float": float, "bool": bool, "str": str}


@dataclass(frozen=True)
class ParamSpec:
    """One typed, defaulted adversary parameter.

    ``type`` names a JSON scalar type (``int``/``float``/``bool``/``str``);
    ``optional=True`` additionally admits ``None`` (the usual "derive from
    n" constructor convention).
    """

    type: str
    default: Any
    optional: bool = False

    def __post_init__(self) -> None:
        if self.type not in _PARAM_TYPES:
            raise SpecError(
                f"param type must be one of {sorted(_PARAM_TYPES)}, "
                f"got {self.type!r}"
            )

    def coerce(self, name: str, value: Any) -> Any:
        """Validate (and minimally coerce) one supplied value."""
        if value is None:
            if self.optional:
                return None
            raise SpecError(f"param {name!r} must not be null")
        want = _PARAM_TYPES[self.type]
        # bool is a subclass of int: require exact booleans for bool
        # params and reject booleans where numbers are expected, so
        # {"shift": true} can never silently mean shift=1.
        if want is bool:
            if not isinstance(value, bool):
                raise SpecError(f"param {name!r} must be a bool, got {value!r}")
            return value
        if isinstance(value, bool):
            raise SpecError(f"param {name!r} must be {self.type}, got a bool")
        if want is float and isinstance(value, int):
            return float(value)
        if not isinstance(value, want):
            raise SpecError(
                f"param {name!r} must be {self.type}, got {type(value).__name__}"
            )
        return value


@dataclass(frozen=True)
class AdversaryEntry:
    """One registered adversary family: factory + parameter schema."""

    name: str
    factory: Callable[..., AdversaryProtocol]
    params: Dict[str, ParamSpec] = field(default_factory=dict)
    #: Whether the factory takes a ``seed`` kwarg (the spec's top-level
    #: seed is forwarded to it; oblivious families simply record it).
    takes_seed: bool = False
    description: str = ""

    def build(self, n: int, params: Mapping[str, Any], seed: int) -> AdversaryProtocol:
        """Instantiate the adversary for one run."""
        kwargs = dict(params)
        if self.takes_seed:
            kwargs["seed"] = seed
        return self.factory(n, **kwargs)


_REGISTRY: Dict[str, AdversaryEntry] = {}


def register_adversary(
    name: str,
    factory: Callable[..., AdversaryProtocol],
    params: Optional[Mapping[str, ParamSpec]] = None,
    takes_seed: bool = False,
    description: str = "",
) -> AdversaryEntry:
    """Register an adversary family under a stable spec name.

    The factory must be a picklable callable ``(n, **params) -> adversary``
    (a class or module-level function -- the same spawn-safety rule as
    sharded sweeps).  Re-registering a name replaces the entry, which is
    what tests use to inject failing adversaries.
    """
    if not name or not isinstance(name, str):
        raise SpecError(f"adversary name must be a non-empty string, got {name!r}")
    entry = AdversaryEntry(
        name=name,
        factory=factory,
        params=dict(params or {}),
        takes_seed=takes_seed,
        description=description,
    )
    _REGISTRY[name] = entry
    return entry


def unregister_adversary(name: str) -> None:
    """Remove a registered family (tests clean up injected entries)."""
    _REGISTRY.pop(name, None)


def get_entry(name: str) -> AdversaryEntry:
    """Look up a registered family; :class:`SpecError` on unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SpecError(
            f"unknown adversary {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def adversary_names() -> Tuple[str, ...]:
    """All registered spec names, sorted."""
    return tuple(sorted(_REGISTRY))


def describe_registry() -> Dict[str, Dict[str, Any]]:
    """A JSON-ready description of every registered family (``/v1/specs``)."""
    out: Dict[str, Dict[str, Any]] = {}
    for name in adversary_names():
        entry = _REGISTRY[name]
        out[name] = {
            "description": entry.description,
            "takes_seed": entry.takes_seed,
            "params": {
                pname: {
                    "type": p.type,
                    "default": p.default,
                    "optional": p.optional,
                }
                for pname, p in sorted(entry.params.items())
            },
        }
    return out


# ----------------------------------------------------------------------
# Canonicalization + digests
# ----------------------------------------------------------------------


def _canonical_params(entry: AdversaryEntry, raw: Any) -> Dict[str, Any]:
    """Validated params with every default spelled out, key-sorted."""
    if raw is None:
        raw = {}
    if not isinstance(raw, Mapping):
        raise SpecError(f"'params' must be an object, got {type(raw).__name__}")
    unknown = set(raw) - set(entry.params)
    if unknown:
        raise SpecError(
            f"unknown params {sorted(unknown)} for adversary {entry.name!r}; "
            f"accepted: {sorted(entry.params)}"
        )
    return {
        pname: pspec.coerce(pname, raw.get(pname, pspec.default))
        for pname, pspec in sorted(entry.params.items())
    }


def _canonical_int(spec: Mapping[str, Any], key: str, default: int) -> int:
    value = spec.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{key!r} must be an integer, got {value!r}")
    return int(value)


def _canonical_max_rounds(spec: Mapping[str, Any]) -> Optional[int]:
    value = spec.get("max_rounds")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise SpecError(f"'max_rounds' must be a positive integer or null, got {value!r}")
    return int(value)


def _canonical_backend(spec: Mapping[str, Any]) -> str:
    """The backend *name*, resolving an omitted backend to the default."""
    from repro.errors import BackendError

    try:
        return get_backend(spec.get("backend")).name
    except BackendError as exc:
        raise SpecError(str(exc)) from exc


_RUN_KEYS = frozenset(
    {"kind", "version", "adversary", "params", "n", "seed", "max_rounds", "backend"}
)


def _check_version(raw: Mapping[str, Any]) -> None:
    """Accept only this module's version marker (canonical docs carry it)."""
    version = raw.get("version", SPEC_VERSION)
    if version != SPEC_VERSION:
        raise SpecError(
            f"spec version {version!r} is not supported (expected {SPEC_VERSION})"
        )


def canonical_run_spec(raw: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a raw run spec and return its canonical document.

    The canonical form is what :func:`spec_digest` hashes: all defaults
    explicit, params validated against the registry schema, backend
    resolved to a name.  Raises :class:`~repro.errors.SpecError` on any
    malformed input.
    """
    if not isinstance(raw, Mapping):
        raise SpecError(f"spec must be a JSON object, got {type(raw).__name__}")
    unknown = set(raw) - _RUN_KEYS
    if unknown:
        raise SpecError(f"unknown spec keys {sorted(unknown)}; accepted: {sorted(_RUN_KEYS)}")
    _check_version(raw)
    kind = raw.get("kind", "run")
    if kind != "run":
        raise SpecError(f"run spec 'kind' must be 'run', got {kind!r}")
    if "adversary" not in raw:
        raise SpecError("spec is missing the 'adversary' name")
    entry = get_entry(raw["adversary"]) if isinstance(raw["adversary"], str) else None
    if entry is None:
        raise SpecError(f"'adversary' must be a string, got {raw['adversary']!r}")
    if "n" not in raw:
        raise SpecError("spec is missing 'n'")
    n = _canonical_int(raw, "n", 0)
    if n < 1:
        raise SpecError(f"'n' must be >= 1, got {n}")
    return {
        "kind": "run",
        "version": SPEC_VERSION,
        "adversary": entry.name,
        "params": _canonical_params(entry, raw.get("params")),
        "n": n,
        "seed": _canonical_int(raw, "seed", 0),
        "max_rounds": _canonical_max_rounds(raw),
        "backend": _canonical_backend(raw),
    }


_SWEEP_KEYS = frozenset(
    {"kind", "version", "adversaries", "ns", "seed", "max_rounds", "backend"}
)


def canonical_sweep_spec(raw: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a raw sweep spec and return its canonical document.

    A sweep spec names a set of adversary families and a list of node
    counts::

        {"adversaries": ["static-path", {"adversary": "rotating-path",
                                         "params": {"shift": 2}}],
         "ns": [16, 32], "backend": "bitset"}

    Canonical ``ns`` are sorted and deduplicated; canonical adversaries
    are sorted by label (default label = the adversary name), so
    logically-equal sweeps share a digest *and* enumerate their grids in
    one deterministic order.
    """
    if not isinstance(raw, Mapping):
        raise SpecError(f"sweep spec must be a JSON object, got {type(raw).__name__}")
    unknown = set(raw) - _SWEEP_KEYS
    if unknown:
        raise SpecError(
            f"unknown sweep keys {sorted(unknown)}; accepted: {sorted(_SWEEP_KEYS)}"
        )
    _check_version(raw)
    kind = raw.get("kind", "sweep")
    if kind != "sweep":
        raise SpecError(f"sweep spec 'kind' must be 'sweep', got {kind!r}")
    rows = raw.get("adversaries")
    if not isinstance(rows, (list, tuple)) or not rows:
        raise SpecError("'adversaries' must be a non-empty list")
    canon_rows: List[Dict[str, Any]] = []
    for row in rows:
        if isinstance(row, str):
            row = {"adversary": row}
        if not isinstance(row, Mapping):
            raise SpecError(f"adversary rows must be names or objects, got {row!r}")
        bad = set(row) - {"adversary", "params", "label"}
        if bad:
            raise SpecError(f"unknown adversary-row keys {sorted(bad)}")
        entry = get_entry(row.get("adversary", ""))
        label = row.get("label", entry.name)
        if not isinstance(label, str) or not label:
            raise SpecError(f"adversary label must be a non-empty string, got {label!r}")
        canon_rows.append(
            {
                "label": label,
                "adversary": entry.name,
                "params": _canonical_params(entry, row.get("params")),
            }
        )
    canon_rows.sort(key=lambda r: r["label"])
    labels = [r["label"] for r in canon_rows]
    if len(set(labels)) != len(labels):
        raise SpecError(f"duplicate adversary labels in sweep spec: {labels}")
    ns_raw = raw.get("ns")
    if not isinstance(ns_raw, (list, tuple)) or not ns_raw:
        raise SpecError("'ns' must be a non-empty list of node counts")
    ns: List[int] = []
    for value in ns_raw:
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise SpecError(f"'ns' entries must be integers >= 1, got {value!r}")
        ns.append(int(value))
    return {
        "kind": "sweep",
        "version": SPEC_VERSION,
        "adversaries": canon_rows,
        "ns": sorted(set(ns)),
        "seed": _canonical_int(raw, "seed", 0),
        "max_rounds": _canonical_max_rounds(raw),
        "backend": _canonical_backend(raw),
    }


def canonical_json(spec: Mapping[str, Any]) -> str:
    """The canonical JSON encoding digests are computed over."""
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def spec_digest(spec: Mapping[str, Any]) -> str:
    """The content address of a run or sweep spec.

    The spec is always (re-)canonicalized -- canonicalization is
    idempotent and validating, so ``spec_digest(raw) ==
    spec_digest(canonical_run_spec(raw))`` holds unconditionally and a
    digest never exists for an invalid spec.  Run and sweep kinds are
    distinguished by the ``kind``/``adversaries`` keys.
    """
    if spec.get("kind") == "sweep" or "adversaries" in spec:
        spec = canonical_sweep_spec(spec)
    else:
        spec = canonical_run_spec(spec)
    payload = f"repro-spec-v{SPEC_VERSION}:{canonical_json(spec)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Bridging specs to the executor layer
# ----------------------------------------------------------------------


class SpecHandle:
    """A picklable ``n -> adversary`` factory that carries its spec.

    Usable anywhere the executor stack accepts a factory (including
    across ``spawn`` process boundaries); additionally exposes
    :meth:`cell_spec` so cache layers can content-address each (n,
    max_rounds, backend) grid cell this family produces -- that hook is
    what ``Executor.sweep(..., cache=...)`` keys on.
    """

    def __init__(
        self,
        adversary: str,
        params: Optional[Mapping[str, Any]] = None,
        seed: int = 0,
        label: Optional[str] = None,
    ) -> None:
        entry = get_entry(adversary)
        self.adversary = entry.name
        self.params = _canonical_params(entry, params)
        self.seed = int(seed)
        self.label = label or entry.name

    def __call__(self, n: int) -> AdversaryProtocol:
        return get_entry(self.adversary).build(n, self.params, self.seed)

    def cell_spec(
        self, n: int, max_rounds: Optional[int], backend: Any
    ) -> Dict[str, Any]:
        """The canonical run spec for one grid cell of this family."""
        return canonical_run_spec(
            {
                "adversary": self.adversary,
                "params": self.params,
                "n": n,
                "seed": self.seed,
                "max_rounds": max_rounds,
                "backend": backend if isinstance(backend, str) else get_backend(backend).name,
            }
        )

    def __repr__(self) -> str:
        return (
            f"SpecHandle({self.adversary!r}, params={self.params!r}, "
            f"seed={self.seed}, label={self.label!r})"
        )


def to_run_spec(raw: Mapping[str, Any]) -> "RunSpec":
    """Build an executor :class:`~repro.engine.executor.RunSpec` from a spec.

    The returned ``RunSpec`` is uninstrumented (``instrumentation='none'``,
    no kept trees) -- the cacheable shape -- and its adversary factory is a
    :class:`SpecHandle`, so it survives sharded execution.
    """
    from repro.engine.executor import RunSpec

    spec = canonical_run_spec(raw)
    handle = SpecHandle(spec["adversary"], spec["params"], seed=spec["seed"])
    return RunSpec(
        adversary=handle,
        n=spec["n"],
        seed=spec["seed"],
        max_rounds=spec["max_rounds"],
        backend=spec["backend"],
    )


def sweep_handles(spec: Mapping[str, Any]) -> Dict[str, SpecHandle]:
    """Label -> :class:`SpecHandle` map for a canonical sweep spec."""
    spec = canonical_sweep_spec(spec)
    return {
        row["label"]: SpecHandle(
            row["adversary"], row["params"], seed=spec["seed"], label=row["label"]
        )
        for row in spec["adversaries"]
    }


def portfolio_handles(
    include_search: bool = True, seed: int = 0
) -> Dict[str, SpecHandle]:
    """The standard sweep portfolio as declarative, cacheable handles.

    Mirrors :func:`repro.engine.shard.default_sweep_factories` -- same
    display labels, same adversaries with the same constructor arguments,
    in the same order -- but every factory is a :class:`SpecHandle`, so
    ``Executor.sweep`` can content-address each cell.
    """
    handles = {
        "StaticPath": SpecHandle("static-path", label="StaticPath"),
        "AlternatingPath": SpecHandle(
            "alternating-path", {"period": 1}, label="AlternatingPath"
        ),
        "RotatingPath": SpecHandle("rotating-path", {"shift": 1}, label="RotatingPath"),
        "SortedPath[asc]": SpecHandle(
            "sorted-path", {"ascending": True}, label="SortedPath[asc]"
        ),
        "SortedPath[desc]": SpecHandle(
            "sorted-path", {"ascending": False}, label="SortedPath[desc]"
        ),
        "TwoPhaseFlip": SpecHandle("two-phase-flip", {"alpha": 0.5}, label="TwoPhaseFlip"),
        "ZeinerStyle": SpecHandle("zeiner-style", label="ZeinerStyle"),
        "Runner": SpecHandle("runner", label="Runner"),
        "CyclicFamily": SpecHandle("cyclic", label="CyclicFamily"),
        "RandomTree": SpecHandle("random-tree", seed=seed, label="RandomTree"),
    }
    if include_search:
        handles["GreedyDelay"] = SpecHandle("greedy", seed=seed, label="GreedyDelay")
        handles["BeamSearch"] = SpecHandle(
            "beam", {"depth": 2, "width": 6}, seed=seed, label="BeamSearch"
        )
    return handles


# ----------------------------------------------------------------------
# Built-in registry: the oblivious/search adversary portfolio
# ----------------------------------------------------------------------


def _static_star_factory(n: int) -> AdversaryProtocol:
    """The star centered at 0, repeated forever (``t* = 1``).

    Module-level so the spec registry entry is spawn-safe; used by the
    E4 baseline experiment's declarative run grid.
    """
    from repro.adversaries.oblivious import StaticTreeAdversary
    from repro.trees.generators import star

    return StaticTreeAdversary(star(n), name="StaticStar")


def _register_builtins() -> None:
    from repro.adversaries.beam import BeamSearchAdversary
    from repro.adversaries.greedy import GreedyDelayAdversary
    from repro.adversaries.oblivious import RandomTreeAdversary
    from repro.adversaries.paths import (
        AlternatingPathAdversary,
        RotatingPathAdversary,
        SortedPathAdversary,
        StaticPathAdversary,
        TwoPhaseFlipAdversary,
    )
    from repro.adversaries.restricted import KInnerAdversary, KLeafAdversary
    from repro.adversaries.zeiner import (
        CyclicFamilyAdversary,
        RunnerAdversary,
        ZeinerStyleAdversary,
    )

    register_adversary(
        "static-path",
        StaticPathAdversary,
        description="repeat the identity path; t* = n - 1 exactly",
    )
    register_adversary(
        "static-star",
        _static_star_factory,
        description="repeat the star centered at 0; t* = 1 exactly",
    )
    register_adversary(
        "alternating-path",
        AlternatingPathAdversary,
        params={"period": ParamSpec("int", 1)},
        description="alternate forward/backward paths every `period` rounds",
    )
    register_adversary(
        "rotating-path",
        RotatingPathAdversary,
        params={"shift": ParamSpec("int", 1)},
        description="cyclically re-rooted path, shifted `shift` per round",
    )
    register_adversary(
        "sorted-path",
        SortedPathAdversary,
        params={
            "ascending": ParamSpec("bool", True),
            "tie_break": ParamSpec("str", "index"),
        },
        description="adaptive path ordered by current reach-set sizes",
    )
    register_adversary(
        "two-phase-flip",
        TwoPhaseFlipAdversary,
        params={
            "alpha": ParamSpec("float", 0.5),
            "ascending": ParamSpec("bool", True),
        },
        description="static path for round(alpha*n) rounds, then sorted path",
    )
    register_adversary(
        "zeiner-style",
        ZeinerStyleAdversary,
        params={"phase1_rounds": ParamSpec("int", None, optional=True)},
        description="Zeiner-Schwarz-Schmid-style two-phase lower-bound build",
    )
    register_adversary(
        "runner",
        RunnerAdversary,
        description="adaptive: keep the least-heard-of node rooted",
    )
    register_adversary(
        "cyclic",
        CyclicFamilyAdversary,
        params={"m_stride": ParamSpec("int", None, optional=True)},
        description="cyclic rotated-path/fan family with quadratic scoring",
    )
    register_adversary(
        "random-tree",
        RandomTreeAdversary,
        takes_seed=True,
        description="a fresh uniform random tree every round (seeded)",
    )
    register_adversary(
        "greedy",
        GreedyDelayAdversary,
        takes_seed=True,
        description="one-step greedy minimax over a candidate pool",
    )
    register_adversary(
        "beam",
        BeamSearchAdversary,
        params={"depth": ParamSpec("int", 2), "width": ParamSpec("int", 6)},
        takes_seed=True,
        description="multi-step beam search over a candidate pool",
    )
    register_adversary(
        "k-leaf",
        KLeafAdversary,
        params={"k": ParamSpec("int", 3)},
        description="Figure 1 restricted setting: trees with <= k leaves",
    )
    register_adversary(
        "k-inner",
        KInnerAdversary,
        params={"k": ParamSpec("int", 3)},
        description="Figure 1 restricted setting: trees with <= k inner nodes",
    )


_register_builtins()


__all__ = [
    "SPEC_VERSION",
    "AdversaryEntry",
    "ParamSpec",
    "SpecHandle",
    "adversary_names",
    "canonical_json",
    "canonical_run_spec",
    "canonical_sweep_spec",
    "describe_registry",
    "get_entry",
    "portfolio_handles",
    "register_adversary",
    "spec_digest",
    "sweep_handles",
    "to_run_spec",
    "unregister_adversary",
]
