"""Stdlib HTTP/JSON front-end over the job scheduler.

:class:`ServiceServer` wraps a ``ThreadingHTTPServer`` (one handler
thread per connection, stdlib only -- no framework dependency) around a
:class:`~repro.service.scheduler.JobScheduler`.

Endpoints
---------
======================  ====================================================
``GET /healthz``         liveness: ``{"status": "ok", "version": ...}``
``GET /metrics``         scheduler + cache + per-tenant + HTTP counters
``GET /v1/specs``        adversary registry + task kinds (names, params)
``POST /v1/runs``        submit a run spec -> ``{"job_id", "status", ...}``
``POST /v1/runs:batch``  submit ``{"specs": [...]}`` -> ``{"jobs": [...]}``
                         (per-item job ids/digests in order; invalid items
                         get ``{"error": ...}`` without failing the batch)
``POST /v1/sweeps``      submit a sweep spec -> same job envelope
``POST /v1/tasks``       submit a task graph ``{"tasks": [...], "outputs":
                         [...]}`` -> job envelope with per-node statuses
``GET /v1/runs/<id>``    job state (+ serialized result when ``done``)
``GET /v1/sweeps/<id>``  alias of ``GET /v1/runs/<id>``
``GET /v1/tasks/<id>``   alias with live per-node task statuses; add
                         ``?watch=<version>[&timeout=<s>]`` to long-poll
                         until the job moves past that update version
``POST /v1/work:claim``  (``serve --fleet``) lease a batch of ready work
                         items for a remote worker -> ``{"lease_id",
                         "ttl", "items": [...]}``
``POST /v1/work:heartbeat``  renew a lease (409 once it expired)
``POST /v1/work:complete``   land a worker's encoded results by digest
``POST /v1/shutdown``    acknowledge, then stop the server gracefully
======================  ====================================================

Request bodies are bare spec documents (``{"adversary": ..., "n": ...}``);
invalid specs come back as ``400 {"error": ...}``, unknown jobs as 404.
Submissions are answered immediately (the job runs in the scheduler's
worker threads); clients poll ``GET /v1/runs/<id>`` -- see
:class:`repro.service.client.ServiceClient.wait`.

Hardening (all strictly opt-in -- a bare ``ServiceServer()`` behaves
exactly like the pre-hardening service):

* **auth** -- pass ``auth`` (a token->tenant dict or
  :class:`~repro.service.tenancy.TokenAuthenticator`) and every request
  except ``GET /healthz`` needs ``Authorization: Bearer <token>`` (401
  otherwise); the token's tenant id flows into job records, the journal,
  and per-tenant accounting;
* **rate limiting + backpressure** -- per-tenant token buckets and a
  global ``max_queue_depth`` turn excess submissions into
  ``429 {"error", "reason", "retry_after"}`` with a ``Retry-After``
  header; per-tenant byte/job quotas answer 429 with
  ``reason="quota"``;
* **request timeout** -- ``request_timeout`` bounds every socket read, so
  a slow-loris client that declares a ``Content-Length`` and never sends
  the bytes gets 408 and its connection dropped instead of pinning a
  handler thread;
* **client disconnects** -- a client that goes away mid-response (or
  mid-long-poll) is swallowed quietly and counted in the
  ``http.client_disconnects`` metric, never dumped as a traceback;
* **structured request logs** -- with ``access_log`` enabled each request
  emits one JSON line (method, path, tenant, status, duration, queue
  depth) on the configured stream, replacing the silenced stdlib
  ``log_message``.

Binding ``port=0`` picks an ephemeral port (tests and CI); the bound
address is available as :attr:`ServiceServer.url` after construction.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro._version import __version__
from repro.errors import (
    AuthenticationError,
    LeaseExpiredError,
    QuotaExceededError,
    RateLimitedError,
    ServiceError,
    SpecError,
)
from repro.obs import trace as _trace
from repro.obs.metrics import CounterMap, Registry, flatten_json_metrics
from repro.service.cache import ResultCache
from repro.service.fleet import DEFAULT_LEASE_TTL, FleetExecutor, WorkQueue
from repro.service.journal import JobJournal
from repro.service.scheduler import JobScheduler
from repro.service.specs import describe_registry
from repro.service.tasks import describe_task_kinds
from repro.service.tenancy import (
    DEFAULT_TENANT,
    TenantLimits,
    TenantRegistry,
    TokenAuthenticator,
)

#: Default request-body cap: far above any legitimate spec or task
#: graph, far below what would let one request exhaust server memory.
DEFAULT_MAX_BODY_BYTES = 32 * 1024 * 1024

#: Default per-connection socket timeout (``serve --request-timeout``):
#: long enough for the longest legitimate ``?watch=`` hold (60s) plus
#: slack, short enough that a stalled client frees its thread promptly.
DEFAULT_REQUEST_TIMEOUT = 30.0


class _PayloadTooLarge(Exception):
    """Internal: a request body exceeded the configured cap (-> 413)."""


class _ThreadingServer(ThreadingHTTPServer):
    """Thread-per-connection HTTP server tuned for many clients at once.

    The stdlib listen backlog of 5 resets connections when hundreds of
    clients connect in the same instant (the load harness does exactly
    that); a deeper backlog lets the accept loop absorb the burst.
    """

    daemon_threads = True
    request_queue_size = 128


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto ``self.server.scheduler``; JSON in, JSON out."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-service/{__version__}"
    # Headers and body go out as two writes; without TCP_NODELAY, Nagle
    # holds the second until the client's delayed ACK (~40 ms) arrives,
    # capping warm-cache throughput at ~25 req/s per connection.
    disable_nagle_algorithm = True

    # -- plumbing ------------------------------------------------------

    def setup(self) -> None:
        # A per-connection socket timeout: every blocking read -- the
        # request line, headers, and crucially the Content-Length body a
        # slow-loris client never sends -- raises TimeoutError past it,
        # so a stalled client cannot pin this handler thread forever.
        self.timeout = getattr(self.server, "request_timeout", None)
        super().setup()

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: A003 - stdlib hook
        if getattr(self.server, "verbose", False):  # pragma: no cover - debug aid
            super().log_message(fmt, *args)

    def _count(self, counter: str) -> None:
        self.server.owner._count_http(counter)  # type: ignore[attr-defined]

    def _send_body(
        self,
        code: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._status = code
        try:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            # Echo the active trace context so a client can stitch its
            # own spans (and the job's trace_id) to this exchange.
            ctx = _trace.current_context()
            if ctx is not None:
                self.send_header("traceparent", ctx.to_header())
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client went away mid-response (a timed-out long-poller
            # is the common case).  Nothing to answer and nobody to
            # answer it to: count it, close, no traceback.
            self._count("client_disconnects")
            self.close_connection = True

    def _send_json(
        self,
        code: int,
        doc: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._send_body(
            code, json.dumps(doc).encode("utf-8"), "application/json", headers
        )

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        self._send_body(code, text.encode("utf-8"), content_type)

    def _read_json(self) -> Dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise SpecError("Content-Length header is not an integer") from None
        cap = getattr(self.server, "max_body_bytes", DEFAULT_MAX_BODY_BYTES)
        if length > cap:
            # The body is validated *before* allocation: a hostile or
            # malformed Content-Length must not make the handler thread
            # buffer an unbounded request into memory.
            raise _PayloadTooLarge(
                f"request body of {length} bytes exceeds the server cap "
                f"of {cap} bytes"
            )
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw:
            raise SpecError("request body must be a JSON object")
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SpecError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise SpecError("request body must be a JSON object")
        return doc

    @property
    def scheduler(self) -> JobScheduler:
        return self.server.scheduler  # type: ignore[attr-defined]

    # -- request envelope: auth, 429/408 mapping, structured logging ---

    def _authenticate(self, path: str) -> Optional[str]:
        """The requesting tenant id, or ``None`` after sending a 401.

        ``GET /healthz`` stays open (load balancers and liveness probes
        do not carry tokens); everything else needs a valid bearer token
        once an authenticator is configured.
        """
        auth: Optional[TokenAuthenticator] = getattr(self.server, "auth", None)
        if auth is None:
            return DEFAULT_TENANT
        if path == "/healthz":
            return "-"
        try:
            return auth.authenticate(self.headers.get("Authorization"))
        except AuthenticationError as exc:
            self._count("auth_failures")
            self.close_connection = True
            self._send_json(
                401, {"error": str(exc)}, headers={"WWW-Authenticate": "Bearer"}
            )
            return None

    def _send_throttled(self, exc: RateLimitedError) -> None:
        """429 with ``Retry-After``; quota rejections are labelled so the
        client can tell "wait and retry" from "you are out of budget"."""
        self._count("rate_limited")
        # The request body (if any) was never read -- close so a
        # keep-alive connection cannot misparse it as the next request.
        self.close_connection = True
        retry_after = 1.0 if exc.retry_after is None else max(0.0, exc.retry_after)
        self._send_json(
            429,
            {
                "error": str(exc),
                "reason": "quota" if isinstance(exc, QuotaExceededError) else "rate-limited",
                "retry_after": retry_after,
            },
            headers={"Retry-After": f"{max(1, int(retry_after + 0.999))}"},
        )

    def _dispatch(self, handler: Any) -> None:
        """Wrap one request: authenticate, route, map hangs/disconnects.

        Every outcome -- success, 4xx, a stalled read (408), a vanished
        client -- funnels through here so the structured request log
        sees all of them and no handler thread ever dies with a
        traceback for a client-side failure.
        """
        t0 = time.monotonic()
        self._status: Optional[int] = None
        self._tenant: Optional[str] = None
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        # An incoming W3C traceparent header becomes the parent context:
        # the request span (when tracing) and the job's recorded trace id
        # both join the caller's trace.  Context activation works even
        # with tracing off, so the id still flows into job + journal.
        ctx = _trace.TraceContext.from_header(self.headers.get("traceparent"))
        with _trace.context(ctx):
            with _trace.span("request", method=self.command, path=path) as sp:
                try:
                    self._count("requests")
                    tenant = self._authenticate(path)
                    if tenant is None:
                        return
                    self._tenant = tenant
                    handler(path, tenant)
                except RateLimitedError as exc:
                    self._send_throttled(exc)
                except TimeoutError:
                    # The socket timed out mid-read: the client declared
                    # bytes it never sent (slow loris) or stalled
                    # mid-body.  Best-effort 408, then drop the
                    # connection -- the thread must come back.
                    self._count("request_timeouts")
                    self.close_connection = True
                    self._send_json(
                        408, {"error": "request timed out waiting for the body"}
                    )
                except (BrokenPipeError, ConnectionResetError):
                    self._count("client_disconnects")
                    self.close_connection = True
                finally:
                    duration = time.monotonic() - t0
                    sp.set_attrs(status=self._status, tenant=self._tenant)
                    self.server.owner._observe_request(  # type: ignore[attr-defined]
                        duration
                    )
                    self._log_request(path, duration)

    def _log_request(self, path: str, duration: float) -> None:
        """One structured JSON line per request on the configured stream.

        The write happens under the server-wide access-log lock: handler
        threads share one stream, and Python only guarantees atomic
        appends for buffered writes below the buffer size -- concurrent
        bursts were observed interleaving records mid-line.  One line per
        request is short; the lock is never contended for long.
        """
        stream: Optional[TextIO] = getattr(self.server, "access_log_stream", None)
        if stream is None:
            return
        record = {
            "ts": round(time.time(), 3),
            "method": self.command,
            "path": path,
            "tenant": self._tenant,
            "status": self._status,
            "duration_ms": round(duration * 1000.0, 3),
            "queue_depth": self.scheduler.queue_depth(),
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        lock = self.server.owner._access_log_lock  # type: ignore[attr-defined]
        try:
            with lock:
                stream.write(line)
                stream.flush()
        except (OSError, ValueError):  # pragma: no cover - log stream closed
            pass

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._handle_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch(self._handle_post)

    def _handle_get(self, path: str, tenant: str) -> None:
        if path == "/healthz":
            self._send_json(200, {"status": "ok", "version": __version__})
            return
        if path == "/metrics":
            doc = self.scheduler.metrics()
            doc["http"] = self.server.owner.http_metrics()  # type: ignore[attr-defined]
            query = parse_qs(urlparse(self.path).query)
            if query.get("format", [""])[0] == "prometheus":
                # Typed instruments render natively; the legacy nested
                # JSON blocks ride along as flattened gauge samples so
                # one scrape sees the whole document.
                text = self.server.owner.registry.to_prometheus(  # type: ignore[attr-defined]
                    extra_lines=flatten_json_metrics(doc)
                )
                self._send_text(
                    200, text, "text/plain; version=0.0.4; charset=utf-8"
                )
                return
            self._send_json(200, doc)
            return
        if path == "/v1/specs":
            self._send_json(
                200,
                {
                    "adversaries": describe_registry(),
                    "task_kinds": describe_task_kinds(),
                },
            )
            return
        for prefix in ("/v1/runs/", "/v1/sweeps/", "/v1/tasks/"):
            if path.startswith(prefix):
                job_id = path[len(prefix):]
                try:
                    job = self._get_job(job_id)
                except SpecError as exc:
                    self._send_json(400, {"error": str(exc)})
                    return
                except ServiceError as exc:
                    self._send_json(404, {"error": str(exc)})
                    return
                self._send_json(200, job.to_doc())
                return
        self._send_json(404, {"error": f"unknown path {path!r}"})

    def _get_job(self, job_id: str) -> Any:
        """Resolve a job, honouring the ``?watch=<version>`` long-poll.

        ``watch`` holds the request until the job's update version moves
        past the one given (or the optional ``timeout``, capped so a
        handler thread can never be parked indefinitely, elapses).
        """
        query = parse_qs(urlparse(self.path).query)
        if "watch" not in query:
            return self.scheduler.job(job_id)
        try:
            version = int(query["watch"][0])
        except ValueError:
            raise SpecError(
                f"watch version must be an integer, got {query['watch'][0]!r}"
            ) from None
        try:
            timeout = float(query.get("timeout", ["30"])[0])
        except ValueError:
            raise SpecError(
                f"watch timeout must be a number, got {query['timeout'][0]!r}"
            ) from None
        timeout = max(0.0, min(timeout, 60.0))
        return self.scheduler.wait_for_update(job_id, version=version, timeout=timeout)

    def _check_backpressure(self) -> None:
        """Global queue-depth backpressure, before any spec is parsed.

        Per-tenant buckets cannot protect the server from many distinct
        tenants at once; the queue-depth cap is the service-wide wall.
        """
        limit = getattr(self.server, "max_queue_depth", None)
        if limit is None:
            return
        depth = self.scheduler.queue_depth()
        if depth >= limit:
            raise RateLimitedError(
                f"job queue is full ({depth} queued, limit {limit}); "
                "retry shortly",
                retry_after=1.0,
            )

    def _handle_post(self, path: str, tenant: str) -> None:
        if path == "/v1/shutdown":
            self._send_json(200, {"status": "shutting-down"})
            self.server.owner.stop_async()  # type: ignore[attr-defined]
            return
        if path in ("/v1/work:claim", "/v1/work:heartbeat", "/v1/work:complete"):
            # Fleet traffic authenticates like any tenant (handled in
            # _dispatch) but bypasses submission rate limits and queue
            # backpressure: claims *drain* the queue rather than fill
            # it, and a throttled heartbeat would expire a healthy
            # lease and trigger pointless recomputation.
            self._post_work(path, tenant)
            return
        if path not in ("/v1/runs", "/v1/sweeps", "/v1/tasks", "/v1/runs:batch"):
            self._send_json(404, {"error": f"unknown path {path!r}"})
            return
        # Admission control happens before the body is parsed: a
        # throttled client should be turned away as cheaply as possible.
        tenancy: Optional[TenantRegistry] = getattr(self.server, "tenancy", None)
        if tenancy is not None:
            tenancy.admit(tenant)
        self._check_backpressure()
        if path == "/v1/runs:batch":
            self._post_runs_batch(tenant)
            return
        try:
            spec = self._read_json()
            if path == "/v1/runs":
                job = self.scheduler.submit_run(spec, tenant=tenant)
            elif path == "/v1/sweeps":
                job = self.scheduler.submit_sweep(spec, tenant=tenant)
            else:
                job = self.scheduler.submit_tasks(spec, tenant=tenant)
        except _PayloadTooLarge as exc:
            self._send_too_large(exc)
            return
        except SpecError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self._send_json(202, job.to_doc(include_result=job.finished))

    def _post_work(self, path: str, tenant: str) -> None:
        """``/v1/work:*`` -- the fleet's claim/heartbeat/complete calls.

        404 with a hint when the server was started without ``--fleet``;
        a reclaimed lease answers 409 (the client raises
        :class:`~repro.errors.LeaseExpiredError`).
        """
        queue: Optional[WorkQueue] = getattr(self.server, "fleet", None)
        if queue is None:
            self._send_json(
                404,
                {"error": f"{path!r} requires the worker fleet (start with serve --fleet)"},
            )
            return
        try:
            body = self._read_json()
        except _PayloadTooLarge as exc:
            self._send_too_large(exc)
            return
        except SpecError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        worker = str(body.get("worker") or tenant)
        try:
            if path == "/v1/work:claim":
                tenancy: Optional[TenantRegistry] = getattr(self.server, "tenancy", None)
                if tenancy is not None:
                    tenancy.on_worker_claim(tenant)
                doc = queue.claim(
                    worker,
                    limit=int(body.get("limit", 1)),
                    wait=float(body.get("wait", 0.0)),
                )
            elif path == "/v1/work:heartbeat":
                doc = queue.heartbeat(worker, str(body.get("lease_id")))
            else:
                results = body.get("results")
                if not isinstance(results, list):
                    self._send_json(400, {"error": "'results' must be a list"})
                    return
                doc = queue.complete(worker, str(body.get("lease_id")), results)
        except LeaseExpiredError as exc:
            self._send_json(409, {"error": str(exc)})
            return
        except (TypeError, ValueError) as exc:
            self._send_json(400, {"error": f"malformed work request: {exc}"})
            return
        self._send_json(200, doc)

    def _send_too_large(self, exc: _PayloadTooLarge) -> None:
        """413 without reading the body; close so framing stays clean."""
        # The oversized body was never read, so a keep-alive connection
        # would misparse it as the next request line: close instead.
        self.close_connection = True
        self._send_json(413, {"error": str(exc)})

    def _post_runs_batch(self, tenant: str) -> None:
        """``POST /v1/runs:batch``: per-item envelopes, in submission order.

        Each spec is submitted independently -- a malformed item becomes
        an ``{"error": ...}`` entry at its position while the valid items
        still enqueue (and dedup) exactly as single submissions would.
        A tenant running out of quota mid-batch errors the remaining
        items in place rather than failing the whole request.
        """
        try:
            body = self._read_json()
        except _PayloadTooLarge as exc:
            self._send_too_large(exc)
            return
        except SpecError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        specs = body.get("specs")
        if not isinstance(specs, list) or not specs:
            self._send_json(400, {"error": "'specs' must be a non-empty list"})
            return
        jobs = []
        for spec in specs:
            try:
                job = self.scheduler.submit_run(spec, tenant=tenant)
            except (SpecError, QuotaExceededError) as exc:
                jobs.append({"error": str(exc)})
            else:
                jobs.append(job.to_doc(include_result=False))
        self._send_json(202, {"jobs": jobs})


class ServiceServer:
    """The simulation service: scheduler + cache + threaded HTTP front-end.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port.
    executor:
        Executor name/instance the scheduler dispatches on (default
        ``"batch"``).
    cache:
        A shared :class:`ResultCache`; built from ``cache_path`` /
        ``cache_capacity`` when omitted.
    cache_path:
        JSONL persistence path for the built cache (ignored when a cache
        instance is passed).
    cache_max_bytes:
        Optional byte budget for the built cache's memory tier (ignored
        when a cache instance is passed); totals are visible in
        ``/metrics`` under ``cache.bytes``.
    scheduler_workers:
        Worker threads draining the job queue.
    journal:
        Optional :class:`~repro.service.journal.JobJournal` (or path).
        :meth:`start` replays it before serving: completed jobs
        re-resolve from the result cache, the unfinished frontier
        re-enqueues (``/metrics`` reports ``recovered_jobs`` and
        ``journal_bytes``).  Pair with ``cache_path`` so resumed task
        graphs recompute only never-finished nodes.
    max_body_bytes:
        Request-body cap (default 32 MiB); larger bodies are rejected
        with ``413`` before allocation.
    auth:
        ``None`` (open, the default), a ``{token: tenant}`` dict, or a
        :class:`~repro.service.tenancy.TokenAuthenticator`.  When set,
        every request except ``GET /healthz`` must carry a valid
        ``Authorization: Bearer`` token (401 otherwise) and runs as the
        token's tenant.
    tenancy:
        Optional pre-built :class:`~repro.service.tenancy.TenantRegistry`;
        built from ``tenant_limits`` when omitted and any limit is set.
    tenant_limits:
        Default per-tenant :class:`~repro.service.tenancy.TenantLimits`
        (rate/burst/max_bytes/max_jobs) applied to tenants without an
        explicit override.
    max_queue_depth:
        Global backpressure: submissions arriving while this many jobs
        are already queued answer ``429`` + ``Retry-After``.
    request_timeout:
        Per-connection socket timeout in seconds (default 30); a client
        that stalls mid-request gets 408 and is disconnected.  ``None``
        disables (not recommended outside tests).
    access_log:
        When true, emit one structured JSON line per request (method,
        path, tenant, status, duration, queue depth) to ``log_stream``
        (default ``sys.stderr``).
    fleet:
        Enable the distributed worker fleet: ``/v1/work:*`` endpoints
        go live and run work is offered to remote ``repro worker``
        processes before falling back to local execution (see
        :mod:`repro.service.fleet`).
    lease_ttl:
        Seconds a worker lease survives without a heartbeat (fleet
        only).
    claim_deadline:
        Seconds offered work waits for a remote claim before the local
        fallback takes it (fleet only; collapses to zero while no
        worker has been seen recently).

    Use as a context manager (``with ServiceServer() as srv:``) or call
    :meth:`start` / :meth:`stop` explicitly.  :meth:`serve_forever`
    blocks the calling thread until :meth:`stop` or ``Ctrl-C`` (the CLI
    ``serve`` path).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        executor: Any = "batch",
        cache: Optional[ResultCache] = None,
        cache_path: Optional[str] = None,
        cache_capacity: int = 4096,
        cache_max_bytes: Optional[int] = None,
        scheduler_workers: int = 1,
        journal: Optional[Union[JobJournal, str, Path]] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        auth: Optional[Union[TokenAuthenticator, Dict[str, str]]] = None,
        tenancy: Optional[TenantRegistry] = None,
        tenant_limits: Optional[TenantLimits] = None,
        max_queue_depth: Optional[int] = None,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
        access_log: bool = False,
        log_stream: Optional[TextIO] = None,
        fleet: bool = False,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        claim_deadline: float = 2.0,
    ) -> None:
        if max_body_bytes < 1:
            raise ServiceError(f"max_body_bytes must be >= 1, got {max_body_bytes}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ServiceError(
                f"max_queue_depth must be >= 1 or None, got {max_queue_depth}"
            )
        if request_timeout is not None and request_timeout <= 0:
            raise ServiceError(
                f"request_timeout must be > 0 or None, got {request_timeout}"
            )
        if cache is None:
            cache = ResultCache(
                path=cache_path, capacity=cache_capacity, max_bytes=cache_max_bytes
            )
        if isinstance(auth, dict):
            auth = TokenAuthenticator(auth)
        if tenancy is None and tenant_limits is not None:
            tenancy = TenantRegistry(default_limits=tenant_limits)
        self.auth = auth
        self.tenancy = tenancy
        #: The distributed work queue (``serve --fleet``), or ``None``.
        #: When enabled, the scheduler's executor is wrapped in a
        #: :class:`FleetExecutor`: addressable run work is offered to
        #: remote workers first and falls back to the local executor
        #: after ``claim_deadline`` (immediately while no worker has
        #: been seen), so a fleetless server behaves like a plain one.
        self.fleet: Optional[WorkQueue] = None
        if fleet:
            if journal is not None and not isinstance(journal, JobJournal):
                # The queue and the scheduler must share one journal
                # instance so lease lines and job lifecycle interleave
                # in a single ledger.
                journal = JobJournal(journal)
            self.fleet = WorkQueue(
                cache=cache, lease_ttl=lease_ttl, journal=journal
            )
            executor = FleetExecutor(
                self.fleet, fallback=executor, claim_deadline=claim_deadline
            )
        #: One typed-metrics registry for the whole service: the
        #: scheduler's lifecycle counters and the HTTP layer's
        #: counters/latency histogram all register here, so a single
        #: ``/metrics?format=prometheus`` scrape covers every layer.
        self.registry = Registry()
        self.scheduler = JobScheduler(
            executor=executor,
            cache=cache,
            workers=scheduler_workers,
            journal=journal,
            tenancy=tenancy,
            registry=self.registry,
            fleet=self.fleet,
        )
        self._httpd = _ThreadingServer((host, port), _Handler)
        self._httpd.scheduler = self.scheduler  # type: ignore[attr-defined]
        self._httpd.owner = self  # type: ignore[attr-defined]
        self._httpd.max_body_bytes = max_body_bytes  # type: ignore[attr-defined]
        self._httpd.auth = auth  # type: ignore[attr-defined]
        self._httpd.tenancy = tenancy  # type: ignore[attr-defined]
        self._httpd.max_queue_depth = max_queue_depth  # type: ignore[attr-defined]
        self._httpd.fleet = self.fleet  # type: ignore[attr-defined]
        self._httpd.request_timeout = request_timeout  # type: ignore[attr-defined]
        self._httpd.access_log_stream = (  # type: ignore[attr-defined]
            (log_stream or sys.stderr) if access_log else None
        )
        self._http_counters = CounterMap(
            self.registry,
            "repro_http",
            (
                "requests",
                "auth_failures",
                "rate_limited",
                "request_timeouts",
                "client_disconnects",
            ),
            help="HTTP front-end counter",
        )
        self._latency = self.registry.histogram(
            "repro_http_request_seconds",
            "End-to-end HTTP request latency in seconds",
        )
        # Handler threads share one access-log stream; interleaved
        # partial writes under concurrency are satellite-visible log
        # corruption, so every record goes out under this lock.
        self._access_log_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self._stop_lock = threading.Lock()
        self._closed = False

    def _count_http(self, counter: str) -> None:
        self._http_counters.inc(counter)

    def _observe_request(self, seconds: float) -> None:
        self._latency.observe(seconds)

    def http_metrics(self) -> Dict[str, Any]:
        """HTTP-layer snapshot (the ``/metrics`` ``http`` block).

        The original counter keys keep their exact shape (plain ints);
        ``latency`` is additive -- the request-latency histogram's
        ``{"count", "sum_s", "p50_ms", "p95_ms", "p99_ms"}`` summary.
        """
        doc: Dict[str, Any] = self._http_counters.to_dict()
        doc["latency"] = self._latency.summary()
        return doc

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved for ``port=0``)."""
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should use."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceServer":
        """Recover from the journal, then start workers + HTTP serving.

        Recovery runs before the workers spin up, so the re-enqueued
        frontier is dispatched exactly like fresh submissions, and
        before the socket answers, so an early ``GET /v1/tasks/<id>``
        already sees the recovered job.
        """
        self.scheduler.recover()
        self.scheduler.start()
        if self._thread is None:
            self._stopped.clear()
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="repro-service-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: drain the scheduler, then close the socket.

        Idempotent under concurrent callers (``POST /v1/shutdown`` racing
        a SIGTERM delivers two calls): a lock serializes them and the
        second pass finds nothing left to do.  The scheduler drains
        *first* -- workers are joined and any still-running job is marked
        ``interrupted`` in the journal -- so no failure or progress
        record is lost while handler threads are being torn down.
        """
        with self._stop_lock:
            self.scheduler.stop()
            if self._thread is not None:
                self._httpd.shutdown()
                self._thread.join(timeout=10.0)
                self._thread = None
            if not self._closed:
                self._httpd.server_close()
                self._closed = True
            self._stopped.set()

    def stop_async(self) -> None:
        """Trigger :meth:`stop` from a handler thread (``POST /v1/shutdown``)."""
        threading.Thread(target=self.stop, name="repro-service-stop", daemon=True).start()

    def serve_forever(self) -> None:
        """Start and block until stopped (``Ctrl-C`` stops gracefully).

        The wait polls so signal handlers installed by the caller (the
        CLI ``serve`` maps ``SIGTERM`` to a graceful stop) run promptly.
        """
        self.start()
        try:
            while not self._stopped.wait(timeout=0.2):
                pass
        except KeyboardInterrupt:
            self.stop()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


__all__ = ["DEFAULT_MAX_BODY_BYTES", "DEFAULT_REQUEST_TIMEOUT", "ServiceServer"]
