"""Stdlib HTTP/JSON front-end over the job scheduler.

:class:`ServiceServer` wraps a ``ThreadingHTTPServer`` (one handler
thread per connection, stdlib only -- no framework dependency) around a
:class:`~repro.service.scheduler.JobScheduler`.

Endpoints
---------
======================  ====================================================
``GET /healthz``         liveness: ``{"status": "ok", "version": ...}``
``GET /metrics``         scheduler + cache counters (JSON)
``GET /v1/specs``        adversary registry + task kinds (names, params)
``POST /v1/runs``        submit a run spec -> ``{"job_id", "status", ...}``
``POST /v1/runs:batch``  submit ``{"specs": [...]}`` -> ``{"jobs": [...]}``
                         (per-item job ids/digests in order; invalid items
                         get ``{"error": ...}`` without failing the batch)
``POST /v1/sweeps``      submit a sweep spec -> same job envelope
``POST /v1/tasks``       submit a task graph ``{"tasks": [...], "outputs":
                         [...]}`` -> job envelope with per-node statuses
``GET /v1/runs/<id>``    job state (+ serialized result when ``done``)
``GET /v1/sweeps/<id>``  alias of ``GET /v1/runs/<id>``
``GET /v1/tasks/<id>``   alias with live per-node task statuses; add
                         ``?watch=<version>[&timeout=<s>]`` to long-poll
                         until the job moves past that update version
``POST /v1/shutdown``    acknowledge, then stop the server gracefully
======================  ====================================================

Request bodies are bare spec documents (``{"adversary": ..., "n": ...}``);
invalid specs come back as ``400 {"error": ...}``, unknown jobs as 404.
Submissions are answered immediately (the job runs in the scheduler's
worker threads); clients poll ``GET /v1/runs/<id>`` -- see
:class:`repro.service.client.ServiceClient.wait`.

Binding ``port=0`` picks an ephemeral port (tests and CI); the bound
address is available as :attr:`ServiceServer.url` after construction.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro._version import __version__
from repro.errors import ServiceError, SpecError
from repro.service.cache import ResultCache
from repro.service.journal import JobJournal
from repro.service.scheduler import JobScheduler
from repro.service.specs import describe_registry
from repro.service.tasks import describe_task_kinds

#: Default request-body cap: far above any legitimate spec or task
#: graph, far below what would let one request exhaust server memory.
DEFAULT_MAX_BODY_BYTES = 32 * 1024 * 1024


class _PayloadTooLarge(Exception):
    """Internal: a request body exceeded the configured cap (-> 413)."""


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto ``self.server.scheduler``; JSON in, JSON out."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-service/{__version__}"

    # -- plumbing ------------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: A003 - stdlib hook
        if getattr(self.server, "verbose", False):  # pragma: no cover - debug aid
            super().log_message(fmt, *args)

    def _send_json(self, code: int, doc: Dict[str, Any]) -> None:
        body = json.dumps(doc).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise SpecError("Content-Length header is not an integer") from None
        cap = getattr(self.server, "max_body_bytes", DEFAULT_MAX_BODY_BYTES)
        if length > cap:
            # The body is validated *before* allocation: a hostile or
            # malformed Content-Length must not make the handler thread
            # buffer an unbounded request into memory.
            raise _PayloadTooLarge(
                f"request body of {length} bytes exceeds the server cap "
                f"of {cap} bytes"
            )
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw:
            raise SpecError("request body must be a JSON object")
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SpecError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise SpecError("request body must be a JSON object")
        return doc

    @property
    def scheduler(self) -> JobScheduler:
        return self.server.scheduler  # type: ignore[attr-defined]

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, {"status": "ok", "version": __version__})
            return
        if path == "/metrics":
            self._send_json(200, self.scheduler.metrics())
            return
        if path == "/v1/specs":
            self._send_json(
                200,
                {
                    "adversaries": describe_registry(),
                    "task_kinds": describe_task_kinds(),
                },
            )
            return
        for prefix in ("/v1/runs/", "/v1/sweeps/", "/v1/tasks/"):
            if path.startswith(prefix):
                job_id = path[len(prefix):]
                try:
                    job = self._get_job(job_id)
                except SpecError as exc:
                    self._send_json(400, {"error": str(exc)})
                    return
                except ServiceError as exc:
                    self._send_json(404, {"error": str(exc)})
                    return
                self._send_json(200, job.to_doc())
                return
        self._send_json(404, {"error": f"unknown path {path!r}"})

    def _get_job(self, job_id: str) -> Any:
        """Resolve a job, honouring the ``?watch=<version>`` long-poll.

        ``watch`` holds the request until the job's update version moves
        past the one given (or the optional ``timeout``, capped so a
        handler thread can never be parked indefinitely, elapses).
        """
        query = parse_qs(urlparse(self.path).query)
        if "watch" not in query:
            return self.scheduler.job(job_id)
        try:
            version = int(query["watch"][0])
        except ValueError:
            raise SpecError(
                f"watch version must be an integer, got {query['watch'][0]!r}"
            ) from None
        try:
            timeout = float(query.get("timeout", ["30"])[0])
        except ValueError:
            raise SpecError(
                f"watch timeout must be a number, got {query['timeout'][0]!r}"
            ) from None
        timeout = max(0.0, min(timeout, 60.0))
        return self.scheduler.wait_for_update(job_id, version=version, timeout=timeout)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/shutdown":
            self._send_json(200, {"status": "shutting-down"})
            self.server.owner.stop_async()  # type: ignore[attr-defined]
            return
        if path == "/v1/runs:batch":
            self._post_runs_batch()
            return
        if path not in ("/v1/runs", "/v1/sweeps", "/v1/tasks"):
            self._send_json(404, {"error": f"unknown path {path!r}"})
            return
        try:
            spec = self._read_json()
            if path == "/v1/runs":
                job = self.scheduler.submit_run(spec)
            elif path == "/v1/sweeps":
                job = self.scheduler.submit_sweep(spec)
            else:
                job = self.scheduler.submit_tasks(spec)
        except _PayloadTooLarge as exc:
            self._send_too_large(exc)
            return
        except SpecError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self._send_json(202, job.to_doc(include_result=job.finished))

    def _send_too_large(self, exc: _PayloadTooLarge) -> None:
        """413 without reading the body; close so framing stays clean."""
        # The oversized body was never read, so a keep-alive connection
        # would misparse it as the next request line: close instead.
        self.close_connection = True
        self._send_json(413, {"error": str(exc)})

    def _post_runs_batch(self) -> None:
        """``POST /v1/runs:batch``: per-item envelopes, in submission order.

        Each spec is submitted independently -- a malformed item becomes
        an ``{"error": ...}`` entry at its position while the valid items
        still enqueue (and dedup) exactly as single submissions would.
        """
        try:
            body = self._read_json()
        except _PayloadTooLarge as exc:
            self._send_too_large(exc)
            return
        except SpecError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        specs = body.get("specs")
        if not isinstance(specs, list) or not specs:
            self._send_json(400, {"error": "'specs' must be a non-empty list"})
            return
        jobs = []
        for spec in specs:
            try:
                job = self.scheduler.submit_run(spec)
            except SpecError as exc:
                jobs.append({"error": str(exc)})
            else:
                jobs.append(job.to_doc(include_result=False))
        self._send_json(202, {"jobs": jobs})


class ServiceServer:
    """The simulation service: scheduler + cache + threaded HTTP front-end.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port.
    executor:
        Executor name/instance the scheduler dispatches on (default
        ``"batch"``).
    cache:
        A shared :class:`ResultCache`; built from ``cache_path`` /
        ``cache_capacity`` when omitted.
    cache_path:
        JSONL persistence path for the built cache (ignored when a cache
        instance is passed).
    cache_max_bytes:
        Optional byte budget for the built cache's memory tier (ignored
        when a cache instance is passed); totals are visible in
        ``/metrics`` under ``cache.bytes``.
    scheduler_workers:
        Worker threads draining the job queue.
    journal:
        Optional :class:`~repro.service.journal.JobJournal` (or path).
        :meth:`start` replays it before serving: completed jobs
        re-resolve from the result cache, the unfinished frontier
        re-enqueues (``/metrics`` reports ``recovered_jobs`` and
        ``journal_bytes``).  Pair with ``cache_path`` so resumed task
        graphs recompute only never-finished nodes.
    max_body_bytes:
        Request-body cap (default 32 MiB); larger bodies are rejected
        with ``413`` before allocation.

    Use as a context manager (``with ServiceServer() as srv:``) or call
    :meth:`start` / :meth:`stop` explicitly.  :meth:`serve_forever`
    blocks the calling thread until :meth:`stop` or ``Ctrl-C`` (the CLI
    ``serve`` path).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        executor: Any = "batch",
        cache: Optional[ResultCache] = None,
        cache_path: Optional[str] = None,
        cache_capacity: int = 4096,
        cache_max_bytes: Optional[int] = None,
        scheduler_workers: int = 1,
        journal: Optional[Union[JobJournal, str, Path]] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        if max_body_bytes < 1:
            raise ServiceError(f"max_body_bytes must be >= 1, got {max_body_bytes}")
        if cache is None:
            cache = ResultCache(
                path=cache_path, capacity=cache_capacity, max_bytes=cache_max_bytes
            )
        self.scheduler = JobScheduler(
            executor=executor, cache=cache, workers=scheduler_workers, journal=journal
        )
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.scheduler = self.scheduler  # type: ignore[attr-defined]
        self._httpd.owner = self  # type: ignore[attr-defined]
        self._httpd.max_body_bytes = max_body_bytes  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self._stop_lock = threading.Lock()
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved for ``port=0``)."""
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should use."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceServer":
        """Recover from the journal, then start workers + HTTP serving.

        Recovery runs before the workers spin up, so the re-enqueued
        frontier is dispatched exactly like fresh submissions, and
        before the socket answers, so an early ``GET /v1/tasks/<id>``
        already sees the recovered job.
        """
        self.scheduler.recover()
        self.scheduler.start()
        if self._thread is None:
            self._stopped.clear()
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="repro-service-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: drain the scheduler, then close the socket.

        Idempotent under concurrent callers (``POST /v1/shutdown`` racing
        a SIGTERM delivers two calls): a lock serializes them and the
        second pass finds nothing left to do.  The scheduler drains
        *first* -- workers are joined and any still-running job is marked
        ``interrupted`` in the journal -- so no failure or progress
        record is lost while handler threads are being torn down.
        """
        with self._stop_lock:
            self.scheduler.stop()
            if self._thread is not None:
                self._httpd.shutdown()
                self._thread.join(timeout=10.0)
                self._thread = None
            if not self._closed:
                self._httpd.server_close()
                self._closed = True
            self._stopped.set()

    def stop_async(self) -> None:
        """Trigger :meth:`stop` from a handler thread (``POST /v1/shutdown``)."""
        threading.Thread(target=self.stop, name="repro-service-stop", daemon=True).start()

    def serve_forever(self) -> None:
        """Start and block until stopped (``Ctrl-C`` stops gracefully).

        The wait polls so signal handlers installed by the caller (the
        CLI ``serve`` maps ``SIGTERM`` to a graceful stop) run promptly.
        """
        self.start()
        try:
            while not self._stopped.wait(timeout=0.2):
                pass
        except KeyboardInterrupt:
            self.stop()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


__all__ = ["ServiceServer"]
