"""Content-addressed result cache: LRU memory tier + JSONL persistence.

:class:`ResultCache` maps spec digests (:func:`repro.service.specs.spec_digest`)
to result documents.  Three result kinds share one store:

* ``"run"`` -- a full :class:`~repro.engine.executor.RunReport`, serialized
  by :func:`report_to_doc` (the final product-graph matrix is bit-packed,
  so the round trip is exact: a cache hit deserializes to a report
  byte-identical to a fresh recomputation);
* ``"cell"`` -- one sweep grid cell's ``t*`` (tiny; what makes rerunning
  an enlarged sweep grid O(1) per already-measured cell);
* ``"sweep"`` -- a whole serialized :class:`~repro.analysis.sweep.SweepResult`.

Layers
------
The in-memory tier is a bounded LRU (``capacity`` entries, recency updated
on hit).  The optional persistent tier is an append-only JSONL file:
every store appends one self-describing line, and opening a cache replays
the file (later lines win).  Eviction only trims the memory tier -- the
file keeps the full history until :meth:`ResultCache.compact` rewrites it
(atomically, temp file + rename) down to exactly the live entries.
Compaction runs on demand (``repro-broadcast cache compact``) and
automatically once byte-budget evictions have orphaned more than one full
budget's worth of file bytes, so a long-lived byte-capped server's cache
file stays bounded instead of growing forever.

Versioning
----------
Every line records :data:`CACHE_FORMAT_VERSION`.  Entries written by a
different version are *rejected at load* (counted in
``stats()["stale_rejected"]``), never served -- and the spec digest itself
embeds :data:`~repro.service.specs.SPEC_VERSION`, so results computed
under older run semantics are unreachable even if the file version
matches.

All public methods are thread-safe (one re-entrant lock), as required by
the scheduler's worker threads and the HTTP server's handler threads.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.core.state import BroadcastState
from repro.errors import CacheError
from repro.service.specs import spec_digest

if TYPE_CHECKING:  # runtime imports stay lazy (executor imports are cyclic)
    from repro.analysis.sweep import SweepResult
    from repro.engine.executor import RunReport, RunSpec

#: Bump when the entry layout (or any payload encoding) changes.
CACHE_FORMAT_VERSION = 1

#: Result kinds a cache entry may carry.  ``"task"`` holds one task-graph
#: node's encoded result (namespaced by its task kind inside the payload);
#: ``"graph"`` a whole graph job's outcome document.
ENTRY_KINDS = ("run", "cell", "sweep", "task", "graph")


def report_to_doc(report: "RunReport") -> Dict[str, Any]:
    """Serialize an uninstrumented :class:`RunReport` exactly.

    Only cache-shaped reports qualify: history/trees/trace/metrics are
    per-run instrumentation artifacts, inherently not content-addressable
    by spec (two identical specs may be run at different instrumentation
    levels), so carrying them would break the "cache hit == fresh
    recomputation" guarantee.  The final state is stored as the bit-packed
    dense matrix, which round-trips exactly on either backend.
    """
    if report.history or report.trees or report.trace is not None or report.metrics is not None:
        raise CacheError(
            "only uninstrumented RunReports are cacheable "
            "(instrumentation='none', keep_trees=False)"
        )
    state = report.final_state
    dense = state.reach_matrix  # dense bool copy, identical across backends
    return {
        "t_star": None if report.t_star is None else int(report.t_star),
        "n": int(report.n),
        "rounds": int(report.rounds),
        "adversary_name": str(report.adversary_name),
        "broadcasters": [int(b) for b in report.broadcasters],
        "seed": None if report.seed is None else int(report.seed),
        "compiled": bool(report.compiled),
        "executor": str(report.executor),
        "final_round": int(state.round_index),
        "reach_bits": np.packbits(dense).tobytes().hex(),
    }


def report_from_doc(doc: Dict[str, Any], backend: Any = None) -> "RunReport":
    """Rebuild the exact :class:`RunReport` serialized by :func:`report_to_doc`.

    ``backend`` selects the storage backend for the reconstructed final
    state (a cache hit should live in the same backend the spec asked
    for); the matrix contents are backend-independent.
    """
    from repro.engine.executor import RunReport

    try:
        n = int(doc["n"])
        bits = np.frombuffer(bytes.fromhex(doc["reach_bits"]), dtype=np.uint8)
        dense = np.unpackbits(bits, count=n * n).reshape(n, n).astype(np.bool_)
        state = BroadcastState(
            n, dense, round_index=int(doc["final_round"]), backend=backend
        )
        return RunReport(
            t_star=None if doc["t_star"] is None else int(doc["t_star"]),
            n=n,
            rounds=int(doc["rounds"]),
            adversary_name=str(doc["adversary_name"]),
            broadcasters=tuple(int(b) for b in doc["broadcasters"]),
            final_state=state,
            seed=None if doc["seed"] is None else int(doc["seed"]),
            compiled=bool(doc["compiled"]),
            executor=str(doc["executor"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CacheError(f"malformed run-report document: {exc!r}") from exc


class ResultCache:
    """Digest-keyed result store: bounded LRU + optional JSONL persistence.

    Parameters
    ----------
    path:
        Append-only JSONL store; ``None`` keeps the cache memory-only.
        An existing file is replayed on open (stale-version lines are
        rejected and counted, later duplicates win).
    capacity:
        Maximum entries held in memory; least-recently-used entries are
        evicted past it (the file, if any, is never trimmed by eviction).
    max_bytes:
        Optional byte budget for the memory tier: entries are sized by
        their serialized payload, and least-recently-used entries are
        evicted while the total exceeds the budget.  The most recent
        entry always survives (an oversized store must not be a silent
        no-op).  ``None`` disables the byte budget; the entry-count LRU
        applies either way.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        capacity: int = 4096,
        max_bytes: Optional[int] = None,
    ) -> None:
        if capacity < 1:
            raise CacheError(f"capacity must be >= 1, got {capacity}")
        if max_bytes is not None and max_bytes < 1:
            raise CacheError(f"max_bytes must be >= 1 or None, got {max_bytes}")
        self._path = Path(path) if path is not None else None
        self._capacity = capacity
        self._max_bytes = max_bytes
        self._bytes = 0
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, Tuple[str, Dict[str, Any], int]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0
        self._stale_rejected = 0
        self._loaded = 0
        self._compactions = 0
        self._evicted_bytes_since_compact = 0
        self._replaying = False
        if self._path is not None and self._path.exists():
            if self._path.stat().st_size > 0:
                raw = self._path.read_bytes()
                if not raw.endswith(b"\n"):
                    # A process killed mid-append leaves a torn final
                    # line; the entry was never acknowledged, so drop it
                    # rather than fail every future replay (and keep new
                    # appends off the fragment).
                    with self._path.open("r+b") as fh:
                        fh.truncate(raw.rfind(b"\n") + 1)
            self._replaying = True
            try:
                self._replay()
            finally:
                self._replaying = False

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _replay(self) -> None:
        with self._path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise CacheError(
                        f"{self._path}:{lineno}: cache line is not valid JSON: {exc}"
                    ) from exc
                if not isinstance(entry, dict):
                    raise CacheError(f"{self._path}:{lineno}: cache line is not an object")
                if entry.get("format_version") != CACHE_FORMAT_VERSION:
                    # A stale-version entry must be rejected, never served.
                    self._stale_rejected += 1
                    continue
                try:
                    digest = str(entry["digest"])
                    kind = str(entry["kind"])
                    payload = entry["payload"]
                except KeyError as exc:
                    raise CacheError(
                        f"{self._path}:{lineno}: cache line is missing {exc}"
                    ) from exc
                if kind not in ENTRY_KINDS:
                    raise CacheError(f"{self._path}:{lineno}: unknown entry kind {kind!r}")
                self._insert(digest, kind, payload)
                self._loaded += 1

    @staticmethod
    def _entry_line(digest: str, kind: str, payload_json: str) -> str:
        # The payload is already serialized (shared with byte accounting);
        # splice it into the envelope rather than serializing twice.  Keys
        # stay in sorted order ("payload" sorts last), so the line is
        # byte-identical to a full ``json.dumps(entry, sort_keys=True)``.
        envelope = json.dumps(
            {"digest": digest, "format_version": CACHE_FORMAT_VERSION, "kind": kind},
            sort_keys=True,
        )
        return f'{envelope[:-1]}, "payload": {payload_json}}}\n'

    def _append_line(self, digest: str, kind: str, payload_json: str) -> None:
        with self._path.open("a", encoding="utf-8") as fh:
            fh.write(self._entry_line(digest, kind, payload_json))

    def compact(self) -> Dict[str, int]:
        """Atomically rewrite the file down to exactly the live entries.

        The append-only file otherwise accumulates every overwritten,
        evicted, and stale-version line forever.  The rewrite goes
        through a temp file in the same directory + ``os.replace``, so a
        crash mid-compaction leaves the old complete file; a reload of
        the compacted file reconstructs the live memory tier exactly
        (entries in insertion order, later-lines-win replay preserved).

        Returns ``{"before_bytes", "after_bytes", "entries"}``.  Raises
        :class:`CacheError` for memory-only caches.
        """
        if self._path is None:
            raise CacheError("compact() requires a cache with a persistence path")
        with self._lock:
            before = self._path.stat().st_size if self._path.exists() else 0
            tmp = self._path.with_name(self._path.name + ".compact.tmp")
            with tmp.open("w", encoding="utf-8") as fh:
                for digest, (kind, payload, _) in self._entries.items():
                    payload_json = self._payload_json(digest, payload)
                    fh.write(self._entry_line(digest, kind, payload_json))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self._path)
            after = self._path.stat().st_size
            self._compactions += 1
            self._evicted_bytes_since_compact = 0
            return {
                "before_bytes": before,
                "after_bytes": after,
                "entries": len(self._entries),
            }

    # ------------------------------------------------------------------
    # Core store/lookup
    # ------------------------------------------------------------------

    def _payload_json(self, digest: str, payload: Any) -> Optional[str]:
        """One canonical serialization, shared by accounting + persistence.

        ``None`` (memory-only caches, non-JSON payload) falls back to a
        ``repr``-based size; a persistent cache must refuse the entry
        instead of writing an unreplayable line.
        """
        try:
            return json.dumps(payload, sort_keys=True)
        except (TypeError, ValueError) as exc:
            if self._path is not None:
                raise CacheError(
                    f"payload for {digest!r} is not JSON-serializable: {exc}"
                ) from exc
            return None

    def _insert(
        self, digest: str, kind: str, payload: Any, nbytes: Optional[int] = None
    ) -> None:
        old = self._entries.pop(digest, None)
        if old is not None:
            self._bytes -= old[2]
        if nbytes is None:
            payload_json = self._payload_json(digest, payload)
            size = len(payload_json) if payload_json is not None else len(repr(payload))
            nbytes = len(digest) + size
        self._entries[digest] = (kind, payload, nbytes)
        self._bytes += nbytes
        over_budget = (
            lambda: len(self._entries) > self._capacity
            or (self._max_bytes is not None and self._bytes > self._max_bytes)
        )
        # Trim LRU-first, but never the entry just inserted: an oversized
        # store still lands (and the file keeps it regardless).
        while len(self._entries) > 1 and over_budget():
            _, (_, _, evicted_bytes) = self._entries.popitem(last=False)
            self._bytes -= evicted_bytes
            self._evictions += 1
            self._evicted_bytes_since_compact += evicted_bytes

    def store(self, digest: str, kind: str, payload: Any) -> None:
        """Insert (or overwrite) one entry; persists when a path is set."""
        if kind not in ENTRY_KINDS:
            raise CacheError(f"kind must be one of {ENTRY_KINDS}, got {kind!r}")
        payload_json = self._payload_json(digest, payload)
        size = len(payload_json) if payload_json is not None else len(repr(payload))
        with self._lock:
            self._insert(digest, kind, payload, nbytes=len(digest) + size)
            self._stores += 1
            if self._path is not None:
                self._append_line(digest, kind, payload_json)
                # Auto-compaction: once byte-budget evictions have
                # orphaned more than one full budget's worth of file
                # bytes, rewrite the file (the lock is re-entrant).
                if (
                    self._max_bytes is not None
                    and self._evicted_bytes_since_compact > self._max_bytes
                ):
                    self.compact()

    def lookup(self, digest: str, kind: Optional[str] = None) -> Optional[Any]:
        """The stored payload for ``digest``, or ``None`` (counted) on miss.

        ``kind`` (when given) must match the stored entry's kind; a
        mismatch is a miss, not an error.  Callers that derive different
        result kinds from the same spec must namespace their keys (see
        :class:`SweepCellCache`) -- one digest holds one entry.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None or (kind is not None and entry[0] != kind):
                self._misses += 1
                return None
            self._entries.move_to_end(digest)
            self._hits += 1
            return entry[1]

    def entry_nbytes(self, digest: str) -> Optional[int]:
        """The accounted size of one entry, or ``None`` when absent.

        This is the hook per-tenant byte accounting charges against
        (:mod:`repro.service.tenancy`): the entry itself stays shared and
        deduplicated, but each tenant that uses the digest is billed its
        serialized size.  Does not touch recency or hit/miss counters.
        """
        with self._lock:
            entry = self._entries.get(digest)
            return None if entry is None else entry[2]

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry, truncating the persistent file if present."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._evicted_bytes_since_compact = 0
            if self._path is not None and self._path.exists():
                self._path.write_text("")

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot (hits/misses/stores/evictions/stale/loaded/size)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self._capacity,
                "bytes": self._bytes,
                "max_bytes": self._max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "stores": self._stores,
                "evictions": self._evictions,
                "stale_rejected": self._stale_rejected,
                "loaded_from_disk": self._loaded,
                "compactions": self._compactions,
                "file_bytes": (
                    self._path.stat().st_size
                    if self._path is not None and self._path.exists()
                    else 0
                ),
            }

    # ------------------------------------------------------------------
    # Typed convenience wrappers
    # ------------------------------------------------------------------

    def store_report(self, digest: str, report: "RunReport") -> None:
        """Cache a run report under its spec digest."""
        self.store(digest, "run", report_to_doc(report))

    def lookup_report(self, digest: str, backend: Any = None) -> Optional["RunReport"]:
        """The cached :class:`RunReport` for a digest, or ``None``."""
        doc = self.lookup(digest, kind="run")
        if doc is None:
            return None
        return report_from_doc(doc, backend=backend)

    def store_sweep(self, digest: str, result: "SweepResult") -> None:
        """Cache a whole sweep result under its sweep-spec digest."""
        self.store(digest, "sweep", json.loads(result.to_json()))

    def lookup_sweep(self, digest: str) -> Optional["SweepResult"]:
        """The cached :class:`SweepResult` for a digest, or ``None``."""
        from repro.analysis.sweep import SweepResult

        doc = self.lookup(digest, kind="sweep")
        if doc is None:
            return None
        return SweepResult.from_json(json.dumps(doc))

    def __repr__(self) -> str:
        where = "memory" if self._path is None else str(self._path)
        return f"ResultCache({where}, entries={len(self)})"


class SweepCellCache:
    """The duck-typed adapter ``Executor.sweep(..., cache=...)`` accepts.

    The executor layer stays ignorant of digests: it only asks
    ``key_for(run_spec)`` (``None`` = this cell is not addressable, compute
    it), ``lookup(key)`` (``(hit, t_star)``), and ``store(key, t_star)``.
    Cells are addressable when the spec's adversary factory is a
    :class:`~repro.service.specs.SpecHandle` -- i.e. it carries the
    declarative spec its digest is computed from.  Plain factories
    (lambdas, classes) simply bypass the cache.

    Cell keys are namespaced (``cell:<digest>``): a cell spec *is* a
    canonical run spec, so an unqualified key would collide with the
    full-report entry the scheduler stores for the same digest and the
    two kinds would evict each other.
    """

    def __init__(self, cache: ResultCache) -> None:
        self.cache = cache

    def key_for(self, spec: "RunSpec") -> Optional[str]:
        """The namespaced cell key for a run spec, or ``None``."""
        cell_spec = getattr(spec.adversary, "cell_spec", None)
        if cell_spec is None:
            return None
        return "cell:" + spec_digest(cell_spec(spec.n, spec.max_rounds, spec.backend))

    def lookup(self, key: str) -> Tuple[bool, Optional[int]]:
        """``(hit, t_star)`` -- ``t_star`` may legitimately be ``None``."""
        doc = self.cache.lookup(key, kind="cell")
        if doc is None:
            return False, None
        try:
            t_star = doc["t_star"]
        except (TypeError, KeyError) as exc:
            raise CacheError(f"malformed sweep-cell document: {doc!r}") from exc
        return True, (None if t_star is None else int(t_star))

    def store(self, key: str, t_star: Optional[int]) -> None:
        """Record one computed cell (``None`` = truncated by an explicit cap)."""
        self.cache.store(key, "cell", {"t_star": None if t_star is None else int(t_star)})


__all__ = [
    "CACHE_FORMAT_VERSION",
    "ENTRY_KINDS",
    "ResultCache",
    "SweepCellCache",
    "report_from_doc",
    "report_to_doc",
]
