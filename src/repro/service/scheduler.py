"""Thread-based job scheduler: queue, dedup, batch dispatch, failure isolation.

:class:`JobScheduler` turns the executor stack into a long-lived service
core.  Submissions are declarative specs (:mod:`repro.service.specs`) or
whole task graphs (:mod:`repro.service.tasks`); each becomes a
:class:`Job` with the usual lifecycle
``queued -> running -> done | failed``.

Task-graph jobs (``kind="graph"``) are scheduled topologically: ready
``run`` tasks batch through the executor, pure compute kinds run in
dependency order, per-node statuses are mirrored live onto the job
(``GET /v1/tasks/<id>``), a failing task poisons only its downstream
tasks, and a shared :class:`~repro.service.tasks.TaskInflight` registry
dedups each task digest across concurrently-running graphs.

Three properties make it a *service* rather than a loop:

* **content-addressed dedup** -- a submit whose digest matches a cached
  result completes instantly (``cached=True``); one matching an in-flight
  job returns *that* job instead of enqueueing a duplicate.  Under any
  number of concurrent submitters, each unique digest is computed exactly
  once (the ``computations`` counter is the proof the HTTP ``/metrics``
  endpoint exposes);
* **batched dispatch** -- the worker drains every queued run job it can
  see and groups the compatible ones (same ``n``/backend/round cap) into
  a single :meth:`Executor.run_many` call, so a burst of submissions
  rides the vectorized :class:`~repro.engine.executor.BatchExecutor`
  kernels instead of running one-by-one;
* **failure isolation** -- if a batched dispatch raises, the batch is
  retried spec-by-spec on a sequential executor so exactly the offending
  jobs fail (error message recorded on the job) while the rest of the
  batch still completes.

The scheduler owns worker *threads*, not processes: executor dispatch is
numpy-heavy (releases the GIL) or process-sharded (the ``sharded``
executor brings its own pool), so threads are the right concurrency
currency at this layer.

With a :class:`~repro.service.journal.JobJournal` attached the scheduler
is also *durable*: every submission (full spec payload) and every state
transition is journaled, :meth:`JobScheduler.stop` drains in-flight jobs
to ``interrupted`` instead of losing them, and
:meth:`JobScheduler.recover` replays the journal on startup --
re-resolving completed jobs from the content-addressed cache and
re-enqueueing the unfinished frontier, so a killed server resumes task
graphs with zero recomputation of cached work.
"""

from __future__ import annotations

import itertools
import json
import re
import secrets
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.engine.executor import Executor, get_executor
from repro.errors import ServiceError
from repro.obs import trace as _trace
from repro.obs.metrics import CounterMap, Registry
from repro.service.cache import ResultCache, SweepCellCache, report_to_doc
from repro.service.journal import JobJournal, JournalEntry
from repro.service.specs import (
    canonical_run_spec,
    canonical_sweep_spec,
    spec_digest,
    sweep_handles,
    to_run_spec,
)
from repro.service.tasks import (
    TaskGraph,
    TaskGraphRunner,
    TaskInflight,
    graph_digest,
    initial_statuses,
)
from repro.service.tenancy import DEFAULT_TENANT, TenantRegistry

#: The job lifecycle; ``done``/``failed`` are terminal.  ``interrupted``
#: marks jobs a stopping scheduler drained mid-run: they are journaled as
#: unfinished and re-enqueued by :meth:`JobScheduler.recover` (new
#: process) or :meth:`JobScheduler.start` (same process).
JOB_STATES = ("queued", "running", "interrupted", "done", "failed")


@dataclass
class Job:
    """One submitted spec and its lifecycle state.

    ``result`` holds the serialized outcome once ``done``: a run-report
    document (:func:`repro.service.cache.report_to_doc`) for run jobs, a
    serialized :class:`~repro.analysis.sweep.SweepResult` document for
    sweep jobs, and a ``{"tasks", "outputs", "stats"}`` document for
    task-graph jobs.  ``cached=True`` marks jobs answered straight from
    the result cache without computing anything.  Graph jobs additionally
    carry ``nodes`` -- the live per-task status map mirrored into
    ``GET /v1/tasks/<id>`` while the graph executes.
    """

    job_id: str
    kind: str  # "run" | "sweep" | "graph"
    digest: str
    spec: Dict[str, Any]
    status: str = "queued"
    cached: bool = False
    tenant: str = DEFAULT_TENANT
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = field(default=None, repr=False)
    nodes: Optional[Dict[str, Dict[str, Any]]] = field(default=None, repr=False)
    #: Trace context captured at submit time (``TraceContext.to_doc()``):
    #: workers re-activate it around dispatch so the job's spans join the
    #: submitting request's trace tree.  ``None`` when no trace was
    #: active and no ``traceparent`` header arrived.
    trace: Optional[Dict[str, str]] = field(default=None, repr=False)
    #: Monotonic update counter: bumped on every status or per-node
    #: change.  Long-poll watchers (``GET /v1/tasks/<id>?watch=<v>``)
    #: block until it moves past the version they already saw.
    version: int = 0

    @property
    def finished(self) -> bool:
        """True in a terminal state (``done`` or ``failed``)."""
        return self.status in ("done", "failed")

    def to_doc(self, include_result: bool = True) -> Dict[str, Any]:
        """JSON document the HTTP API serves for this job."""
        doc = {
            "job_id": self.job_id,
            "kind": self.kind,
            "digest": self.digest,
            "spec": self.spec,
            "status": self.status,
            "cached": self.cached,
            "tenant": self.tenant,
            "error": self.error,
            "version": self.version,
        }
        if self.trace is not None:
            doc["trace_id"] = self.trace.get("trace_id")
        if self.nodes is not None:
            doc["tasks"] = {d: dict(node) for d, node in self.nodes.items()}
        if include_result:
            doc["result"] = self.result
        return doc


class JobScheduler:
    """Job queue + dedup + batching over one executor and one result cache.

    Parameters
    ----------
    executor:
        Executor name or instance used for dispatch (default ``"batch"``,
        which groups compatible specs into lockstep tensors).
    cache:
        Shared :class:`~repro.service.cache.ResultCache`; a fresh
        memory-only cache is created when omitted.
    workers:
        Worker *threads* draining the queue (default 1; batching, not
        thread count, is the throughput lever).
    max_batch:
        Upper bound on jobs per dispatch group.
    max_finished_jobs:
        How many terminal (``done``/``failed``) job records to retain for
        ``GET /v1/runs/<id>`` polling; the oldest are evicted past it, so
        a long-lived server's memory stays bounded (results themselves
        live on in the LRU/persistent cache).  An evicted id answers
        "unknown job" -- clients are expected to poll promptly.
    journal:
        Optional :class:`~repro.service.journal.JobJournal` (or a path to
        open one at).  When set, every submission and state transition is
        journaled, and :meth:`recover` replays the file on startup:
        terminal jobs re-resolve from the result cache, the unfinished
        frontier re-enqueues.  Pair it with a *persistent* cache so a
        resumed task graph recomputes only its never-finished nodes.
    tenancy:
        Optional :class:`~repro.service.tenancy.TenantRegistry`.  When
        set, submissions are checked against the submitting tenant's
        byte/job quotas (:class:`~repro.errors.QuotaExceededError` -> 429)
        and every job's cache bytes are charged to its tenant's account,
        reported under ``/metrics`` ``tenants``.  Shared digests stay
        deduplicated in the cache; accounting is per-tenant use.
    watch_grace:
        Seconds after its last long-poll during which a terminal job is
        exempt from retention eviction, so an active watcher's next
        ``?watch=`` poll still finds the finished job instead of a 404.
    registry:
        Optional :class:`~repro.obs.metrics.Registry` the scheduler's
        counters register into (the server passes its own so one
        ``/metrics?format=prometheus`` scrape covers both layers); a
        private registry is created when omitted.
    """

    def __init__(
        self,
        executor: Any = "batch",
        cache: Optional[ResultCache] = None,
        workers: int = 1,
        max_batch: int = 64,
        max_finished_jobs: int = 4096,
        journal: Optional[Union[JobJournal, str, Path]] = None,
        tenancy: Optional[TenantRegistry] = None,
        watch_grace: float = 120.0,
        registry: Optional[Registry] = None,
        fleet: Optional[Any] = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        if max_finished_jobs < 1:
            raise ServiceError(
                f"max_finished_jobs must be >= 1, got {max_finished_jobs}"
            )
        self._executor: Executor = get_executor(executor)
        self.cache = cache if cache is not None else ResultCache()
        self._cell_cache = SweepCellCache(self.cache)
        self._task_inflight = TaskInflight()
        self._max_batch = max_batch
        self._workers = workers
        self._cv = threading.Condition()
        self._jobs: Dict[str, Job] = {}
        self._queue: List[str] = []  # job_ids, FIFO
        self._inflight: Dict[str, str] = {}  # digest -> job_id
        self._finished: "deque[str]" = deque()  # terminal job_ids, oldest first
        self._max_finished = max_finished_jobs
        self._ids = itertools.count(1)
        # Counters live in the typed registry (shared with the HTTP layer
        # when the server passes its own) but keep the legacy dict keys on
        # /metrics via CounterMap.to_dict().
        self.registry = registry if registry is not None else Registry()
        self._counters = CounterMap(
            self.registry,
            "repro_scheduler",
            (
                "submitted",
                "dedup_inflight",
                "computations",
                "dispatches",
                "failures",
                "recovered_jobs",
            ),
            help="Scheduler lifecycle counter",
        )
        self._submitted_by_tenant = self.registry.counter(
            "repro_jobs_submitted_by_tenant_total",
            "Jobs submitted, labelled by tenant",
            labelnames=("tenant",),
        )
        self._threads: List[threading.Thread] = []
        self._stopping = False
        if journal is not None and not isinstance(journal, JobJournal):
            journal = JobJournal(journal)
        self._journal: Optional[JobJournal] = journal
        self._recovered = False
        self.tenancy = tenancy
        # The distributed WorkQueue when the server runs with the fleet
        # enabled; referenced only for metrics and lease recovery (the
        # executor wrapping happens in ServiceServer).
        self._fleet = fleet
        # Long-poll watcher bookkeeping: active watcher counts, the
        # monotonic deadline until which a recently-watched job must
        # survive retention, and terminal jobs whose eviction was
        # deferred because a watcher was (recently) attached.
        self._watch_grace = max(0.0, watch_grace)
        self._watching: Dict[str, int] = {}
        self._watched_until: Dict[str, float] = {}
        self._watch_deferred: Set[str] = set()
        # Tenants sharing each in-flight digest (the submitter plus any
        # deduped duplicates): all of them are charged when it finishes.
        self._tenant_waiters: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "JobScheduler":
        """Spin up the worker threads (idempotent).

        Jobs a previous :meth:`stop` drained to ``interrupted`` (same
        process) are re-enqueued first, so a stop/start cycle resumes
        them exactly like a journal recovery would across processes.
        """
        with self._cv:
            if self._threads:
                return self
            self._stopping = False
            for job in self._jobs.values():
                if job.status == "interrupted":
                    job.status = "queued"
                    job.version += 1
                    self._queue.append(job.job_id)
                    self._journal_state(job.job_id, "queued")
            for i in range(self._workers):
                t = threading.Thread(
                    target=self._worker_loop, name=f"repro-scheduler-{i}", daemon=True
                )
                t.start()
                self._threads.append(t)
            self._cv.notify_all()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Drain the workers; unfinished jobs stay recoverable.

        Idempotent under concurrent callers (``POST /v1/shutdown`` racing
        SIGTERM): the thread list is swapped out under the lock, so only
        one caller joins, and the drain below only touches jobs still
        ``running``.  After the workers are joined, any job a worker
        still held (a dispatch that outlived ``timeout``, or a worker
        stopped between taking and finishing a group) is marked
        ``interrupted`` -- in memory *and* in the journal -- so its
        failure record is never silently lost and a restart re-enqueues
        it.  Queued jobs stay queued (their journaled state already says
        so).
        """
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
            threads, self._threads = self._threads, []
        for t in threads:
            t.join(timeout=timeout)
        with self._cv:
            for job in self._jobs.values():
                if job.status == "running":
                    job.status = "interrupted"
                    job.version += 1
                    self._journal_state(job.job_id, "interrupted")
            self._cv.notify_all()

    def __enter__(self) -> "JobScheduler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------

    @property
    def journal(self) -> Optional[JobJournal]:
        """The attached job journal, if any (read-only)."""
        return self._journal

    def _journal_submit(self, job: Job) -> None:
        if self._journal is not None:
            self._journal.record_submit(
                job.job_id,
                job.kind,
                job.digest,
                dict(job.spec),
                tenant=job.tenant,
                trace_id=(job.trace or {}).get("trace_id"),
            )

    def _journal_state(self, job_id: str, status: str, error: Optional[str] = None) -> None:
        if self._journal is not None:
            self._journal.record_state(job_id, status, error=error)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def _submit(
        self,
        kind: str,
        spec: Dict[str, Any],
        digest: str,
        nodes: Optional[Dict[str, Dict[str, Any]]] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> Job:
        if self.tenancy is not None:
            # Quota gate before any state changes: an over-quota tenant's
            # submission must not enqueue, dedup, or touch the cache.
            self.tenancy.check_quota(tenant)
        # Captured outside the lock: the submitting thread's active trace
        # context (the request span, or an incoming traceparent header).
        ctx = _trace.current_context()
        with self._cv:
            self._counters.inc("submitted")
            self._submitted_by_tenant.inc(tenant=tenant)
            # In-flight dedup first: it must win over a cache probe so the
            # dedup path never skews hit/miss counters.
            existing = self._inflight.get(digest)
            if existing is not None:
                self._counters.inc("dedup_inflight")
                if self.tenancy is not None:
                    # The duplicate submitter shares the in-flight job but
                    # is accounted (and later charged) as its own use.
                    self.tenancy.on_submit(tenant)
                    self._tenant_waiters.setdefault(digest, set()).add(tenant)
                return self._jobs[existing]
            job = Job(
                job_id=f"job-{next(self._ids):06d}",
                kind=kind,
                digest=digest,
                spec=spec,
                tenant=tenant,
                trace=ctx.to_doc() if ctx is not None else None,
            )
            cached = self.cache.lookup(digest, kind=kind)
            if cached is not None:
                job.status = "done"
                job.cached = True
                job.result = cached
                if nodes is not None:  # graph jobs: statuses from the cached run
                    job.nodes = {
                        d: dict(node)
                        for d, node in cached.get("tasks", {}).items()
                    }
                self._jobs[job.job_id] = job
                self._retire(job)
                self._journal_submit(job)
                self._journal_state(job.job_id, "done")
                if self.tenancy is not None:
                    self.tenancy.on_cached(
                        tenant, digest, self.cache.entry_nbytes(digest) or 0
                    )
                self._cv.notify_all()
                return job
            # Node statuses must exist before the job is visible to a
            # worker: an on_update firing against nodes=None would be lost.
            job.nodes = nodes
            self._jobs[job.job_id] = job
            self._inflight[digest] = job.job_id
            self._queue.append(job.job_id)
            self._journal_submit(job)
            if self.tenancy is not None:
                self.tenancy.on_submit(tenant)
                self._tenant_waiters.setdefault(digest, set()).add(tenant)
            self._cv.notify_all()
            return job

    def submit_run(
        self, raw_spec: Dict[str, Any], tenant: str = DEFAULT_TENANT
    ) -> Job:
        """Submit one run spec; returns the (possibly pre-existing) job."""
        spec = canonical_run_spec(raw_spec)
        return self._submit("run", spec, spec_digest(spec), tenant=tenant)

    def submit_sweep(
        self, raw_spec: Dict[str, Any], tenant: str = DEFAULT_TENANT
    ) -> Job:
        """Submit one sweep spec; grid cells warm the shared cell cache."""
        spec = canonical_sweep_spec(raw_spec)
        return self._submit("sweep", spec, spec_digest(spec), tenant=tenant)

    def submit_tasks(
        self, raw: Dict[str, Any], tenant: str = DEFAULT_TENANT
    ) -> Job:
        """Submit a task graph; returns the (possibly pre-existing) job.

        ``raw`` is a graph document: ``{"tasks": [...], "outputs":
        [...]}`` with inputs referenced by digest or by earlier-task
        index (see :meth:`repro.service.tasks.TaskGraph.from_doc`).
        Raises :class:`~repro.errors.TaskError` on malformed graphs --
        a digest never exists for an invalid graph.
        """
        graph, outputs = TaskGraph.from_doc(raw)
        spec = graph.to_doc()
        spec["outputs"] = list(outputs)
        return self._submit(
            "graph",
            spec,
            graph_digest(graph, outputs),
            nodes=initial_statuses(graph),
            tenant=tenant,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def job(self, job_id: str) -> Job:
        """Look up a job by id; :class:`ServiceError` on unknown ids."""
        with self._cv:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ServiceError(f"unknown job id {job_id!r}") from None

    def wait(self, job_id: str, timeout: Optional[float] = 30.0) -> Job:
        """Block until the job reaches a terminal state (or time out)."""
        job = self.job(job_id)
        with self._cv:
            if not self._cv.wait_for(lambda: job.finished, timeout=timeout):
                raise ServiceError(
                    f"job {job_id} still {job.status!r} after {timeout}s"
                )
        return job

    def wait_for_update(
        self, job_id: str, version: int = -1, timeout: Optional[float] = 30.0
    ) -> Job:
        """Long-poll: block until the job moves past ``version``.

        Returns as soon as ``job.version != version`` (any status or
        per-node transition bumps it) or the job is already terminal;
        otherwise returns the unchanged job after ``timeout``.  Pass the
        ``version`` from the last document you saw (``-1`` to get the
        current state immediately) -- this is the push-update primitive
        behind ``GET /v1/tasks/<id>?watch=<version>``.

        Watching also *pins* the job against retention eviction: while a
        watcher is attached -- and for ``watch_grace`` seconds after the
        last one detaches -- a terminal job cannot be retired, so a
        long-poller's next request finds the final document instead of
        an "unknown job id" 404.
        """
        with self._cv:
            try:
                job = self._jobs[job_id]
            except KeyError:
                raise ServiceError(f"unknown job id {job_id!r}") from None
            self._watching[job_id] = self._watching.get(job_id, 0) + 1
            try:
                self._cv.wait_for(
                    lambda: job.finished or job.version != version, timeout=timeout
                )
            finally:
                remaining = self._watching[job_id] - 1
                if remaining:
                    self._watching[job_id] = remaining
                else:
                    del self._watching[job_id]
                self._watched_until[job_id] = time.monotonic() + self._watch_grace
        return job

    def metrics(self) -> Dict[str, Any]:
        """Counter snapshot: jobs by state, scheduler counters, cache stats.

        Consistency contract: each top-level block is a consistent
        snapshot under its *owner's* lock -- ``jobs``/``queue_depth``/
        ``inflight``/``journal_bytes`` under the scheduler lock, the
        lifecycle counters under their per-instrument locks, ``cache``
        under the cache's lock, ``tenants`` under the tenant registry's
        -- but no lock is held across blocks, so blocks may be mutually
        stale by whatever completed between their snapshots.  That is
        deliberate: ``/metrics`` must never serialize against dispatch,
        and cross-block arithmetic (e.g. ``submitted - jobs.done``) is
        only ever approximate on a live server.
        """
        with self._cv:
            by_state = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_state[job.status] += 1
            doc = {
                "jobs": by_state,
                "queue_depth": len(self._queue),
                "inflight": len(self._inflight),
                "journal_bytes": 0 if self._journal is None else self._journal.nbytes,
            }
        doc.update(self._counters.to_dict())
        doc["cache"] = self.cache.stats()
        if self.tenancy is not None:
            doc["tenants"] = self.tenancy.metrics()
        if self._fleet is not None:
            doc["fleet"] = self._fleet.metrics()
        # Execution detail only: kernel choice never enters spec digests,
        # so operators can flip REPRO_KERNEL without invalidating caches.
        from repro.core.kernels import kernel_table

        doc["kernels"] = kernel_table()
        return doc

    def queue_depth(self) -> int:
        """How many jobs are queued right now (the backpressure signal)."""
        with self._cv:
            return len(self._queue)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self) -> int:
        """Replay the journal; returns how many jobs were re-enqueued.

        Idempotent, and a no-op without a journal.  For every journaled
        job (in submission order):

        * ``done`` -- re-resolved from the content-addressed result
          cache; a hit restores the job (``cached=True``) without any
          computation.  A miss (the cache file was lost or trimmed) puts
          the job back on the queue instead -- recovery must never
          fabricate results;
        * ``failed`` -- restored with its recorded error (the failure
          record survives the restart);
        * ``queued`` / ``running`` / ``interrupted`` -- the unfinished
          frontier: re-enqueued for the workers, counted in the
          ``recovered_jobs`` metric.  Graph jobs rebuild their per-node
          status maps from the journaled graph document; node results
          computed before the crash hit the persistent cache during the
          re-dispatch, so only never-finished nodes recompute.

        The job-id counter advances past every replayed id, so new
        submissions never collide with recovered ones.
        """
        if self._journal is None:
            return 0
        with self._cv:
            if self._recovered:
                return 0
            self._recovered = True
        if self._fleet is not None:
            # Leases granted but never completed before the crash: the
            # remote work can no longer land (the queue restarts empty),
            # so count what the restart cost the fleet.
            self._fleet.recover(self._journal)
        entries = self._journal.replay()
        recovered = 0
        max_seen = 0
        with self._cv:
            for entry in entries.values():
                match = re.fullmatch(r"job-(\d+)", entry.job_id)
                if match:
                    max_seen = max(max_seen, int(match.group(1)))
                if entry.job_id in self._jobs:
                    continue
                if self._restore(entry):
                    recovered += 1
            if max_seen:
                self._ids = itertools.count(max_seen + 1)
            self._counters.inc("recovered_jobs", recovered)
            self._cv.notify_all()
        return recovered

    def _restore(self, entry: JournalEntry) -> bool:
        """Under the lock: rebuild one journaled job.  True if re-enqueued."""
        job = Job(
            job_id=entry.job_id,
            kind=entry.kind,
            digest=entry.digest,
            spec=entry.spec,
            tenant=entry.tenant,
            # The journal persists only the trace id; a fresh span id keeps
            # the restored job's spans in the original request's trace
            # (they surface as a new root -- the pre-crash spans are gone).
            trace=(
                {"trace_id": entry.trace_id, "span_id": secrets.token_hex(8)}
                if entry.trace_id
                else None
            ),
        )
        if entry.status == "failed":
            job.status = "failed"
            job.error = entry.error or "failed before restart (journal)"
            self._jobs[job.job_id] = job
            self._retire(job)
            return False
        if entry.status == "done":
            cached = self.cache.lookup(entry.digest, kind=entry.kind)
            if cached is not None:
                job.status = "done"
                job.cached = True
                job.result = cached
                if job.kind == "graph":
                    job.nodes = {
                        d: dict(node) for d, node in cached.get("tasks", {}).items()
                    }
                self._jobs[job.job_id] = job
                self._retire(job)
                return False
            # The result is gone (cache trimmed/lost): fall through and
            # recompute rather than serve a "done" job with no result.
        # The unfinished frontier (queued/running/interrupted, or a done
        # job whose result vanished): re-enqueue under the original id.
        if entry.digest in self._inflight:
            # A duplicate digest (possible only when an older completed
            # job's cache entry was evicted and the spec was resubmitted)
            # is already queued; restoring a second queued copy would
            # wait forever.  Skip it -- its id answers "unknown job".
            return False
        if entry.kind == "graph":
            try:
                graph, _ = TaskGraph.from_doc(entry.spec)
            except Exception as exc:
                job.status = "failed"
                job.error = f"unrecoverable graph spec: {type(exc).__name__}: {exc}"
                self._jobs[job.job_id] = job
                self._retire(job)
                self._journal_state(job.job_id, "failed", error=job.error)
                return False
            job.nodes = initial_statuses(graph)
        self._jobs[job.job_id] = job
        self._inflight[job.digest] = job.job_id
        self._queue.append(job.job_id)
        self._journal_state(job.job_id, "queued")
        return True

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------

    def _take_group(self) -> List[Job]:
        """Under the lock: pop the next compatible dispatch group.

        The head of the queue fixes the group shape: sweep and graph
        jobs run alone; a run job pulls every other queued run job that
        shares its ``(n, backend, max_rounds)`` (up to ``max_batch``),
        which is exactly the grouping
        :class:`~repro.engine.executor.BatchExecutor` vectorizes.
        """
        head = self._jobs[self._queue.pop(0)]
        head.status = "running"
        head.version += 1
        self._journal_state(head.job_id, "running")
        if head.kind != "run":
            return [head]
        signature = (head.spec["n"], head.spec["backend"], head.spec["max_rounds"])
        group = [head]
        remaining: List[str] = []
        for job_id in self._queue:
            job = self._jobs[job_id]
            if (
                len(group) < self._max_batch
                and job.kind == "run"
                and (job.spec["n"], job.spec["backend"], job.spec["max_rounds"])
                == signature
            ):
                job.status = "running"
                job.version += 1
                self._journal_state(job.job_id, "running")
                group.append(job)
            else:
                remaining.append(job_id)
        self._queue = remaining
        self._cv.notify_all()  # queued -> running is watchable too
        return group

    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                self._cv.wait_for(lambda: self._queue or self._stopping)
                if self._stopping:
                    return
                group = self._take_group()
            head = group[0]
            try:
                # Re-activate the submitting request's trace context on
                # this worker thread: the job span (and everything the
                # dispatch opens beneath it) joins the request's tree.
                with _trace.context(_trace.TraceContext.from_doc(head.trace)):
                    with _trace.span(
                        "job", job_id=head.job_id, kind=head.kind, jobs=len(group)
                    ):
                        if head.kind == "sweep":
                            self._dispatch_sweep(head)
                        elif head.kind == "graph":
                            self._dispatch_graph(head)
                        else:
                            self._dispatch_runs(group)
            except Exception as exc:  # a worker thread must never die
                for job in group:
                    if not job.finished:
                        self._finish(job, None, f"{type(exc).__name__}: {exc}")

    def _retire(self, job: Job) -> None:
        """Under the lock: record a terminal job, evicting the oldest past
        the retention bound (results stay reachable through the cache).

        Jobs with an attached long-poll watcher -- or watched within the
        last ``watch_grace`` seconds -- are deferred instead of evicted,
        so an active watcher's next poll still finds the terminal
        document; deferred jobs are re-examined on later retirements and
        dropped once their grace expires.
        """
        now = time.monotonic()
        for job_id in list(self._watch_deferred):
            if (
                self._watching.get(job_id, 0) == 0
                and self._watched_until.get(job_id, 0.0) <= now
            ):
                self._watch_deferred.discard(job_id)
                self._watched_until.pop(job_id, None)
                self._jobs.pop(job_id, None)
        self._finished.append(job.job_id)
        while len(self._finished) > self._max_finished:
            victim = self._finished.popleft()
            if (
                self._watching.get(victim, 0) > 0
                or self._watched_until.get(victim, 0.0) > now
            ):
                self._watch_deferred.add(victim)
                continue
            self._watched_until.pop(victim, None)
            self._jobs.pop(victim, None)

    def _finish(self, job: Job, result: Optional[Dict[str, Any]], error: Optional[str]) -> None:
        """Publish a terminal state; cache success before releasing dedup."""
        if error is None:
            # Store before dropping the in-flight claim so a concurrent
            # submit always sees either the claim or the cached result --
            # never a gap where it would recompute.
            self.cache.store(job.digest, job.kind, result)
        with self._cv:
            job.result = result
            job.error = error
            job.status = "done" if error is None else "failed"
            job.version += 1
            if error is not None:
                self._counters.inc("failures")
            self._inflight.pop(job.digest, None)
            self._retire(job)
            self._journal_state(job.job_id, job.status, error=error)
            if self.tenancy is not None:
                nbytes = self.cache.entry_nbytes(job.digest) or 0
                waiters = self._tenant_waiters.pop(job.digest, {job.tenant})
                for tenant in waiters:
                    self.tenancy.on_finish(
                        tenant, job.digest, nbytes, failed=error is not None
                    )
            self._cv.notify_all()

    def _dispatch_runs(self, group: List[Job]) -> None:
        specs = [to_run_spec(job.spec) for job in group]
        with self._cv:
            self._counters.inc("dispatches")
        # One bad adversary must not fail its batch neighbours: the
        # settled dispatch retries spec-by-spec on failure so exactly the
        # offending jobs record errors while the rest complete.
        for job, outcome in zip(group, self._executor.run_many_settled(specs)):
            if isinstance(outcome, Exception):
                self._finish(job, None, f"{type(outcome).__name__}: {outcome}")
            else:
                with self._cv:
                    self._counters.inc("computations")
                self._finish(job, report_to_doc(outcome), None)

    def _dispatch_graph(self, job: Job) -> None:
        with self._cv:
            self._counters.inc("dispatches")
        graph, _ = TaskGraph.from_doc(job.spec)
        outputs = job.spec["outputs"]

        def on_update(digest: str, node: Dict[str, Any]) -> None:
            with self._cv:
                if job.nodes is not None:
                    job.nodes[digest] = node
                    job.version += 1
                    # Wake long-poll watchers on every node transition,
                    # not just terminal job states.
                    self._cv.notify_all()

        runner = TaskGraphRunner(
            executor=self._executor,
            cache=self.cache,
            inflight=self._task_inflight,
            on_update=on_update,
        )
        run = runner.run(graph, outputs)
        result = {
            "tasks": run.statuses,
            "outputs": {d: run.results.get(d) for d in outputs},
            "stats": run.stats,
        }
        missing = [d for d in outputs if d not in run.results]
        if missing:
            errors = {
                d[:16]: run.statuses[d].get("error") or run.statuses[d]["status"]
                for d in missing
            }
            # The partial result still carries per-node statuses; only
            # successful graphs are cached (``_finish`` skips on error).
            self._finish(job, result, f"graph outputs did not complete: {errors}")
            return
        with self._cv:
            self._counters.inc("computations")
        self._finish(job, result, None)

    def _dispatch_sweep(self, job: Job) -> None:
        with self._cv:
            self._counters.inc("dispatches")
        try:
            handles = sweep_handles(job.spec)
            result = self._executor.sweep(
                handles,
                job.spec["ns"],
                max_rounds=job.spec["max_rounds"],
                backend=job.spec["backend"],
                cache=self._cell_cache,
            )
        except Exception as exc:
            self._finish(job, None, f"{type(exc).__name__}: {exc}")
            return
        with self._cv:
            self._counters.inc("computations")
        self._finish(job, json.loads(result.to_json()), None)


__all__ = ["JOB_STATES", "Job", "JobScheduler"]
