"""Fleet worker: pull work over HTTP, execute locally, push results.

:class:`FleetWorker` is the client half of the distributed fleet (the
server half is :mod:`repro.service.fleet`).  It loops:

1. ``POST /v1/work:claim`` -- lease a batch of ready run payloads
   (bounded long-poll, so an idle worker costs one held connection,
   not a poll storm).
2. Execute each payload through the normal local
   :class:`~repro.engine.executor.Executor` stack --
   ``to_run_spec(payload)`` exactly as the server's local fallback
   would, which is what makes fleet results byte-identical to
   single-host execution.  Spans are parented under the claim's
   ``traceparent`` (:func:`repro.obs.trace.parented`), so a worker's
   execution shows up in the submitting request's trace tree.
3. ``POST /v1/work:complete`` -- land encoded result docs by digest.

A background heartbeat renews the lease at ``ttl/3`` while a batch
executes; a :class:`~repro.errors.LeaseExpiredError` from any call
means the server reclaimed the batch (this worker looked dead) and the
results must be dropped, not pushed -- the queue would drop them anyway
and count the attempt as late.  Connection errors back off and retry:
a worker is a long-lived daemon that must survive server restarts.

Run one with ``repro worker --url http://host:8642 [--token T]
[--procs N] [--batch B]`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.engine.executor import Executor, get_executor
from repro.errors import (
    CacheError,
    LeaseExpiredError,
    ServiceConnectionError,
    ServiceResponseError,
)
from repro.obs import trace as _trace
from repro.service.cache import report_to_doc
from repro.service.client import ServiceClient
from repro.service.specs import to_run_spec

__all__ = ["FleetWorker"]


class FleetWorker:
    """One pull-execute-push worker process.

    Parameters
    ----------
    client:
        A :class:`ServiceClient` pointed at the serving host (workers
        authenticate exactly like tenants: pass ``token=``).
    name:
        Worker identity shown in the server's ``/metrics`` registry;
        defaults to ``worker-<hostname>-<pid>``.
    procs:
        Local parallelism.  ``procs > 1`` shards batches across
        processes via the sharded executor when the work's engine hint
        allows it (sharded execution reports through the batch engine,
        so the hint must be batch-compatible to preserve
        byte-identity; a sequential hint always runs sequential).
    batch:
        Max items claimed per lease.
    engine:
        Override the per-item engine hint (debugging / benchmarking;
        overriding can break byte-identity with the server's fallback).
    poll:
        Seconds each claim long-polls server-side before returning
        empty.
    delay:
        Artificial seconds of sleep per claimed item *before*
        executing -- a chaos/testing knob that widens the window in
        which a worker can be killed mid-batch.
    max_batches:
        Stop after completing this many non-empty claims (``None`` =
        run until :meth:`stop`).
    """

    def __init__(
        self,
        client: ServiceClient,
        name: Optional[str] = None,
        procs: int = 1,
        batch: int = 4,
        engine: Optional[str] = None,
        poll: float = 5.0,
        delay: float = 0.0,
        max_batches: Optional[int] = None,
        backoff: float = 0.5,
        max_backoff: float = 10.0,
    ) -> None:
        if name is None:
            import os
            import socket as _socket

            name = f"worker-{_socket.gethostname()}-{os.getpid()}"
        self.client = client
        self.name = str(name)
        self.procs = max(1, int(procs))
        self.batch = max(1, int(batch))
        self.engine = engine
        self.poll = float(poll)
        self.delay = float(delay)
        self.max_batches = max_batches
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self.stats: Dict[str, int] = {
            "claims": 0,
            "empty_claims": 0,
            "items_ok": 0,
            "items_failed": 0,
            "leases_lost": 0,
            "connect_errors": 0,
        }
        self._stop = threading.Event()
        self._executors: Dict[str, Executor] = {}

    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Ask the claim loop to exit after the current batch."""
        self._stop.set()

    def _executor_for(self, hint: Optional[str]) -> Executor:
        """The local executor honouring the server's engine hint.

        The hint names the engine the server's local fallback would
        use, so honouring it keeps the ``executor`` field of result
        docs -- and therefore the bytes in the shared cache --
        identical to local execution.  ``procs > 1`` upgrades a
        batch-compatible hint to sharded execution (shard workers
        report through the batch engine, so the docs don't change).
        """
        name = self.engine or hint or "batch"
        key = f"{name}/{self.procs}"
        executor = self._executors.get(key)
        if executor is None:
            if self.procs > 1 and name in ("batch", "sharded"):
                executor = get_executor("sharded", workers=self.procs)
            else:
                executor = get_executor(name)
            self._executors[key] = executor
        return executor

    # ------------------------------------------------------------------

    def run(self) -> Dict[str, int]:
        """Claim/execute/complete until stopped; returns final stats."""
        wait = self.backoff
        batches = 0
        while not self._stop.is_set():
            if self.max_batches is not None and batches >= self.max_batches:
                break
            try:
                claim = self.client.claim_work(
                    self.name, limit=self.batch, wait=self.poll
                )
            except ServiceConnectionError:
                self.stats["connect_errors"] += 1
                if self._stop.wait(wait):
                    break
                wait = min(wait * 2, self.max_backoff)
                continue
            wait = self.backoff
            items = claim.get("items") or []
            if not items:
                self.stats["empty_claims"] += 1
                continue
            self.stats["claims"] += 1
            batches += 1
            self._execute_batch(claim["lease_id"], float(claim["ttl"]), items)
        return dict(self.stats)

    def _execute_batch(
        self, lease_id: str, ttl: float, items: List[Dict[str, Any]]
    ) -> None:
        lost = threading.Event()
        done = threading.Event()

        def beat() -> None:
            interval = max(0.05, ttl / 3.0)
            while not done.wait(interval):
                try:
                    self.client.heartbeat_work(self.name, lease_id)
                except LeaseExpiredError:
                    lost.set()
                    return
                except (ServiceConnectionError, ServiceResponseError):
                    # Transient; the next beat (or lease expiry) decides.
                    pass

        beater = threading.Thread(target=beat, daemon=True)
        beater.start()
        try:
            results = self._execute_items(items)
        finally:
            done.set()
            beater.join(timeout=1.0)
        if lost.is_set():
            # The server reclaimed the batch; pushing would be a counted
            # late completion, so drop the results here.
            self.stats["leases_lost"] += 1
            return
        self._push(lease_id, results)

    def _execute_items(self, items: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        if self.delay > 0:
            time.sleep(self.delay * len(items))
        # Group by (traceparent, engine) so each group executes under
        # the trace of the request that created it.
        groups: Dict[Any, List[Dict[str, Any]]] = {}
        for item in items:
            groups.setdefault((item.get("traceparent"), item.get("engine")), []).append(
                item
            )
        results: List[Dict[str, Any]] = []
        for (traceparent, engine), group in groups.items():
            with _trace.parented(traceparent):
                with _trace.span(
                    "worker", worker=self.name, items=len(group), engine=engine or ""
                ):
                    results.extend(self._execute_group(group, engine))
        return results

    def _execute_group(
        self, group: List[Dict[str, Any]], engine: Optional[str]
    ) -> List[Dict[str, Any]]:
        specs = []
        prepared: List[Dict[str, Any]] = []
        results: List[Dict[str, Any]] = []
        for item in group:
            if item.get("kind") != "run":
                results.append(
                    {
                        "digest": item["digest"],
                        "ok": False,
                        "error": f"unsupported work kind {item.get('kind')!r}",
                    }
                )
                continue
            try:
                specs.append(to_run_spec(item["payload"]))
            except Exception as exc:
                results.append(
                    {
                        "digest": item["digest"],
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
                continue
            prepared.append(item)
        if specs:
            settled = self._executor_for(engine).run_many_settled(specs)
            for item, outcome in zip(prepared, settled):
                if isinstance(outcome, Exception):
                    results.append(
                        {
                            "digest": item["digest"],
                            "ok": False,
                            "error": f"{type(outcome).__name__}: {outcome}",
                        }
                    )
                    continue
                try:
                    doc = report_to_doc(outcome)
                except CacheError as exc:
                    results.append(
                        {
                            "digest": item["digest"],
                            "ok": False,
                            "error": f"CacheError: {exc}",
                        }
                    )
                    continue
                results.append({"digest": item["digest"], "ok": True, "doc": doc})
        for result in results:
            if result["ok"]:
                self.stats["items_ok"] += 1
            else:
                self.stats["items_failed"] += 1
        return results

    def _push(self, lease_id: str, results: List[Dict[str, Any]]) -> None:
        for attempt in range(3):
            try:
                self.client.complete_work(self.name, lease_id, results)
                return
            except LeaseExpiredError:
                self.stats["leases_lost"] += 1
                return
            except ServiceConnectionError:
                self.stats["connect_errors"] += 1
                if attempt == 2 or self._stop.wait(self.backoff * (attempt + 1)):
                    # Give up: lease expiry will reclaim the batch; the
                    # recomputation is byte-identical, so nothing is lost
                    # but the cycles.
                    return

    def __repr__(self) -> str:
        return f"FleetWorker({self.name!r}, procs={self.procs}, batch={self.batch})"
