"""Pull-based distributed work queue + fleet executor.

This module is the server half of the distributed worker fleet
(:mod:`repro.service.worker` is the other half).  The design is the
classic lease-based pull queue used by production schedulers:

* :class:`WorkQueue` holds content-addressed *work items* -- canonical
  run specs keyed by :func:`repro.service.specs.spec_digest`.  Remote
  workers **claim** a batch of ready items (``POST /v1/work:claim``)
  and receive a lease id with a TTL; they renew via ``work:heartbeat``
  and land encoded :func:`~repro.service.cache.report_to_doc` results
  via ``work:complete``.  A lease whose deadline passes is *expired*:
  its outstanding items re-enter the ready set, so a SIGKILL'd worker
  costs only its in-flight batch.  A ``work:complete`` for an expired
  lease is dropped and counted (``late_completions``) -- landing is
  exactly-once per digest because results are keyed by content address
  and only live leases may land them.
* :class:`FleetExecutor` plugs the queue into the existing
  ``run_many`` / ``run_many_settled`` executor seam, so
  :class:`~repro.service.tasks.TaskGraphRunner` and the job scheduler
  dispatch to the fleet transparently.  Specs that carry a declarative
  :class:`~repro.service.specs.SpecHandle` are offered to the queue;
  anything a remote worker has not claimed within ``claim_deadline``
  seconds (immediately, when no worker has been seen recently) is
  withdrawn and executed by the local fallback executor -- a server
  with zero workers still completes every job at local speed.

Byte-identity is preserved by construction: both the remote worker and
the local fallback execute ``to_run_spec(payload)`` of the *same*
canonical spec, so the encoded result document is identical no matter
who computed it, how often the lease expired, or how many workers
raced.  Work items carry the submitting request's ``traceparent``
header, so worker spans attach to the same trace as the request that
created the work (see :mod:`repro.obs.trace`).
"""

from __future__ import annotations

import secrets
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.engine.executor import Executor, get_executor
from repro.errors import CacheError, LeaseExpiredError, ServiceError
from repro.obs import trace as _trace
from repro.service.cache import ResultCache, report_from_doc, report_to_doc
from repro.service.specs import spec_digest, to_run_spec

__all__ = ["WorkQueue", "FleetExecutor", "DEFAULT_LEASE_TTL"]

#: Default seconds a lease stays valid between heartbeats.
DEFAULT_LEASE_TTL = 15.0

#: A work item outcome: ``("ok", doc)`` or ``("error", message)``.
Outcome = tuple


class _WorkItem:
    """One offered digest and its lifecycle state.

    ``state`` is one of ``"ready"`` (claimable), ``"leased"`` (a worker
    holds it), ``"local"`` (withdrawn for fallback execution) or
    ``"resolved"`` (``outcome`` is set).  ``refs`` counts concurrent
    :meth:`WorkQueue.offer` callers waiting on the digest so the item
    is garbage-collected when the last waiter forgets it.
    """

    __slots__ = (
        "digest",
        "payload",
        "traceparent",
        "engine",
        "state",
        "outcome",
        "refs",
        "requeues",
        "stranded",
        "ready_since",
    )

    def __init__(
        self,
        digest: str,
        payload: Dict[str, Any],
        traceparent: Optional[str],
        engine: str,
        now: float,
    ) -> None:
        self.digest = digest
        self.payload = payload
        self.traceparent = traceparent
        self.engine = engine
        self.state = "ready"
        self.outcome: Optional[Outcome] = None
        self.refs = 1
        self.requeues = 0
        self.stranded = False
        self.ready_since = now


class _Lease:
    """A worker's claim over a batch of digests, valid until ``deadline``."""

    __slots__ = ("lease_id", "worker", "digests", "deadline", "ttl")

    def __init__(
        self, lease_id: str, worker: str, digests: List[str], deadline: float, ttl: float
    ) -> None:
        self.lease_id = lease_id
        self.worker = worker
        self.digests = list(digests)
        self.deadline = deadline
        self.ttl = ttl


def _worker_stats() -> Dict[str, Any]:
    return {
        "claims": 0,
        "items": 0,
        "completed": 0,
        "failed": 0,
        "lease_expiries": 0,
        "last_seen": 0.0,
    }


class WorkQueue:
    """Leased pull queue mapping spec digests to ready run payloads.

    All methods are thread-safe; one condition variable guards the
    whole structure (item dwell times are seconds, not microseconds,
    so a single lock is nowhere near contention).  ``clock`` is
    injectable (monotonic seconds) so lease expiry is testable with a
    virtual clock.

    Parameters
    ----------
    cache:
        Shared :class:`ResultCache`; validated remote results are
        stored under their digest as ``kind="run"`` entries, the same
        address ``/v1/runs`` uses, so fleet results are warm for every
        later submitter.
    lease_ttl:
        Seconds a lease survives without a heartbeat.
    max_requeues:
        After this many expiry-driven requeues an item is marked
        *stranded* and withdrawn to local fallback at the next
        opportunity regardless of the claim deadline (a poison batch
        must not ping-pong between crashing workers forever).
    journal:
        Optional :class:`repro.service.journal.JobJournal`; lease
        grant / complete / expire transitions are recorded so restart
        recovery can account for remote work that was in flight.
    """

    def __init__(
        self,
        cache: ResultCache,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_requeues: int = 3,
        journal: Optional[Any] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl!r}")
        self.cache = cache
        self.lease_ttl = float(lease_ttl)
        self.max_requeues = int(max_requeues)
        self._journal = journal
        self._clock = clock
        self._cv = threading.Condition()
        self._items: Dict[str, _WorkItem] = {}
        self._ready: "OrderedDict[str, None]" = OrderedDict()
        self._leases: Dict[str, _Lease] = {}
        self._workers: Dict[str, Dict[str, Any]] = {}
        self._lease_count = 0
        self.counters: Dict[str, int] = {
            "offered": 0,
            "claims": 0,
            "claimed_items": 0,
            "completions_ok": 0,
            "completions_err": 0,
            "lease_expiries": 0,
            "reclaimed": 0,
            "late_completions": 0,
            "invalid_results": 0,
            "local_fallbacks": 0,
            "stranded": 0,
            "recovered_lost_leases": 0,
        }

    # -- journal hooks -------------------------------------------------

    def _journal_lease(
        self, lease_id: str, worker: str, status: str, digests: Optional[List[str]] = None
    ) -> None:
        if self._journal is not None:
            self._journal.record_lease(lease_id, worker, status, digests=digests)

    def recover(self, journal: Any) -> int:
        """Account for leases that were live when the server died.

        Called from scheduler recovery: every journaled lease that was
        granted but never completed/expired represents remote work
        whose results can no longer land (the queue restarts empty, so
        any late ``work:complete`` is dropped).  Returns the number of
        such lost leases and folds them into the metrics so an
        operator can see what a restart cost.
        """
        lost = 0
        for rec in journal.replay_leases().values():
            if rec.get("status") != "granted":
                continue
            lost += 1
            with self._cv:
                stats = self._workers.setdefault(str(rec.get("worker")), _worker_stats())
                stats["lease_expiries"] += 1
        with self._cv:
            self.counters["recovered_lost_leases"] += lost
            self.counters["lease_expiries"] += lost
        return lost

    # -- producer side (FleetExecutor) ---------------------------------

    def offer(
        self, entries: Sequence[Dict[str, Any]], engine: str = "batch"
    ) -> None:
        """Make ``entries`` claimable (``{"digest","payload","traceparent"}``).

        Digests already present gain a waiter reference instead of a
        duplicate item -- concurrent graphs offering the same cell
        share one execution, same as the scheduler's in-flight dedup.
        """
        with self._cv:
            now = self._clock()
            for entry in entries:
                digest = entry["digest"]
                item = self._items.get(digest)
                if item is not None:
                    item.refs += 1
                    continue
                item = _WorkItem(
                    digest, entry["payload"], entry.get("traceparent"), engine, now
                )
                self._items[digest] = item
                self._ready[digest] = None
                self.counters["offered"] += 1
            self._cv.notify_all()

    def collect(self, digests: Iterable[str], timeout: float = 0.0) -> Dict[str, Outcome]:
        """Resolved outcomes among ``digests``; blocks up to ``timeout``.

        Returns as soon as at least one of the digests is resolved (or
        immediately with everything already resolved); an empty dict
        means the timeout passed with nothing new.
        """
        wanted = list(digests)
        deadline = self._clock() + max(0.0, timeout)
        with self._cv:
            while True:
                self._sweep(self._clock())
                found = {}
                for digest in wanted:
                    item = self._items.get(digest)
                    if item is not None and item.state == "resolved":
                        found[digest] = item.outcome
                remaining = deadline - self._clock()
                if found or remaining <= 0:
                    return found
                self._cv.wait(min(remaining, self.lease_ttl / 4.0, 0.25))

    def withdraw_for_local(
        self, digests: Iterable[str], max_age: float
    ) -> List[str]:
        """Atomically move stale ready items to local execution.

        An item qualifies when it is still ``"ready"`` (never claimed,
        or reclaimed after expiry) and either stranded, or has sat
        ready for at least ``max_age`` seconds (``max_age <= 0``
        withdraws every ready item -- the zero-worker fast path).  The
        caller owns the returned digests and must
        :meth:`resolve_local` each of them.
        """
        out: List[str] = []
        with self._cv:
            now = self._clock()
            self._sweep(now)
            for digest in digests:
                item = self._items.get(digest)
                if item is None or item.state != "ready":
                    continue
                if item.stranded or max_age <= 0 or now - item.ready_since >= max_age:
                    item.state = "local"
                    self._ready.pop(digest, None)
                    out.append(digest)
            if out:
                self.counters["local_fallbacks"] += len(out)
        return out

    def resolve_local(self, digest: str, outcome: Outcome) -> None:
        """Land a locally-computed outcome for a withdrawn item."""
        with self._cv:
            item = self._items.get(digest)
            if item is not None and item.state != "resolved":
                item.outcome = outcome
                item.state = "resolved"
            self._cv.notify_all()

    def forget(self, digests: Iterable[str]) -> None:
        """Drop one waiter reference; unreferenced items are GC'd.

        Items still leased simply disappear from the index -- a later
        ``work:complete`` for them lands nothing but is not an error
        (the lease check still governs accounting).
        """
        with self._cv:
            for digest in digests:
                item = self._items.get(digest)
                if item is None:
                    continue
                item.refs -= 1
                if item.refs <= 0:
                    self._items.pop(digest, None)
                    self._ready.pop(digest, None)

    def has_active_workers(self, window: float = 30.0) -> bool:
        """True when any worker claimed/heartbeat within ``window`` seconds."""
        with self._cv:
            now = self._clock()
            return any(
                now - stats["last_seen"] <= window for stats in self._workers.values()
            )

    # -- worker side (HTTP handlers) -----------------------------------

    def claim(self, worker: str, limit: int = 1, wait: float = 0.0) -> Dict[str, Any]:
        """Claim up to ``limit`` ready items under a fresh lease.

        Blocks up to ``wait`` seconds for work to appear (bounded
        long-poll).  An empty claim returns ``{"lease_id": None,
        "ttl": ttl, "items": []}`` -- no lease is minted for nothing.
        """
        worker = str(worker)
        limit = max(1, int(limit))
        deadline = self._clock() + max(0.0, min(float(wait), 60.0))
        with self._cv:
            stats = self._workers.setdefault(worker, _worker_stats())
            while True:
                now = self._clock()
                self._sweep(now)
                stats["last_seen"] = now
                if self._ready:
                    break
                remaining = deadline - now
                if remaining <= 0:
                    return {"lease_id": None, "ttl": self.lease_ttl, "items": []}
                self._cv.wait(min(remaining, 0.25))
            granted: List[str] = []
            items: List[Dict[str, Any]] = []
            while self._ready and len(granted) < limit:
                digest, _ = self._ready.popitem(last=False)
                item = self._items[digest]
                item.state = "leased"
                granted.append(digest)
                items.append(
                    {
                        "digest": digest,
                        "kind": "run",
                        "payload": item.payload,
                        "traceparent": item.traceparent,
                        "engine": item.engine,
                    }
                )
            self._lease_count += 1
            lease_id = f"lease-{self._lease_count:06d}-{secrets.token_hex(4)}"
            self._leases[lease_id] = _Lease(
                lease_id, worker, granted, self._clock() + self.lease_ttl, self.lease_ttl
            )
            stats["claims"] += 1
            stats["items"] += len(granted)
            self.counters["claims"] += 1
            self.counters["claimed_items"] += len(granted)
            self._journal_lease(lease_id, worker, "granted", digests=granted)
            return {"lease_id": lease_id, "ttl": self.lease_ttl, "items": items}

    def heartbeat(self, worker: str, lease_id: str) -> Dict[str, Any]:
        """Renew a lease; raises :class:`LeaseExpiredError` if reclaimed."""
        with self._cv:
            now = self._clock()
            self._sweep(now)
            stats = self._workers.setdefault(str(worker), _worker_stats())
            stats["last_seen"] = now
            lease = self._leases.get(str(lease_id))
            if lease is None or lease.worker != str(worker):
                raise LeaseExpiredError(
                    f"lease {lease_id!r} is unknown or expired; abandon the batch"
                )
            lease.deadline = now + lease.ttl
            return {"lease_id": lease.lease_id, "ttl": lease.ttl}

    def complete(
        self, worker: str, lease_id: str, results: Sequence[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Land a batch of worker results under a live lease.

        Each result is ``{"digest", "ok", "doc"|"error"}``.  A dead
        lease drops the whole batch (counted as ``late_completions``)
        -- the items were reclaimed and someone else owns them.  A
        live lease lands ``ok`` docs into the shared cache after
        validating they decode (:func:`report_from_doc`); a doc that
        does not decode is requeued rather than trusted.  ``ok=False``
        results settle the item to its error outcome, matching the
        one-attempt semantics of local execution.
        """
        worker = str(worker)
        with self._cv:
            now = self._clock()
            self._sweep(now)
            stats = self._workers.setdefault(worker, _worker_stats())
            stats["last_seen"] = now
            lease = self._leases.pop(str(lease_id), None)
            if lease is None or lease.worker != worker:
                self.counters["late_completions"] += len(results)
                return {"accepted": 0, "dropped": len(results), "late": True}
            leased = set(lease.digests)
            accepted = 0
            dropped = 0
            for result in results:
                digest = str(result.get("digest"))
                if digest not in leased:
                    dropped += 1
                    self.counters["invalid_results"] += 1
                    continue
                leased.discard(digest)
                item = self._items.get(digest)
                if result.get("ok"):
                    doc = result.get("doc")
                    try:
                        report_from_doc(dict(doc))
                    except (CacheError, TypeError):
                        dropped += 1
                        self.counters["invalid_results"] += 1
                        self._requeue(item, now)
                        continue
                    self.cache.store(digest, "run", doc)
                    outcome: Outcome = ("ok", doc)
                    accepted += 1
                    stats["completed"] += 1
                    self.counters["completions_ok"] += 1
                else:
                    outcome = ("error", str(result.get("error") or "worker error"))
                    accepted += 1
                    stats["failed"] += 1
                    self.counters["completions_err"] += 1
                if item is not None and item.state != "resolved":
                    item.outcome = outcome
                    item.state = "resolved"
            # Items the worker claimed but did not report go back to ready.
            for digest in leased:
                self._requeue(self._items.get(digest), now)
            self._journal_lease(lease.lease_id, worker, "completed")
            self._cv.notify_all()
            return {"accepted": accepted, "dropped": dropped, "late": False}

    # -- internals -----------------------------------------------------

    def _requeue(self, item: Optional[_WorkItem], now: float) -> None:
        """Return a leased item to the ready set (caller holds the lock)."""
        if item is None or item.state != "leased":
            return
        item.requeues += 1
        if item.requeues > self.max_requeues and not item.stranded:
            item.stranded = True
            self.counters["stranded"] += 1
        item.state = "ready"
        item.ready_since = now
        self._ready[item.digest] = None
        self.counters["reclaimed"] += 1

    def _sweep(self, now: float) -> None:
        """Expire overdue leases and reclaim their items (lock held)."""
        expired = [l for l in self._leases.values() if l.deadline < now]
        for lease in expired:
            del self._leases[lease.lease_id]
            stats = self._workers.setdefault(lease.worker, _worker_stats())
            stats["lease_expiries"] += 1
            self.counters["lease_expiries"] += 1
            for digest in lease.digests:
                item = self._items.get(digest)
                if item is not None and item.state == "leased":
                    self._requeue(item, now)
            self._journal_lease(lease.lease_id, lease.worker, "expired")
        if expired:
            self._cv.notify_all()

    def metrics(self) -> Dict[str, Any]:
        """Counters, per-worker registry and queue gauges for ``/metrics``."""
        with self._cv:
            now = self._clock()
            self._sweep(now)
            workers = {
                name: {
                    "claims": stats["claims"],
                    "items": stats["items"],
                    "completed": stats["completed"],
                    "failed": stats["failed"],
                    "lease_expiries": stats["lease_expiries"],
                    "last_seen_age_s": round(max(0.0, now - stats["last_seen"]), 3),
                }
                for name, stats in sorted(self._workers.items())
            }
            return {
                "counters": dict(self.counters),
                "workers": workers,
                "ready": len(self._ready),
                "leased": sum(
                    1 for item in self._items.values() if item.state == "leased"
                ),
                "leases": len(self._leases),
                "items": len(self._items),
                "lease_ttl_s": self.lease_ttl,
            }


class FleetExecutor(Executor):
    """Executor that farms addressable specs out to the worker fleet.

    Implements the :class:`repro.engine.executor.Executor` protocol
    (``run`` / ``run_many`` / ``run_many_settled`` / ``sweep``), so the
    scheduler and :class:`TaskGraphRunner` need no fleet-specific code
    paths.  Specs whose adversary is a declarative
    :class:`~repro.service.specs.SpecHandle` (uninstrumented, no kept
    trees -- the cacheable shape) are offered to the :class:`WorkQueue`
    under their canonical ``spec_digest``; everything else runs on the
    local ``fallback`` executor directly.

    Offered work that no worker claims within ``claim_deadline``
    seconds is withdrawn and executed locally -- and when no worker has
    been seen within ``worker_window`` seconds the deadline collapses
    to zero, so a fleetless server never waits at all.  Both sides
    execute ``to_run_spec`` of the same canonical payload, which is
    what makes fleet execution byte-identical to local execution.
    """

    name = "fleet"

    def __init__(
        self,
        queue: WorkQueue,
        fallback: Union[str, Any] = "batch",
        claim_deadline: float = 2.0,
        poll: float = 0.05,
        worker_window: float = 30.0,
    ) -> None:
        self.queue = queue
        self.fallback = (
            get_executor(fallback) if isinstance(fallback, str) else fallback
        )
        self.claim_deadline = float(claim_deadline)
        self.poll = float(poll)
        self.worker_window = float(worker_window)
        # Sharded fallback shards through BatchExecutor workers, so its
        # reports carry executor="batch"; the hint keeps remote docs
        # byte-identical to what the fallback would produce.
        self.engine_hint = {"sharded": "batch"}.get(
            self.fallback.name, self.fallback.name
        )

    # The Executor protocol (``run`` and ``sweep`` are inherited, so
    # sweep cells distribute across the fleet too) ----------------------

    def run_many(self, specs: Sequence[Any]) -> List[Any]:
        settled = self.run_many_settled(specs)
        for result in settled:
            if isinstance(result, Exception):
                raise result
        return settled

    def run_many_settled(self, specs: Sequence[Any]) -> List[Any]:
        with _trace.span("executor", executor=self.name, specs=len(specs)):
            return self._dispatch(list(specs))

    def __repr__(self) -> str:
        return f"FleetExecutor(fallback={self.fallback!r})"

    # Internals ----------------------------------------------------------

    @staticmethod
    def _payload_for(spec: Any) -> Optional[Dict[str, Any]]:
        """The canonical run spec for ``spec``, or None if not addressable."""
        if getattr(spec, "instrumentation", "none") != "none" or getattr(
            spec, "keep_trees", False
        ):
            return None
        handle = spec.adversary
        if not hasattr(handle, "cell_spec"):
            return None
        try:
            return handle.cell_spec(spec.n, spec.max_rounds, spec.backend)
        except Exception:
            return None

    def _dispatch(self, specs: List[Any]) -> List[Any]:
        results: List[Any] = [None] * len(specs)
        remote_idx: Dict[str, List[int]] = {}
        payloads: Dict[str, Dict[str, Any]] = {}
        local_idx: List[int] = []
        for i, spec in enumerate(specs):
            payload = self._payload_for(spec)
            if payload is None:
                local_idx.append(i)
            else:
                digest = spec_digest(payload)
                remote_idx.setdefault(digest, []).append(i)
                payloads.setdefault(digest, payload)
        if local_idx:
            settled = self.fallback.run_many_settled([specs[i] for i in local_idx])
            for i, result in zip(local_idx, settled):
                results[i] = result
        if not remote_idx:
            return results
        ctx = _trace.current_context()
        header = ctx.to_header() if ctx is not None else None
        self.queue.offer(
            [
                {"digest": digest, "payload": payloads[digest], "traceparent": header}
                for digest in remote_idx
            ],
            engine=self.engine_hint,
        )
        pending = set(remote_idx)
        try:
            while pending:
                for digest, outcome in self.queue.collect(
                    pending, timeout=self.poll
                ).items():
                    self._land(digest, outcome, remote_idx, specs, results)
                    pending.discard(digest)
                if not pending:
                    break
                max_age = (
                    self.claim_deadline
                    if self.queue.has_active_workers(self.worker_window)
                    else 0.0
                )
                withdrawn = self.queue.withdraw_for_local(sorted(pending), max_age)
                if not withdrawn:
                    continue
                # Execute exactly what a worker would have: the RunSpec
                # rebuilt from the canonical payload.
                local_specs = [to_run_spec(payloads[d]) for d in withdrawn]
                settled = self.fallback.run_many_settled(local_specs)
                for digest, result in zip(withdrawn, settled):
                    if isinstance(result, Exception):
                        outcome = ("error", f"{type(result).__name__}: {result}")
                    else:
                        try:
                            outcome = ("ok", report_to_doc(result))
                        except CacheError as exc:
                            outcome = ("error", f"CacheError: {exc}")
                    self.queue.resolve_local(digest, outcome)
                    self._land(digest, outcome, remote_idx, specs, results)
                    pending.discard(digest)
        finally:
            self.queue.forget(list(remote_idx))
        return results

    @staticmethod
    def _land(
        digest: str,
        outcome: Outcome,
        remote_idx: Dict[str, List[int]],
        specs: List[Any],
        results: List[Any],
    ) -> None:
        for i in remote_idx[digest]:
            if outcome[0] == "ok":
                results[i] = report_from_doc(dict(outcome[1]), backend=specs[i].backend)
            else:
                results[i] = ServiceError(str(outcome[1]))
