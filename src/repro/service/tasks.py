"""Task API v2: dependency-aware, content-addressed task graphs.

Every unit of work the service can perform -- a single broadcast run, a
sweep cell, a sweep aggregation, a paper experiment E1..E8 -- is a typed,
versioned :class:`TaskSpec`::

    {"kind": "run", "payload": {"adversary": "cyclic", "n": 12}}
    {"kind": "experiment", "payload": {"experiment": "E2"},
     "inputs": [<digest>, <digest>, ...]}

A task declares its *inputs* as the content digests of upstream tasks, so
a :class:`TaskGraph` is a DAG by construction (a task can only reference
tasks added before it).  The digest of a task covers its kind, canonical
payload, and input digests -- two tasks that describe the same
computation over the same upstream results share an address, whatever
graph they appear in.  ``run``-kind tasks with no inputs deliberately
share their digest with :func:`repro.service.specs.spec_digest`, so task
results, ``POST /v1/runs`` submissions, and scheduler jobs all hit the
same cache entries.

Three registries make the module extensible without touching the engine:

* **task kinds** (:func:`register_task_kind`) -- each kind names a pure
  compute function ``(payload, input_docs) -> result_doc`` plus the codec
  its results are stored under.  The ``"run"`` kind is special: the
  runner batches every ready run task into one
  :meth:`~repro.engine.executor.Executor.run_many_settled` dispatch, so
  run grids ride the vectorized/sharded executors;
* **codecs** (:func:`register_codec`) -- named ``encode``/``decode``
  pairs mapping rich result objects (run reports, sweep results,
  experiment tables) to the JSON documents the cache stores;
* **the adversary spec registry** (:mod:`repro.service.specs`) -- run
  payloads are canonical run specs, validated there.

Execution (:class:`TaskGraphRunner`) proceeds in waves of ready tasks:
cache-probe first (a warm graph computes nothing), then one batched
executor dispatch for the runnable ``run`` tasks, then the pure compute
kinds.  A failing task fails alone; its transitive dependents are marked
``poisoned`` and never execute, while independent branches complete.  A
shared :class:`TaskInflight` registry dedups computation per digest
across concurrently-executing graphs.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.engine.executor import Executor, get_executor
from repro.errors import TaskError
from repro.obs import trace as _trace
from repro.service.cache import ResultCache, report_from_doc, report_to_doc
from repro.service.specs import (
    canonical_json,
    canonical_run_spec,
    canonical_sweep_spec,
    spec_digest,
    to_run_spec,
)

#: Version prefix baked into every non-run task digest; bump when task
#: canonicalization or any builtin kind's semantics change.
TASK_VERSION = 1

#: Node states a task moves through inside a graph run.  ``poisoned``
#: marks tasks skipped because an upstream dependency failed;
#: ``pruned`` marks tasks skipped because they lie outside the
#: transitive input cone of the requested outputs (never started, not
#: an error).
TASK_STATES = ("pending", "running", "done", "failed", "poisoned", "pruned")


# ----------------------------------------------------------------------
# Codec registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Codec:
    """A named ``result object <-> JSON document`` pair."""

    name: str
    encode: Callable[[Any], Dict[str, Any]]
    decode: Callable[[Dict[str, Any]], Any]


_CODECS: Dict[str, Codec] = {}


def register_codec(
    name: str,
    encode: Callable[[Any], Dict[str, Any]],
    decode: Callable[[Dict[str, Any]], Any],
) -> Codec:
    """Register (or replace) a result codec under a stable name."""
    if not name or not isinstance(name, str):
        raise TaskError(f"codec name must be a non-empty string, got {name!r}")
    codec = Codec(name=name, encode=encode, decode=decode)
    _CODECS[name] = codec
    return codec


def get_codec(name: str) -> Codec:
    """Look up a registered codec; :class:`TaskError` on unknown names."""
    try:
        return _CODECS[name]
    except KeyError:
        raise TaskError(
            f"unknown codec {name!r}; registered: {sorted(_CODECS)}"
        ) from None


# ----------------------------------------------------------------------
# Task-kind registry
# ----------------------------------------------------------------------

#: ``canonicalize(payload, n_inputs) -> canonical payload`` -- validates a
#: raw payload (inputs arity included) and returns its canonical form.
Canonicalizer = Callable[[Mapping[str, Any], int], Dict[str, Any]]

#: ``compute(payload, input_docs) -> result document``.  Must be pure:
#: deterministic in (payload, inputs), no observable side effects -- that
#: is what makes task results content-addressable.
ComputeFn = Callable[[Dict[str, Any], List[Dict[str, Any]]], Dict[str, Any]]


@dataclass(frozen=True)
class TaskKindEntry:
    """One registered task kind: canonicalizer + compute + result codec."""

    name: str
    canonicalize: Canonicalizer
    compute: Optional[ComputeFn]  # None => executor-dispatched ("run")
    codec: str = "json"
    description: str = ""


_KINDS: Dict[str, TaskKindEntry] = {}


def register_task_kind(
    name: str,
    compute: Optional[ComputeFn],
    canonicalize: Optional[Canonicalizer] = None,
    codec: str = "json",
    description: str = "",
) -> TaskKindEntry:
    """Register a task kind.

    ``compute`` is a pure ``(payload, input_docs) -> result_doc``
    function (``None`` only for the built-in executor-dispatched
    ``"run"`` kind).  ``canonicalize`` validates and normalizes raw
    payloads (default: JSON-normalize with sorted keys); ``codec`` names
    a registered result codec.  Re-registering a name replaces the entry
    (tests inject failing kinds this way).
    """
    if not name or not isinstance(name, str):
        raise TaskError(f"task kind must be a non-empty string, got {name!r}")
    entry = TaskKindEntry(
        name=name,
        canonicalize=canonicalize if canonicalize is not None else _canonical_payload,
        compute=compute,
        codec=codec,
        description=description,
    )
    _KINDS[name] = entry
    return entry


def unregister_task_kind(name: str) -> None:
    """Remove a registered kind (tests clean up injected entries)."""
    _KINDS.pop(name, None)


def get_task_kind(name: str) -> TaskKindEntry:
    """Look up a registered kind; :class:`TaskError` on unknown names."""
    try:
        return _KINDS[name]
    except KeyError:
        raise TaskError(
            f"unknown task kind {name!r}; registered: {sorted(_KINDS)}"
        ) from None


def task_kind_names() -> Tuple[str, ...]:
    """All registered task kinds, sorted."""
    return tuple(sorted(_KINDS))


def describe_task_kinds() -> Dict[str, Dict[str, Any]]:
    """A JSON-ready description of every kind (served by ``/v1/specs``)."""
    return {
        name: {"codec": entry.codec, "description": entry.description}
        for name, entry in sorted(_KINDS.items())
    }


# ----------------------------------------------------------------------
# TaskSpec + digests
# ----------------------------------------------------------------------


def _canonical_payload(raw: Mapping[str, Any], n_inputs: int = 0) -> Dict[str, Any]:
    """JSON-normalize a payload: sorted keys, tuples -> lists, JSON types only."""
    if not isinstance(raw, Mapping):
        raise TaskError(f"task payload must be a JSON object, got {type(raw).__name__}")
    try:
        return json.loads(canonical_json(dict(raw)))
    except (TypeError, ValueError) as exc:
        raise TaskError(f"task payload is not JSON-representable: {exc}") from exc


@dataclass(frozen=True)
class TaskSpec:
    """One typed, content-addressed unit of work.

    ``payload`` is the kind's canonical document; ``inputs`` are the
    digests of upstream tasks whose result documents are fed to the
    kind's compute function, in order.  Build through
    :func:`canonical_task` / :meth:`TaskGraph.add` so the payload is
    always canonical and the digest well-defined.
    """

    kind: str
    payload: Mapping[str, Any]
    inputs: Tuple[str, ...] = ()

    @property
    def digest(self) -> str:
        return task_digest(self)

    def to_doc(self) -> Dict[str, Any]:
        """The JSON document form (inputs as digest strings)."""
        return {
            "kind": self.kind,
            "payload": dict(self.payload),
            "inputs": list(self.inputs),
        }


def canonical_task(raw: Mapping[str, Any]) -> TaskSpec:
    """Validate a raw task document and return its canonical TaskSpec.

    ``inputs`` entries must already be digest strings here; index
    references are resolved by :meth:`TaskGraph.from_doc`.
    """
    if not isinstance(raw, Mapping):
        raise TaskError(f"task must be a JSON object, got {type(raw).__name__}")
    unknown = set(raw) - {"kind", "payload", "inputs"}
    if unknown:
        raise TaskError(f"unknown task keys {sorted(unknown)}")
    kind = raw.get("kind")
    if not isinstance(kind, str):
        raise TaskError(f"task 'kind' must be a string, got {kind!r}")
    entry = get_task_kind(kind)
    inputs_raw = raw.get("inputs", ())
    if not isinstance(inputs_raw, (list, tuple)):
        raise TaskError(f"task 'inputs' must be a list, got {inputs_raw!r}")
    inputs: List[str] = []
    for ref in inputs_raw:
        if not isinstance(ref, str) or not ref:
            raise TaskError(
                f"task input references must be digest strings, got {ref!r}"
            )
        inputs.append(ref)
    payload = entry.canonicalize(raw.get("payload", {}), len(inputs))
    return TaskSpec(kind=entry.name, payload=payload, inputs=tuple(inputs))


def task_digest(task: TaskSpec) -> str:
    """The content address of a task.

    A no-input ``run`` task *is* a run spec, so it reuses
    :func:`~repro.service.specs.spec_digest` -- task results, plain run
    submissions, and scheduler dedup all share one address space.  Every
    other shape hashes the canonical ``(kind, payload, inputs)`` document
    under the :data:`TASK_VERSION` prefix.
    """
    if task.kind == "run" and not task.inputs:
        return spec_digest(task.payload)
    doc = {
        "kind": task.kind,
        "payload": dict(task.payload),
        "inputs": list(task.inputs),
    }
    preimage = f"repro-task-v{TASK_VERSION}:{canonical_json(doc)}"
    return hashlib.sha256(preimage.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# TaskGraph
# ----------------------------------------------------------------------


class TaskGraph:
    """An insertion-ordered DAG of tasks, keyed by content digest.

    :meth:`add` requires every input to reference a task already in the
    graph, so insertion order is a topological order and cycles cannot be
    constructed.  Adding an identical task twice is a no-op returning the
    same digest (grids naturally dedup shared cells).
    """

    def __init__(self) -> None:
        self._tasks: Dict[str, TaskSpec] = {}
        self._order: List[str] = []

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, digest: str) -> bool:
        return digest in self._tasks

    def __getitem__(self, digest: str) -> TaskSpec:
        return self._tasks[digest]

    @property
    def order(self) -> Tuple[str, ...]:
        """Digests in insertion (= topological) order."""
        return tuple(self._order)

    def add(self, raw: Union[TaskSpec, Mapping[str, Any]]) -> str:
        """Canonicalize and insert one task; returns its digest.

        Hand-built :class:`TaskSpec` instances are re-canonicalized too:
        digests only ever exist for validated canonical documents.
        """
        task = canonical_task(raw.to_doc() if isinstance(raw, TaskSpec) else raw)
        missing = [ref for ref in task.inputs if ref not in self._tasks]
        if missing:
            raise TaskError(
                f"task inputs {missing} are not in the graph; add upstream "
                "tasks first (graphs are DAGs by construction)"
            )
        digest = task.digest
        if digest not in self._tasks:
            self._tasks[digest] = task
            self._order.append(digest)
        return digest

    def add_run(self, run_spec: Mapping[str, Any]) -> str:
        """Convenience: add one ``run``-kind task from a raw run spec."""
        return self.add({"kind": "run", "payload": dict(run_spec)})

    def sinks(self) -> Tuple[str, ...]:
        """Digests no other task consumes (the default graph outputs)."""
        consumed = {ref for task in self._tasks.values() for ref in task.inputs}
        return tuple(d for d in self._order if d not in consumed)

    def dependents(self) -> Dict[str, List[str]]:
        """Digest -> direct downstream digests (for failure poisoning)."""
        out: Dict[str, List[str]] = {d: [] for d in self._order}
        for digest, task in self._tasks.items():
            for ref in task.inputs:
                out[ref].append(digest)
        return out

    def to_doc(self) -> Dict[str, Any]:
        """The canonical JSON document (tasks in topological order)."""
        return {
            "version": TASK_VERSION,
            "tasks": [self._tasks[d].to_doc() for d in self._order],
        }

    @classmethod
    def from_doc(
        cls, raw: Mapping[str, Any]
    ) -> Tuple["TaskGraph", Tuple[str, ...]]:
        """Parse a submitted graph document; returns ``(graph, outputs)``.

        ``tasks`` entries may reference inputs either by digest or by the
        integer index of an earlier task in the list (clients then never
        need to compute digests themselves); ``outputs`` (optional, same
        reference forms) defaults to the graph's sinks.
        """
        if not isinstance(raw, Mapping):
            raise TaskError(f"graph must be a JSON object, got {type(raw).__name__}")
        unknown = set(raw) - {"version", "tasks", "outputs"}
        if unknown:
            raise TaskError(f"unknown graph keys {sorted(unknown)}")
        version = raw.get("version", TASK_VERSION)
        if version != TASK_VERSION:
            raise TaskError(
                f"task graph version {version!r} is not supported "
                f"(expected {TASK_VERSION})"
            )
        tasks = raw.get("tasks")
        if not isinstance(tasks, (list, tuple)) or not tasks:
            raise TaskError("'tasks' must be a non-empty list")
        graph = cls()
        by_index: List[str] = []

        def resolve(ref: Any, where: str) -> str:
            if isinstance(ref, bool):
                raise TaskError(f"{where}: reference must be an index or digest")
            if isinstance(ref, int):
                if not 0 <= ref < len(by_index):
                    raise TaskError(
                        f"{where}: index {ref} does not reference an earlier task"
                    )
                return by_index[ref]
            if isinstance(ref, str) and ref:
                return ref
            raise TaskError(f"{where}: reference must be an index or digest, got {ref!r}")

        for i, entry in enumerate(tasks):
            if not isinstance(entry, Mapping):
                raise TaskError(f"task {i} must be a JSON object")
            entry = dict(entry)
            entry["inputs"] = [
                resolve(ref, f"task {i} input") for ref in entry.get("inputs", ())
            ]
            by_index.append(graph.add(entry))
        outputs_raw = raw.get("outputs")
        if outputs_raw is None:
            outputs = graph.sinks()
        else:
            if not isinstance(outputs_raw, (list, tuple)) or not outputs_raw:
                raise TaskError("'outputs' must be a non-empty list when given")
            outputs = tuple(resolve(ref, "output") for ref in outputs_raw)
            missing = [d for d in outputs if d not in graph]
            if missing:
                raise TaskError(f"outputs {missing} are not tasks in the graph")
        return graph, outputs


def graph_digest(graph: TaskGraph, outputs: Sequence[str]) -> str:
    """The content address of a whole graph submission (outputs included)."""
    doc = graph.to_doc()
    doc["outputs"] = list(outputs)
    preimage = f"repro-graph-v{TASK_VERSION}:{canonical_json(doc)}"
    return hashlib.sha256(preimage.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Cross-graph in-flight dedup
# ----------------------------------------------------------------------


def initial_statuses(graph: TaskGraph) -> Dict[str, Dict[str, Any]]:
    """The pre-execution per-node status map (one shape for every surface).

    Both :meth:`TaskGraphRunner.run` and the scheduler's pre-dispatch
    snapshot (``GET /v1/tasks/<id>`` before the worker picks the job up)
    build their node documents here, so the wire shape stays
    single-sourced.
    """
    return {
        d: {
            "kind": graph[d].kind,
            "status": "pending",
            "cached": False,
            "error": None,
        }
        for d in graph.order
    }


class TaskInflight:
    """Per-digest claims so concurrent graphs compute each task once.

    ``claim`` returns ``None`` when the caller now owns the digest (it
    must call ``release`` when the result is cached -- success *or*
    failure), or the owner's event to wait on otherwise.  After the wait
    the caller re-probes the cache; a miss (the owner failed) means it
    should claim again and compute itself.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: Dict[str, threading.Event] = {}

    def claim(self, digest: str) -> Optional[threading.Event]:
        with self._lock:
            event = self._events.get(digest)
            if event is not None:
                return event
            self._events[digest] = threading.Event()
            return None

    def release(self, digest: str) -> None:
        with self._lock:
            event = self._events.pop(digest, None)
        if event is not None:
            event.set()


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


@dataclass
class GraphRun:
    """The outcome of one :meth:`TaskGraphRunner.run`.

    ``statuses`` maps every digest to its node document (``kind``,
    ``status``, ``cached``, ``error``); ``results`` holds the result
    documents of every ``done`` task; ``stats`` counts work actually
    performed (``runs_computed`` is the number the warm-cache acceptance
    asserts is zero).
    """

    statuses: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    results: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True iff every task reached ``done`` (or was pruned away)."""
        return all(
            s["status"] in ("done", "pruned") for s in self.statuses.values()
        )

    def result(self, digest: str) -> Dict[str, Any]:
        """The result document of one task; raises if it did not finish."""
        if digest not in self.results:
            status = self.statuses.get(digest, {"status": "unknown"})
            raise TaskError(
                f"task {digest[:16]}... has no result "
                f"(status={status['status']!r}, error={status.get('error')!r})"
            )
        return self.results[digest]

    def decoded(self, graph: TaskGraph, digest: str) -> Any:
        """The decoded result object, through the kind's registered codec."""
        return get_codec(get_task_kind(graph[digest].kind).codec).decode(
            self.result(digest)
        )


class TaskGraphRunner:
    """Execute task graphs over one executor and one result cache.

    Parameters
    ----------
    executor:
        Executor name or instance dispatching ``run``-kind tasks (every
        ready run task goes out in a single
        :meth:`~repro.engine.executor.Executor.run_many_settled` call,
        so grids batch/shard exactly like service run jobs).
    cache:
        Optional :class:`ResultCache`; when set, every task probes it
        before computing and stores its result after -- a warm graph
        performs zero computations.
    inflight:
        Optional shared :class:`TaskInflight` for cross-graph dedup (the
        scheduler passes its own); omitted = this runner dedups only
        within a graph (by digest, which the graph already guarantees).
    on_update:
        Optional ``(digest, node_doc)`` callback fired on every node
        state change (the scheduler mirrors these into the job document
        served by ``GET /v1/tasks/<id>``).
    foreign_wait_timeout:
        Upper bound (seconds) on each wait for a task another graph is
        computing.  An owner that vanished without releasing its claim
        (a worker torn down mid-stop, a crashed thread) must not hang
        this graph forever: after the timeout the stale claim is broken
        and the task recomputed here (content-addressed, so a racing
        duplicate computation is byte-identical, never wrong).
    """

    def __init__(
        self,
        executor: Any = None,
        cache: Optional[ResultCache] = None,
        inflight: Optional[TaskInflight] = None,
        on_update: Optional[Callable[[str, Dict[str, Any]], None]] = None,
        foreign_wait_timeout: float = 10.0,
    ) -> None:
        self._executor: Executor = get_executor(executor)
        self._cache = cache
        self._inflight = inflight
        self._on_update = on_update
        self._foreign_wait_timeout = foreign_wait_timeout

    # -- cache plumbing -------------------------------------------------

    def _cache_probe(self, task: TaskSpec, digest: str) -> Optional[Dict[str, Any]]:
        if self._cache is None:
            return None
        if task.kind == "run":
            return self._cache.lookup(digest, kind="run")
        entry = self._cache.lookup(digest, kind="task")
        if entry is None or entry.get("task_kind") != task.kind:
            return None
        doc = entry.get("doc")
        return doc if isinstance(doc, dict) else None

    def _cache_store(self, task: TaskSpec, digest: str, doc: Dict[str, Any]) -> None:
        if self._cache is None:
            return
        if task.kind == "run":
            self._cache.store(digest, "run", doc)
        else:
            self._cache.store(digest, "task", {"task_kind": task.kind, "doc": doc})

    # -- run ------------------------------------------------------------

    def run(
        self, graph: TaskGraph, outputs: Optional[Sequence[str]] = None
    ) -> GraphRun:
        """Execute the graph; returns per-node statuses, results, stats.

        ``outputs`` (when given) restricts execution to the transitive
        *input cone* of the requested digests: tasks nothing requested
        depends on are marked ``pruned`` and never probed, claimed, or
        computed.  The cone is transitively closed over inputs, so a
        pruned task is never an input of an executed one.  Requesting
        the graph's sinks (the submission default) covers every node --
        all tasks feed some sink -- so default submissions behave
        exactly as before; ``outputs=None`` runs everything.
        """
        run = GraphRun(
            statuses=initial_statuses(graph),
            stats={
                "tasks": len(graph),
                "cached": 0,
                "computed": 0,
                "runs_computed": 0,
                "failed": 0,
                "poisoned": 0,
                "pruned": 0,
            },
        )
        pending = list(graph.order)
        blocked: set = set()  # failed or poisoned

        def mark(digest: str, **changes: Any) -> None:
            run.statuses[digest].update(changes)
            if self._on_update is not None:
                self._on_update(digest, dict(run.statuses[digest]))

        if outputs is not None:
            cone: set = set()
            frontier = [d for d in outputs if d in graph]
            while frontier:
                digest = frontier.pop()
                if digest in cone:
                    continue
                cone.add(digest)
                frontier.extend(graph[digest].inputs)
            for digest in pending:
                if digest not in cone:
                    run.stats["pruned"] += 1
                    mark(digest, status="pruned")
            pending = [d for d in pending if d in cone]

        def finish_ok(digest: str, doc: Dict[str, Any], cached: bool) -> None:
            run.results[digest] = doc
            if cached:
                run.stats["cached"] += 1
            else:
                run.stats["computed"] += 1
                if graph[digest].kind == "run":
                    run.stats["runs_computed"] += 1
            mark(digest, status="done", cached=cached)

        def finish_failed(digest: str, error: str) -> None:
            run.stats["failed"] += 1
            blocked.add(digest)
            mark(digest, status="failed", error=error)

        dependents = graph.dependents()  # immutable during the run

        def poison_downstream() -> None:
            frontier = list(blocked)
            while frontier:
                for child in dependents[frontier.pop()]:
                    if child in blocked or child not in pending:
                        continue
                    if run.statuses[child]["status"] != "pending":
                        continue
                    blocked.add(child)
                    run.stats["poisoned"] += 1
                    mark(child, status="poisoned", error="upstream task failed")
                    frontier.append(child)
            pending[:] = [d for d in pending if d not in blocked]

        while pending:
            ready = [
                d
                for d in pending
                if all(ref in run.results for ref in graph[d].inputs)
            ]
            if not ready:
                break  # everything left waits on failed/poisoned inputs
            self._run_wave(graph, ready, run.results, finish_ok, finish_failed, mark)
            pending = [d for d in pending if d not in run.results and d not in blocked]
            poison_downstream()
        return run

    def _run_wave(
        self,
        graph: TaskGraph,
        ready: List[str],
        results: Dict[str, Dict[str, Any]],
        finish_ok: Callable[[str, Dict[str, Any], bool], None],
        finish_failed: Callable[[str, str], None],
        mark: Callable[..., None],
    ) -> None:
        """Execute one wave of ready tasks: probe, claim, batch, compute."""
        owned_runs: List[str] = []
        owned_other: List[str] = []
        foreign: List[Tuple[str, threading.Event]] = []
        for digest in ready:
            task = graph[digest]
            doc = self._cache_probe(task, digest)
            if doc is not None:
                finish_ok(digest, doc, True)
                continue
            if self._inflight is not None:
                event = self._inflight.claim(digest)
                if event is not None:
                    foreign.append((digest, event))
                    continue
            (owned_runs if task.kind == "run" else owned_other).append(digest)

        # Every owned claim must be released even if something unexpected
        # escapes below (cache I/O, a codec bug): a leaked claim would
        # block every other graph sharing the digest forever.
        unreleased = set(owned_runs) | set(owned_other)

        def release(digest: str) -> None:
            if self._inflight is not None:
                self._inflight.release(digest)
            unreleased.discard(digest)

        try:
            # One batched dispatch for every runnable run task in the wave.
            if owned_runs:
                for digest in owned_runs:
                    mark(digest, status="running")
                specs = [to_run_spec(graph[d].payload) for d in owned_runs]
                # One "node" span covers the whole batched dispatch (the
                # wave's run tasks share a single executor call).
                with _trace.span("node", kind="run", tasks=len(owned_runs)):
                    settled = self._executor.run_many_settled(specs)
                for digest, outcome in zip(owned_runs, settled):
                    if isinstance(outcome, Exception):
                        finish_failed(
                            digest, f"{type(outcome).__name__}: {outcome}"
                        )
                    else:
                        doc = report_to_doc(outcome)
                        self._cache_store(graph[digest], digest, doc)
                        finish_ok(digest, doc, False)
                    release(digest)

            # Pure compute kinds, in topological order within the wave.
            for digest in owned_other:
                task = graph[digest]
                mark(digest, status="running")
                try:
                    inputs = [dict(results[ref]) for ref in task.inputs]
                    with _trace.span("node", kind=task.kind, digest=digest[:16]):
                        doc = get_task_kind(task.kind).compute(
                            dict(task.payload), inputs
                        )
                    if not isinstance(doc, dict):
                        raise TaskError(
                            f"task kind {task.kind!r} compute returned "
                            f"{type(doc).__name__}, expected a JSON object"
                        )
                except Exception as exc:
                    finish_failed(digest, f"{type(exc).__name__}: {exc}")
                else:
                    self._cache_store(task, digest, doc)
                    finish_ok(digest, doc, False)
                finally:
                    release(digest)
        finally:
            for digest in list(unreleased):
                if self._inflight is not None:
                    self._inflight.release(digest)

        # Digests another graph is computing: wait (bounded -- a dead
        # owner must not hang us), then re-probe; if the owner failed,
        # claim and compute ourselves next wave.
        for digest, event in foreign:
            mark(digest, status="running")
            released = event.wait(timeout=self._foreign_wait_timeout)
            doc = self._cache_probe(graph[digest], digest)
            if doc is not None:
                finish_ok(digest, doc, True)
                continue
            if not released and self._inflight is not None:
                # The owner held its claim past the timeout with nothing
                # cached: assume it died without releasing and break the
                # claim, so the next wave claims and computes here.  If
                # the owner is merely slow, the worst case is one
                # duplicate computation of a content-addressed task.
                self._inflight.release(digest)
            mark(digest, status="pending")
        # (Un-resolved foreign digests stay pending and are retried.)


def run_graph(
    graph: TaskGraph,
    outputs: Optional[Sequence[str]] = None,
    executor: Any = None,
    cache: Optional[ResultCache] = None,
) -> GraphRun:
    """Convenience: execute a graph with a fresh runner."""
    return TaskGraphRunner(executor=executor, cache=cache).run(graph, outputs)


# ----------------------------------------------------------------------
# Sweeps as task graphs
# ----------------------------------------------------------------------


def sweep_graph(raw_sweep_spec: Mapping[str, Any]) -> Tuple[TaskGraph, str]:
    """Decompose a sweep spec into run-cell tasks + one aggregation task.

    Returns ``(graph, output_digest)`` where the output is a
    ``sweep-agg`` task producing the serialized
    :class:`~repro.analysis.sweep.SweepResult` -- bit-identical to
    ``Executor.sweep`` over the same canonical spec (same n-major grid
    order, same truncated-cell dropping).
    """
    spec = canonical_sweep_spec(raw_sweep_spec)
    graph = TaskGraph()
    cells: List[Dict[str, Any]] = []
    inputs: List[str] = []
    for n in spec["ns"]:
        for row in spec["adversaries"]:
            digest = graph.add_run(
                {
                    "adversary": row["adversary"],
                    "params": row["params"],
                    "n": n,
                    "seed": spec["seed"],
                    "max_rounds": spec["max_rounds"],
                    "backend": spec["backend"],
                }
            )
            cells.append({"label": row["label"], "n": n})
            inputs.append(digest)
    output = graph.add(
        {
            "kind": "sweep-agg",
            "payload": {"cells": cells},
            "inputs": inputs,
        }
    )
    return graph, output


# ----------------------------------------------------------------------
# Built-in codecs and kinds
# ----------------------------------------------------------------------


def _identity_doc(doc: Dict[str, Any]) -> Dict[str, Any]:
    return doc


def _decode_sweep(doc: Dict[str, Any]) -> Any:
    from repro.analysis.sweep import SweepResult

    return SweepResult.from_doc(doc)


def _encode_sweep(result: Any) -> Dict[str, Any]:
    return result.to_doc()


def _decode_table(doc: Dict[str, Any]) -> Any:
    from repro.experiments.registry import table_from_doc

    return table_from_doc(doc)


def _encode_table(table: Any) -> Dict[str, Any]:
    from repro.experiments.registry import table_to_doc

    return table_to_doc(table)


def _canonical_run_payload(raw: Mapping[str, Any], n_inputs: int) -> Dict[str, Any]:
    if n_inputs:
        raise TaskError("'run' tasks take no inputs")
    try:
        return canonical_run_spec(raw)
    except TaskError:
        raise
    except Exception as exc:  # SpecError and friends, re-labelled per task
        raise TaskError(str(exc)) from exc


def _int_field(
    payload: Mapping[str, Any], key: str, minimum: int = 1, default: Any = ...
) -> int:
    value = payload.get(key, default)
    if value is ...:
        raise TaskError(f"payload is missing {key!r}")
    if isinstance(value, bool) or not isinstance(value, int) or value < minimum:
        raise TaskError(f"{key!r} must be an integer >= {minimum}, got {value!r}")
    return int(value)


def _canonical_sweep_agg(raw: Mapping[str, Any], n_inputs: int) -> Dict[str, Any]:
    payload = _canonical_payload(raw)
    cells = payload.get("cells")
    if not isinstance(cells, list) or len(cells) != n_inputs:
        raise TaskError(
            "'sweep-agg' payload must carry one {label, n} cell per input "
            f"(got {len(cells) if isinstance(cells, list) else cells!r} cells "
            f"for {n_inputs} inputs)"
        )
    for cell in cells:
        if not isinstance(cell, dict) or set(cell) != {"label", "n"}:
            raise TaskError(f"sweep-agg cells must be {{label, n}} objects, got {cell!r}")
        if not isinstance(cell["label"], str) or not cell["label"]:
            raise TaskError(f"sweep-agg cell label must be a string, got {cell!r}")
        _int_field(cell, "n")
    return payload


def _compute_sweep_agg(
    payload: Dict[str, Any], inputs: List[Dict[str, Any]]
) -> Dict[str, Any]:
    from repro.analysis.sweep import SweepResult, make_sweep_point

    points = []
    for cell, doc in zip(payload["cells"], inputs):
        point = make_sweep_point(cell["label"], cell["n"], doc.get("t_star"))
        if point is not None:
            points.append(point)
    return SweepResult(points=points).to_doc()


def _canonical_bounds(raw: Mapping[str, Any], n_inputs: int) -> Dict[str, Any]:
    payload = _canonical_payload(raw)
    if set(payload) - {"n"}:
        raise TaskError(f"'bounds' payload accepts only 'n', got {sorted(payload)}")
    return {"n": _int_field(payload, "n")}


def _compute_bounds(
    payload: Dict[str, Any], inputs: List[Dict[str, Any]]
) -> Dict[str, Any]:
    from repro.core import bounds as B

    n = payload["n"]
    return {
        "n": n,
        "trivial": B.trivial_upper_bound(n),
        "nlogn": B.nlogn_upper_bound(n),
        "loglog": B.fugger_nowak_winkler_upper_bound(n),
        "new": B.upper_bound(n),
        "lower": B.lower_bound(n),
    }


def _canonical_exact(raw: Mapping[str, Any], n_inputs: int) -> Dict[str, Any]:
    payload = _canonical_payload(raw)
    if set(payload) - {"n", "max_states"}:
        raise TaskError(
            f"'exact-solve' payload accepts 'n' and 'max_states', got {sorted(payload)}"
        )
    doc = {"n": _int_field(payload, "n")}
    if "max_states" in payload:
        doc["max_states"] = _int_field(payload, "max_states")
    return doc


def _compute_exact(
    payload: Dict[str, Any], inputs: List[Dict[str, Any]]
) -> Dict[str, Any]:
    from repro.adversaries.exact import ExactGameSolver

    kwargs = {}
    if "max_states" in payload:
        kwargs["max_states"] = payload["max_states"]
    result = ExactGameSolver(payload["n"], **kwargs).solve()
    return {
        "n": payload["n"],
        "t_star": int(result.t_star),
        "states_explored": int(result.states_explored),
    }


_GOSSIP_FAMILIES = ("adversarial-path", "random-tree")


def _canonical_gossip(raw: Mapping[str, Any], n_inputs: int) -> Dict[str, Any]:
    payload = _canonical_payload(raw)
    if set(payload) - {"n", "family", "seed", "max_rounds"}:
        raise TaskError(f"unknown 'gossip' payload keys in {sorted(payload)}")
    family = payload.get("family")
    if family not in _GOSSIP_FAMILIES:
        raise TaskError(
            f"'gossip' family must be one of {_GOSSIP_FAMILIES}, got {family!r}"
        )
    doc = {
        "n": _int_field(payload, "n"),
        "family": family,
        "seed": _int_field(payload, "seed", minimum=0, default=0),
    }
    max_rounds = payload.get("max_rounds")
    if max_rounds is not None:
        doc["max_rounds"] = _int_field(payload, "max_rounds")
    else:
        doc["max_rounds"] = None
    return doc


def _compute_gossip(
    payload: Dict[str, Any], inputs: List[Dict[str, Any]]
) -> Dict[str, Any]:
    from repro.adversaries.oblivious import RandomTreeAdversary, StaticTreeAdversary
    from repro.gossip.gossip import gossip_time_adversary
    from repro.trees.generators import path

    n = payload["n"]
    if payload["family"] == "adversarial-path":
        adversary = StaticTreeAdversary(path(n))
    else:
        adversary = RandomTreeAdversary(n, seed=payload["seed"])
    result = gossip_time_adversary(adversary, n, max_rounds=payload["max_rounds"])
    return {
        "n": n,
        "broadcast_time": result.broadcast_time,
        "gossip_time": result.gossip_time,
    }


def _canonical_nonsplit(raw: Mapping[str, Any], n_inputs: int) -> Dict[str, Any]:
    payload = _canonical_payload(raw)
    if set(payload) - {"ns", "graph_seed", "rng_seed"}:
        raise TaskError(f"unknown 'nonsplit-bridge' payload keys in {sorted(payload)}")
    ns = payload.get("ns")
    if not isinstance(ns, list) or not ns:
        raise TaskError("'nonsplit-bridge' payload needs a non-empty 'ns' list")
    for value in ns:
        if isinstance(value, bool) or not isinstance(value, int) or value < 2:
            raise TaskError(f"'ns' entries must be integers >= 2, got {value!r}")
    return {
        "ns": [int(v) for v in ns],
        "graph_seed": _int_field(payload, "graph_seed", minimum=0, default=1),
        "rng_seed": _int_field(payload, "rng_seed", minimum=0, default=0),
    }


def _compute_nonsplit(
    payload: Dict[str, Any], inputs: List[Dict[str, Any]]
) -> Dict[str, Any]:
    import numpy as np

    from repro.adversaries.nonsplit import (
        NonsplitAdversary,
        broadcast_time_nonsplit,
        cyclic_nonsplit_graph,
        nonsplit_radius,
    )
    from repro.gossip.consensus import blocks_are_nonsplit
    from repro.trees.generators import random_tree

    # One shared RNG stream across the whole ns list, exactly as the
    # legacy experiment drew its witness trees -- which is why this is a
    # single task rather than a per-n grid.
    rng = np.random.default_rng(payload["rng_seed"])
    rows = []
    for n in payload["ns"]:
        radius = nonsplit_radius(cyclic_nonsplit_graph(n))
        t, _ = broadcast_time_nonsplit(
            NonsplitAdversary(n, seed=payload["graph_seed"]), n
        )
        trees = [random_tree(n, rng) for _ in range(n - 1)]
        rows.append(
            {
                "n": n,
                "radius": int(radius),
                "t_star": int(t),
                "lemma_nonsplit": bool(blocks_are_nonsplit(trees, n)),
            }
        )
    return {"rows": rows}


def _canonical_arc_game(raw: Mapping[str, Any], n_inputs: int) -> Dict[str, Any]:
    payload = _canonical_payload(raw)
    if set(payload) - {"n", "solver_limit"}:
        raise TaskError(f"unknown 'arc-game' payload keys in {sorted(payload)}")
    return {
        "n": _int_field(payload, "n"),
        "solver_limit": _int_field(payload, "solver_limit", default=6),
    }


def _compute_arc_game(
    payload: Dict[str, Any], inputs: List[Dict[str, Any]]
) -> Dict[str, Any]:
    from repro.adversaries.interval_game import arc_game_value

    n = payload["n"]
    # Proved value n-1 beyond the solver's practical range (the legacy
    # experiment's convention).
    value = arc_game_value(n) if n <= payload["solver_limit"] else n - 1
    return {"n": n, "value": int(value)}


def _canonical_anneal(raw: Mapping[str, Any], n_inputs: int) -> Dict[str, Any]:
    payload = _canonical_payload(raw)
    if set(payload) - {"n", "iterations", "seed"}:
        raise TaskError(f"unknown 'anneal' payload keys in {sorted(payload)}")
    return {
        "n": _int_field(payload, "n", minimum=2),
        "iterations": _int_field(payload, "iterations", default=400),
        "seed": _int_field(payload, "seed", minimum=0, default=0),
    }


def _compute_anneal(
    payload: Dict[str, Any], inputs: List[Dict[str, Any]]
) -> Dict[str, Any]:
    from repro.adversaries.annealing import anneal_sequence

    result = anneal_sequence(
        payload["n"], iterations=payload["iterations"], seed=payload["seed"]
    )
    return {"n": payload["n"], "best_t_star": int(result.best_t_star)}


def _canonical_experiment(raw: Mapping[str, Any], n_inputs: int) -> Dict[str, Any]:
    from repro.experiments.registry import get_experiment, known_experiment_ids

    payload = _canonical_payload(raw)
    if set(payload) - {"experiment"}:
        raise TaskError(
            f"'experiment' payload accepts only 'experiment', got {sorted(payload)}"
        )
    eid = payload.get("experiment")
    if eid not in known_experiment_ids():
        raise TaskError(
            f"unknown experiment {eid!r}; known: {sorted(known_experiment_ids())}"
        )
    # Aggregations are positional folds over the declared unit grid; the
    # wrong arity must be rejected here, not fabricate a truncated table.
    expected = len(get_experiment(eid).units())
    if n_inputs != expected:
        raise TaskError(
            f"experiment {eid} aggregates exactly {expected} unit inputs "
            f"(its declared grid), got {n_inputs}"
        )
    return {"experiment": eid}


def _compute_experiment(
    payload: Dict[str, Any], inputs: List[Dict[str, Any]]
) -> Dict[str, Any]:
    from repro.experiments.registry import get_experiment, table_to_doc

    spec = get_experiment(payload["experiment"])
    return table_to_doc(spec.aggregate(inputs))


def _register_builtins() -> None:
    register_codec("json", _identity_doc, _identity_doc)
    register_codec("run-report", report_to_doc, report_from_doc)
    register_codec("sweep-result", _encode_sweep, _decode_sweep)
    register_codec("experiment-table", _encode_table, _decode_table)

    register_task_kind(
        "run",
        compute=None,
        canonicalize=_canonical_run_payload,
        codec="run-report",
        description="one broadcast run (canonical run spec); executor-dispatched",
    )
    register_task_kind(
        "sweep-agg",
        compute=_compute_sweep_agg,
        canonicalize=_canonical_sweep_agg,
        codec="sweep-result",
        description="fold run-cell inputs into a SweepResult grid",
    )
    register_task_kind(
        "bounds",
        compute=_compute_bounds,
        canonicalize=_canonical_bounds,
        description="every Figure 1 bound formula at one n",
    )
    register_task_kind(
        "exact-solve",
        compute=_compute_exact,
        canonicalize=_canonical_exact,
        description="exhaustive game solve (small n): exact t* + states",
    )
    register_task_kind(
        "gossip",
        compute=_compute_gossip,
        canonicalize=_canonical_gossip,
        description="gossip completion time for one adversary family",
    )
    register_task_kind(
        "nonsplit-bridge",
        compute=_compute_nonsplit,
        canonicalize=_canonical_nonsplit,
        description="nonsplit radius/broadcast/lemma rows over an ns list",
    )
    register_task_kind(
        "arc-game",
        compute=_compute_arc_game,
        canonicalize=_canonical_arc_game,
        description="restricted rotated-paths game value (solver or proved)",
    )
    register_task_kind(
        "anneal",
        compute=_compute_anneal,
        canonicalize=_canonical_anneal,
        description="simulated-annealing best t* over tree sequences",
    )
    register_task_kind(
        "experiment",
        compute=_compute_experiment,
        canonicalize=_canonical_experiment,
        codec="experiment-table",
        description="pure aggregation of one E1..E8 experiment's inputs",
    )


_register_builtins()


__all__ = [
    "TASK_STATES",
    "TASK_VERSION",
    "Codec",
    "GraphRun",
    "TaskGraph",
    "TaskGraphRunner",
    "TaskInflight",
    "TaskKindEntry",
    "TaskSpec",
    "canonical_task",
    "describe_task_kinds",
    "get_codec",
    "get_task_kind",
    "graph_digest",
    "initial_statuses",
    "register_codec",
    "register_task_kind",
    "run_graph",
    "sweep_graph",
    "task_digest",
    "task_kind_names",
    "unregister_task_kind",
]
