"""Simulation-as-a-service: the serving layer over the executor stack.

PR 3 left one seam for new front-ends -- :class:`~repro.engine.executor.RunSpec`
in, :class:`~repro.engine.executor.RunReport` out via
:func:`~repro.engine.executor.get_executor`.  This package is the first
front-end that actually *serves* users instead of scripts:

* :mod:`~repro.service.specs` -- declarative, JSON-serializable simulation
  specs with a registry over the adversary portfolio and a canonical
  content-addressed digest per spec;
* :mod:`~repro.service.cache` -- a versioned result store keyed by spec
  digest (in-memory LRU + optional append-only JSONL persistence), with a
  :class:`~repro.service.cache.SweepCellCache` adapter that plugs into
  ``Executor.sweep`` so enlarged grids only compute new cells;
* :mod:`~repro.service.scheduler` -- a thread-based job queue with
  queued/running/done/failed states, in-flight dedup of identical digests,
  and batching of compatible queued specs into single executor dispatches;
* :mod:`~repro.service.server` -- a stdlib ``ThreadingHTTPServer`` JSON API
  (``POST /v1/runs``, ``GET /v1/runs/<id>``, ``POST /v1/sweeps``,
  ``GET /healthz``, ``GET /metrics``);
* :mod:`~repro.service.client` -- a thin ``http.client`` wrapper used by
  tests, benchmarks, and the CLI ``submit`` subcommand.
"""

from repro.service.cache import (
    CACHE_FORMAT_VERSION,
    ResultCache,
    SweepCellCache,
    report_from_doc,
    report_to_doc,
)
from repro.service.client import ServiceClient
from repro.service.scheduler import JOB_STATES, Job, JobScheduler
from repro.service.server import ServiceServer
from repro.service.specs import (
    SPEC_VERSION,
    SpecHandle,
    adversary_names,
    canonical_run_spec,
    canonical_sweep_spec,
    describe_registry,
    portfolio_handles,
    register_adversary,
    spec_digest,
    to_run_spec,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "JOB_STATES",
    "SPEC_VERSION",
    "Job",
    "JobScheduler",
    "ResultCache",
    "ServiceClient",
    "ServiceServer",
    "SpecHandle",
    "SweepCellCache",
    "adversary_names",
    "canonical_run_spec",
    "canonical_sweep_spec",
    "describe_registry",
    "portfolio_handles",
    "register_adversary",
    "report_from_doc",
    "report_to_doc",
    "spec_digest",
    "to_run_spec",
]
