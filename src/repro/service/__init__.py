"""Simulation-as-a-service: the serving layer over the executor stack.

PR 3 left one seam for new front-ends -- :class:`~repro.engine.executor.RunSpec`
in, :class:`~repro.engine.executor.RunReport` out via
:func:`~repro.engine.executor.get_executor`.  This package is the first
front-end that actually *serves* users instead of scripts:

* :mod:`~repro.service.specs` -- declarative, JSON-serializable simulation
  specs with a registry over the adversary portfolio and a canonical
  content-addressed digest per spec;
* :mod:`~repro.service.cache` -- a versioned result store keyed by spec
  digest (in-memory LRU + optional append-only JSONL persistence), with a
  :class:`~repro.service.cache.SweepCellCache` adapter that plugs into
  ``Executor.sweep`` so enlarged grids only compute new cells;
* :mod:`~repro.service.scheduler` -- a thread-based job queue with
  queued/running/done/failed states, in-flight dedup of identical digests,
  and batching of compatible queued specs into single executor dispatches;
* :mod:`~repro.service.tasks` -- Task API v2: typed, versioned,
  content-addressed task graphs (run cells, sweep aggregations, E1..E8
  experiments) with a task-kind registry, a result-codec registry, and a
  topological runner that batches run tasks through the executors;
* :mod:`~repro.service.server` -- a stdlib ``ThreadingHTTPServer`` JSON API
  (``POST /v1/runs``, ``POST /v1/runs:batch``, ``GET /v1/runs/<id>``,
  ``POST /v1/sweeps``, ``POST /v1/tasks``, ``GET /v1/tasks/<id>``,
  ``GET /healthz``, ``GET /metrics``);
* :mod:`~repro.service.client` -- a thin ``http.client`` wrapper used by
  tests, benchmarks, and the CLI ``submit``/``task`` subcommands.
"""

from repro.service.cache import (
    CACHE_FORMAT_VERSION,
    ResultCache,
    SweepCellCache,
    report_from_doc,
    report_to_doc,
)
from repro.service.client import ServiceClient
from repro.service.scheduler import JOB_STATES, Job, JobScheduler
from repro.service.server import ServiceServer
from repro.service.specs import (
    SPEC_VERSION,
    SpecHandle,
    adversary_names,
    canonical_run_spec,
    canonical_sweep_spec,
    describe_registry,
    portfolio_handles,
    register_adversary,
    spec_digest,
    to_run_spec,
)
from repro.service.tasks import (
    TASK_VERSION,
    GraphRun,
    TaskGraph,
    TaskGraphRunner,
    TaskSpec,
    canonical_task,
    describe_task_kinds,
    graph_digest,
    register_codec,
    register_task_kind,
    run_graph,
    sweep_graph,
    task_digest,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "JOB_STATES",
    "SPEC_VERSION",
    "TASK_VERSION",
    "GraphRun",
    "Job",
    "JobScheduler",
    "ResultCache",
    "ServiceClient",
    "ServiceServer",
    "SpecHandle",
    "SweepCellCache",
    "TaskGraph",
    "TaskGraphRunner",
    "TaskSpec",
    "adversary_names",
    "canonical_run_spec",
    "canonical_sweep_spec",
    "canonical_task",
    "describe_registry",
    "describe_task_kinds",
    "graph_digest",
    "portfolio_handles",
    "register_adversary",
    "register_codec",
    "register_task_kind",
    "report_from_doc",
    "report_to_doc",
    "run_graph",
    "spec_digest",
    "sweep_graph",
    "task_digest",
    "to_run_spec",
]
