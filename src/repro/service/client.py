"""Thin stdlib client for the simulation service HTTP API.

:class:`ServiceClient` wraps :mod:`http.client` (one connection per
request -- the server is HTTP/1.1 but a service client must survive
server restarts) and speaks the JSON envelopes of
:mod:`repro.service.server`.  Used by the test suite, the benchmark
harness, ``examples/service_demo.py``, and the CLI ``submit`` subcommand.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple
from urllib.parse import urlparse

from repro.errors import (
    AuthenticationError,
    LeaseExpiredError,
    PayloadTooLargeError,
    QuotaExceededError,
    RateLimitedError,
    ServiceConnectionError,
    ServiceError,
    ServiceResponseError,
    SpecRejectedError,
    UnknownResourceError,
)
from repro.service.cache import report_from_doc

if TYPE_CHECKING:  # runtime import stays lazy
    from repro.engine.executor import RunReport


class ServiceClient:
    """JSON client for one service endpoint.

    Construct from ``host``/``port`` or :meth:`from_url`.  All methods
    raise typed :class:`~repro.errors.ServiceError` subclasses:
    :class:`~repro.errors.ServiceConnectionError` when the server is
    unreachable mid-request *or stalls past the socket timeout*, and for
    non-2xx responses a :class:`~repro.errors.ServiceResponseError`
    carrying ``status`` and the server's JSON ``payload`` --
    :class:`~repro.errors.SpecRejectedError` for 400 (malformed
    specs/graphs), :class:`~repro.errors.AuthenticationError` for 401
    (missing/bad bearer token), :class:`~repro.errors.PayloadTooLargeError`
    for 413 (body over the server's cap),
    :class:`~repro.errors.UnknownResourceError` for 404 (unknown
    jobs/paths), :class:`~repro.errors.LeaseExpiredError` for 409 (a
    work lease was reclaimed), and for 429 either
    :class:`~repro.errors.QuotaExceededError` (the server said
    ``reason="quota"``) or :class:`~repro.errors.RateLimitedError`, both
    carrying ``retry_after``.  The server's ``error`` field becomes the
    exception message in every case.

    ``token`` (when given) is sent as ``Authorization: Bearer <token>``
    on every request.  ``retry_rate_limited`` enables bounded retry on
    429: up to that many extra attempts, sleeping the server's
    ``retry_after`` between them.  Quota rejections are never retried --
    waiting does not replenish a quota.

    ``timeout`` (default 30 s) bounds every socket operation -- connect,
    send, and each read -- so a hung server can never hang the client.

    ``retry_connect`` enables bounded automatic retry on
    :class:`~repro.errors.ServiceConnectionError` for **idempotent GETs
    only** -- up to that many extra attempts with jittered exponential
    backoff, so a watcher (``task status --watch``) rides out a server
    restart instead of dying on the first refused connection.  POSTs
    are never connection-retried here: a submit whose response was lost
    may have been accepted, and blind resubmission is the caller's
    decision (content-addressed dedup makes it safe, but not this
    layer's call).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        timeout: float = 30.0,
        token: Optional[str] = None,
        retry_rate_limited: int = 0,
        max_retry_wait: float = 5.0,
        retry_connect: int = 0,
    ) -> None:
        if retry_rate_limited < 0:
            raise ServiceError(
                f"retry_rate_limited must be >= 0, got {retry_rate_limited}"
            )
        if retry_connect < 0:
            raise ServiceError(f"retry_connect must be >= 0, got {retry_connect}")
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.token = token
        self.retry_rate_limited = int(retry_rate_limited)
        self.max_retry_wait = float(max_retry_wait)
        self.retry_connect = int(retry_connect)

    @classmethod
    def from_url(
        cls,
        url: str,
        timeout: float = 30.0,
        token: Optional[str] = None,
        retry_rate_limited: int = 0,
        retry_connect: int = 0,
    ) -> "ServiceClient":
        """Build a client from ``http://host:port`` (the CLI ``--url`` form)."""
        parsed = urlparse(url if "//" in url else f"//{url}", scheme="http")
        if parsed.scheme != "http" or not parsed.hostname:
            raise ServiceError(f"service URL must look like http://host:port, got {url!r}")
        return cls(
            parsed.hostname,
            parsed.port or 80,
            timeout=timeout,
            token=token,
            retry_rate_limited=retry_rate_limited,
            retry_connect=retry_connect,
        )

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        effective = self.timeout if timeout is None else timeout
        conn = http.client.HTTPConnection(self.host, self.port, timeout=effective)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            if self.token is not None:
                headers["Authorization"] = f"Bearer {self.token}"
            # Propagate the caller's active trace context (if any) so the
            # server's request span -- and the job it enqueues -- joins
            # this process's trace tree.
            from repro.obs import trace as _trace

            ctx = _trace.current_context()
            if ctx is not None:
                headers["traceparent"] = ctx.to_header()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except socket.timeout as exc:
                # A stalled (not merely unreachable) server: name the
                # deadline so callers can tell hang from refusal.
                raise ServiceConnectionError(
                    f"service request {method} {path} to "
                    f"{self.host}:{self.port} timed out after {effective}s"
                ) from exc
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceConnectionError(
                    f"service request {method} {path} to "
                    f"{self.host}:{self.port} failed: {exc}"
                ) from exc
            try:
                doc = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"service returned non-JSON body for {method} {path}: {exc}"
                ) from exc
            return response.status, doc
        finally:
            conn.close()

    def _checked(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One request with typed errors and bounded rate-limit retry.

        A 429 with ``reason != "quota"`` is retried up to
        ``retry_rate_limited`` times, sleeping the server's
        ``retry_after`` (capped at ``max_retry_wait``) between attempts;
        quota rejections and every other status raise immediately.

        A :class:`ServiceConnectionError` is retried (jittered
        exponential backoff) up to ``retry_connect`` times, but only
        for GETs -- see the class docstring for why POSTs never are.
        """
        attempts = 0
        connect_attempts = 0
        while True:
            try:
                status, doc = self._request(method, path, body, timeout=timeout)
            except ServiceConnectionError:
                if method != "GET" or connect_attempts >= self.retry_connect:
                    raise
                # Jittered exponential backoff: restarts take a beat, and
                # simultaneous watchers should not stampede the new server.
                wait = min(0.1 * (2 ** connect_attempts), self.max_retry_wait)
                time.sleep(wait * (0.5 + random.random()))
                connect_attempts += 1
                continue
            if status < 400:
                return doc
            message = doc.get("error", f"{method} {path} returned HTTP {status}")
            if status == 400:
                raise SpecRejectedError(message, status=status, payload=doc)
            if status == 401:
                raise AuthenticationError(message, status=status, payload=doc)
            if status == 404:
                raise UnknownResourceError(message, status=status, payload=doc)
            if status == 409:
                raise LeaseExpiredError(message, status=status, payload=doc)
            if status == 413:
                raise PayloadTooLargeError(message, status=status, payload=doc)
            if status == 429:
                retry_after = doc.get("retry_after")
                if doc.get("reason") == "quota":
                    raise QuotaExceededError(
                        message, status=status, payload=doc, retry_after=retry_after
                    )
                if attempts < self.retry_rate_limited:
                    attempts += 1
                    wait = 0.05 if retry_after is None else float(retry_after)
                    time.sleep(max(0.0, min(wait, self.max_retry_wait)))
                    continue
                raise RateLimitedError(
                    message, status=status, payload=doc, retry_after=retry_after
                )
            raise ServiceResponseError(message, status=status, payload=doc)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._checked("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics`` -- scheduler + cache counters."""
        return self._checked("GET", "/metrics")

    def specs(self) -> Dict[str, Any]:
        """``GET /v1/specs`` -- the adversary registry description."""
        return self._checked("GET", "/v1/specs")

    def submit_run(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /v1/runs`` -- returns the job envelope."""
        return self._checked("POST", "/v1/runs", spec)

    def submit_sweep(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /v1/sweeps`` -- returns the job envelope."""
        return self._checked("POST", "/v1/sweeps", spec)

    def submit_runs(self, specs: "list[Dict[str, Any]]") -> "list[Dict[str, Any]]":
        """``POST /v1/runs:batch`` -- per-item job envelopes, in order.

        Malformed items come back as ``{"error": ...}`` entries at their
        position; the valid items are submitted (and deduped) normally.
        """
        doc = self._checked("POST", "/v1/runs:batch", {"specs": list(specs)})
        return doc["jobs"]

    def submit_tasks(
        self,
        tasks: "list[Dict[str, Any]]",
        outputs: Optional["list[Any]"] = None,
    ) -> Dict[str, Any]:
        """``POST /v1/tasks`` -- submit a task graph.

        ``tasks`` entries are ``{"kind", "payload", "inputs"}`` documents
        (inputs by digest or earlier-task index); ``outputs`` defaults to
        the graph's sinks.  The returned envelope carries the graph
        digest and a per-node ``tasks`` status map.
        """
        body: Dict[str, Any] = {"tasks": list(tasks)}
        if outputs is not None:
            body["outputs"] = list(outputs)
        return self._checked("POST", "/v1/tasks", body)

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/runs/<id>``."""
        return self._checked("GET", f"/v1/runs/{job_id}")

    def task_job(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/tasks/<id>`` -- job envelope with per-node statuses."""
        return self._checked("GET", f"/v1/tasks/{job_id}")

    def wait(
        self, job_id: str, timeout: float = 60.0, poll: float = 0.02
    ) -> Dict[str, Any]:
        """Poll until the job is ``done``/``failed``; returns the final doc.

        Raises :class:`ServiceError` when the deadline passes first; a
        ``failed`` job is *returned* (its ``error`` field says why), not
        raised, so callers can inspect partial batches.
        """
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc["status"] in ("done", "failed"):
                return doc
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {doc['status']!r} after {timeout}s"
                )
            time.sleep(poll)

    def watch(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_timeout: float = 10.0,
    ) -> Iterator[Dict[str, Any]]:
        """Yield task-job documents as they change, until terminal.

        Long-polls ``GET /v1/tasks/<id>?watch=<version>`` -- the server
        holds each request until the job's update version moves (any
        status or per-node transition), so watchers see pushes rather
        than sampling.  The first yield is the current state; the last
        is the terminal (``done``/``failed``) document.

        ``poll_timeout`` bounds each server-side hold; ``timeout`` (when
        given) bounds the whole watch and raises
        :class:`~repro.errors.ServiceError` if the job is still
        unfinished when it passes.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        version = -1
        while True:
            hold = poll_timeout
            if deadline is not None:
                hold = max(0.0, min(hold, deadline - time.monotonic()))
            doc = self._checked(
                "GET",
                f"/v1/tasks/{job_id}?watch={version}&timeout={hold}",
                # The socket must outlive the server-side hold.
                timeout=hold + self.timeout,
            )
            if doc.get("version", 0) != version:
                version = doc.get("version", 0)
                yield doc
            if doc["status"] in ("done", "failed"):
                return
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {doc['status']!r} after {timeout}s of watching"
                )

    def run_report(self, job_doc: Dict[str, Any]) -> "RunReport":
        """Deserialize a ``done`` run job's result into a :class:`RunReport`."""
        if job_doc.get("status") != "done" or job_doc.get("result") is None:
            raise ServiceError(
                f"job {job_doc.get('job_id')!r} has no result "
                f"(status={job_doc.get('status')!r}, error={job_doc.get('error')!r})"
            )
        return report_from_doc(job_doc["result"], backend=job_doc["spec"].get("backend"))

    # -- distributed fleet (see repro.service.fleet / .worker) ---------

    def claim_work(
        self, worker: str, limit: int = 1, wait: float = 0.0
    ) -> Dict[str, Any]:
        """``POST /v1/work:claim`` -- lease up to ``limit`` ready items.

        ``wait`` asks the server to hold the claim open (bounded
        long-poll) until work appears.  Returns ``{"lease_id", "ttl",
        "items": [{"digest", "kind", "payload", "traceparent",
        "engine"}, ...]}``; an empty claim has ``lease_id: None``.
        """
        return self._checked(
            "POST",
            "/v1/work:claim",
            {"worker": worker, "limit": int(limit), "wait": float(wait)},
            # The socket must outlive the server-side hold.
            timeout=float(wait) + self.timeout,
        )

    def heartbeat_work(self, worker: str, lease_id: str) -> Dict[str, Any]:
        """``POST /v1/work:heartbeat`` -- renew a lease.

        Raises :class:`~repro.errors.LeaseExpiredError` (409) when the
        lease was reclaimed; the worker must abandon the batch.
        """
        return self._checked(
            "POST", "/v1/work:heartbeat", {"worker": worker, "lease_id": lease_id}
        )

    def complete_work(
        self, worker: str, lease_id: str, results: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """``POST /v1/work:complete`` -- land a batch of results.

        Each result is ``{"digest", "ok", "doc"|"error"}``.  Returns
        ``{"accepted", "dropped", "late"}`` -- a late completion (lease
        already expired) is dropped server-side, not an error.
        """
        return self._checked(
            "POST",
            "/v1/work:complete",
            {"worker": worker, "lease_id": lease_id, "results": list(results)},
        )

    def shutdown(self) -> Dict[str, Any]:
        """``POST /v1/shutdown`` -- ask the server to stop gracefully."""
        return self._checked("POST", "/v1/shutdown")


__all__ = ["ServiceClient"]
