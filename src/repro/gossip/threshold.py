"""Threshold broadcast: reaching k processes instead of all n.

A natural interpolation suggested by the related work (Santoro-Widmayer's
k-majority agreement [13] needs information at a k-majority, not
everyone): define

    t*_k = min { t : ∃x, |R_x(t)| >= k }

so ``t*_1 = 0`` (everyone knows itself) and ``t*_n = t*`` (broadcast).
The threshold clock is monotone in ``k``, and its growth profile under a
delaying adversary shows *where* the adversary spends its budget: the
lower-bound constructions hold every prefix threshold down as long as
possible, not just the final one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.bounds import trivial_upper_bound
from repro.core.state import BroadcastState
from repro.errors import AdversaryError
from repro.trees.rooted_tree import RootedTree
from repro.types import AdversaryProtocol, validate_node_count


@dataclass(frozen=True)
class ThresholdProfile:
    """Threshold broadcast times of one run.

    Attributes
    ----------
    n: number of processes.
    times: ``times[k]`` = first round some reach set had size >= k, for
        k = 1..n (index 0 unused, kept None).  ``None`` beyond the last
        threshold reached if the run was truncated.
    """

    n: int
    times: tuple

    def time_for(self, k: int) -> Optional[int]:
        """``t*_k``; 0 for k <= 1."""
        if not 1 <= k <= self.n:
            raise ValueError(f"k must be in [1, n]; got {k} for n={self.n}")
        return self.times[k]

    @property
    def broadcast_time(self) -> Optional[int]:
        """``t*_n`` -- the ordinary broadcast time."""
        return self.times[self.n]

    def is_monotone(self) -> bool:
        """Sanity: thresholds are reached in order."""
        reached = [t for t in self.times[1:] if t is not None]
        return all(a <= b for a, b in zip(reached, reached[1:]))

    def marginal_costs(self) -> List[Optional[int]]:
        """Rounds spent going from threshold k to k+1 (k = 1..n-1).

        Under a strong delaying adversary the late marginals grow: the
        last few nodes are the expensive ones.
        """
        out: List[Optional[int]] = []
        for k in range(1, self.n):
            a, b = self.times[k], self.times[k + 1]
            out.append(None if a is None or b is None else b - a)
        return out


def threshold_profile_sequence(
    trees: Sequence[RootedTree], n: Optional[int] = None
) -> ThresholdProfile:
    """Threshold profile of an explicit tree sequence."""
    if n is None:
        if not trees:
            raise AdversaryError("cannot infer n from an empty sequence")
        n = trees[0].n
    validate_node_count(n)
    times: List[Optional[int]] = [None] * (n + 1)
    times[1] = 0  # self-loops: everyone reaches itself at t = 0
    state = BroadcastState.initial(n)
    best = 1
    for i, tree in enumerate(trees, start=1):
        state.apply_tree_inplace(tree)
        top = int(state.reach_sizes().max())
        while best < top:
            best += 1
            times[best] = i
        if best == n:
            break
    return ThresholdProfile(n=n, times=tuple(times))


def threshold_profile_adversary(
    adversary: AdversaryProtocol,
    n: int,
    max_rounds: Optional[int] = None,
) -> ThresholdProfile:
    """Threshold profile under an adaptive adversary (runs to broadcast)."""
    validate_node_count(n)
    cap = max_rounds if max_rounds is not None else trivial_upper_bound(n)
    adversary.reset()
    times: List[Optional[int]] = [None] * (n + 1)
    times[1] = 0
    state = BroadcastState.initial(n)
    best = 1
    t = 0
    while best < n and t < cap:
        t += 1
        tree = adversary.next_tree(state, t)
        state.apply_tree_inplace(tree)
        top = int(state.reach_sizes().max())
        while best < top:
            best += 1
            times[best] = t
    if best < n and max_rounds is None:
        raise AdversaryError(
            f"threshold run exceeded the n² cap at k={best + 1}; "
            "the adversary produced illegal round graphs"
        )
    return ThresholdProfile(n=n, times=tuple(times))


def compare_profiles(
    profiles: Dict[str, ThresholdProfile]
) -> List[tuple]:
    """Rows ``(k, t*_k per profile...)`` for tabulation."""
    if not profiles:
        return []
    ns = {p.n for p in profiles.values()}
    if len(ns) != 1:
        raise ValueError(f"profiles span different n: {sorted(ns)}")
    n = ns.pop()
    rows = []
    for k in range(1, n + 1):
        rows.append((k, *[p.time_for(k) for p in profiles.values()]))
    return rows
