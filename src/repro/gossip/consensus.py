"""Heard-of-model reductions: rooted trees vs nonsplit graphs.

Charron-Bost, Függer, Nowak [1] prove that ``n - 1`` rounds of rooted
trees can simulate one round of a nonsplit graph; composing any ``n - 1``
tree round graphs therefore yields a nonsplit graph (Lemma N).  Combined
with the ``O(log log n)`` nonsplit radius of Függer, Nowak, Winkler [9],
this gave the pre-paper ``O(n log log n)`` upper bound.

This module makes the reduction executable: block a tree sequence into
``n - 1``-round windows, compose each window, and check nonsplitness.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.product import is_nonsplit, product_of_trees
from repro.errors import DimensionMismatchError
from repro.trees.rooted_tree import RootedTree


def simulate_nonsplit_rounds(
    trees: Sequence[RootedTree], n: int
) -> List[np.ndarray]:
    """Compose consecutive ``n - 1``-round blocks of a tree sequence.

    Returns one adjacency matrix per complete block (a trailing partial
    block is ignored).  By [1], every returned matrix is nonsplit --
    verified by property tests via :func:`blocks_are_nonsplit`.
    """
    if n < 2:
        raise DimensionMismatchError("nonsplit simulation needs n >= 2")
    block_len = n - 1
    blocks: List[np.ndarray] = []
    for start in range(0, len(trees) - block_len + 1, block_len):
        window = list(trees[start : start + block_len])
        blocks.append(product_of_trees(window))
    return blocks


def blocks_are_nonsplit(trees: Sequence[RootedTree], n: int) -> bool:
    """True iff every complete ``n - 1``-round block composes nonsplit."""
    return all(is_nonsplit(b) for b in simulate_nonsplit_rounds(trees, n))


def nonsplit_block_count(total_rounds: int, n: int) -> int:
    """How many complete nonsplit rounds ``total_rounds`` tree rounds yield."""
    if n < 2:
        return 0
    return total_rounds // (n - 1)


def common_in_neighbor(a: np.ndarray, x: int, y: int) -> int:
    """A witness common in-neighbor of ``x`` and ``y`` (or ``-1``).

    Columns of the matrix are heard-of sets, so a common in-neighbor is a
    row with ones in both columns.
    """
    both = np.nonzero(np.asarray(a, dtype=np.bool_)[:, x] & np.asarray(a, dtype=np.bool_)[:, y])[0]
    return int(both[0]) if len(both) else -1
