"""Extensions beyond broadcast (the paper's Section 5 future work).

* :mod:`~repro.gossip.gossip` -- all-to-all dissemination (gossip) time
  under the same dynamic-rooted-tree adversaries;
* :mod:`~repro.gossip.consensus` -- heard-of-model helpers: the nonsplit
  reduction of Charron-Bost, Függer, Nowak [1] (``n - 1`` tree rounds
  simulate one nonsplit round) as executable checks.
"""

from repro.gossip.gossip import (
    GossipResult,
    gossip_time_adversary,
    gossip_time_sequence,
)
from repro.gossip.consensus import (
    blocks_are_nonsplit,
    nonsplit_block_count,
    simulate_nonsplit_rounds,
)
from repro.gossip.threshold import (
    ThresholdProfile,
    compare_profiles,
    threshold_profile_adversary,
    threshold_profile_sequence,
)

__all__ = [
    "GossipResult",
    "gossip_time_sequence",
    "gossip_time_adversary",
    "blocks_are_nonsplit",
    "nonsplit_block_count",
    "simulate_nonsplit_rounds",
    "ThresholdProfile",
    "threshold_profile_sequence",
    "threshold_profile_adversary",
    "compare_profiles",
]
