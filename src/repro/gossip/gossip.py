"""Gossip (all-to-all dissemination) over dynamic rooted trees.

The paper suggests (Section 5) extending the matrix perspective to
gossiping.  Gossip time is the first round at which *every* pair has
communicated: the product graph is all-ones -- every row full, not just
one.  Trivially ``t*_broadcast <= t*_gossip``.

A structural fact this harness demonstrates (E7): unlike broadcast,
**gossip time is unbounded** under adversarial rooted trees.  Rooted
trees force progress only for the root's row (Lemma R); a static path
leaves its last node with no out-edges forever, so that node never
reaches anyone else and gossip never completes.  Gossip is therefore
measured against *benign* (random / rotating) adversaries, and the run
driver reports truncation as a legitimate outcome rather than an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.bounds import trivial_upper_bound
from repro.core.state import BroadcastState
from repro.errors import AdversaryError
from repro.trees.rooted_tree import RootedTree
from repro.types import AdversaryProtocol, validate_node_count


@dataclass(frozen=True)
class GossipResult:
    """Outcome of a gossip run.

    Attributes
    ----------
    n: number of processes.
    broadcast_time: first round some process reached everyone.
    gossip_time: first round every process reached everyone.
    """

    n: int
    broadcast_time: Optional[int]
    gossip_time: Optional[int]

    @property
    def completed(self) -> bool:
        """True iff gossip finished within the run."""
        return self.gossip_time is not None

    @property
    def gap(self) -> Optional[int]:
        """``gossip_time - broadcast_time`` when both are known."""
        if self.broadcast_time is None or self.gossip_time is None:
            return None
        return self.gossip_time - self.broadcast_time


def _is_gossip_complete(state: BroadcastState) -> bool:
    return bool(state.reach_matrix_view().all())


def gossip_time_sequence(
    trees: Sequence[RootedTree], n: Optional[int] = None
) -> GossipResult:
    """Broadcast and gossip times of an explicit tree sequence."""
    if n is None:
        if not trees:
            raise AdversaryError("cannot infer n from an empty sequence")
        n = trees[0].n
    validate_node_count(n)
    state = BroadcastState.initial(n)
    broadcast_t: Optional[int] = None
    gossip_t: Optional[int] = None
    for i, tree in enumerate(trees, start=1):
        state.apply_tree_inplace(tree)
        if broadcast_t is None and state.is_broadcast_complete():
            broadcast_t = i
        if _is_gossip_complete(state):
            gossip_t = i
            break
    return GossipResult(n=n, broadcast_time=broadcast_t, gossip_time=gossip_t)


def gossip_time_adversary(
    adversary: AdversaryProtocol,
    n: int,
    max_rounds: Optional[int] = None,
) -> GossipResult:
    """Drive an adversary until gossip completes or the cap is reached.

    The cap defaults to ``2 n²``.  Unlike broadcast, hitting the cap is a
    *legitimate* outcome -- an adversary can prevent gossip forever (see
    the module docstring) -- so a truncated :class:`GossipResult` with
    ``gossip_time=None`` is returned instead of raising.
    """
    validate_node_count(n)
    cap = max_rounds if max_rounds is not None else 2 * trivial_upper_bound(n)
    adversary.reset()
    state = BroadcastState.initial(n)
    broadcast_t: Optional[int] = None
    t = 0
    while not _is_gossip_complete(state):
        if t >= cap:
            return GossipResult(
                n=n, broadcast_time=broadcast_t, gossip_time=None
            )
        t += 1
        tree = adversary.next_tree(state, t)
        state.apply_tree_inplace(tree)
        if broadcast_t is None and state.is_broadcast_complete():
            broadcast_t = t
    return GossipResult(n=n, broadcast_time=broadcast_t, gossip_time=t)
