"""Immutable rooted labeled trees with parent-pointer representation.

A :class:`RootedTree` over ``n`` nodes stores ``parents``, a tuple where
``parents[v]`` is the parent of node ``v`` and the root points to itself.
Edges are directed **parent -> child**: this is the orientation under which a
static rooted tree broadcasts from the root in ``depth`` rounds, matching the
paper's footnote ("the rooted tree ensures broadcast in a finite number of
rounds") and its static-path example with broadcast time ``n - 1``.

Self-loops required by the model (Section 2) are *not* stored here; the
broadcast state composition adds them implicitly (information is never
forgotten).
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import InvalidTreeError
from repro.types import Edge, ParentArray, validate_node_count


class RootedTree:
    """A rooted labeled tree over nodes ``0 .. n-1``.

    Parameters
    ----------
    parents:
        Sequence of length ``n`` where ``parents[v]`` is the parent of node
        ``v``.  The root must satisfy ``parents[root] == root``.  ``-1`` is
        accepted as an alias for "self" to ease construction from external
        formats.

    Raises
    ------
    InvalidTreeError
        If the array does not describe a single tree spanning all nodes
        (multiple roots, cycles, out-of-range entries, ...).
    """

    __slots__ = ("_parents", "_root", "_n", "__dict__")

    def __init__(self, parents: Sequence[int]) -> None:
        n = validate_node_count(len(parents))
        normalized: List[int] = []
        roots: List[int] = []
        for v, p in enumerate(parents):
            p = int(p)
            if p == -1:
                p = v
            if not 0 <= p < n:
                raise InvalidTreeError(
                    f"parent of node {v} is {p}, outside range(0, {n})"
                )
            if p == v:
                roots.append(v)
            normalized.append(p)
        if len(roots) != 1:
            raise InvalidTreeError(
                f"a rooted tree needs exactly one root, found {len(roots)}: {roots}"
            )
        self._parents: ParentArray = tuple(normalized)
        self._root: int = roots[0]
        self._n: int = n
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        """Verify every node reaches the root by following parent pointers."""
        n = self._n
        state = [0] * n  # 0 = unvisited, 1 = on current path, 2 = done
        state[self._root] = 2
        for start in range(n):
            if state[start]:
                continue
            path: List[int] = []
            v = start
            while state[v] == 0:
                state[v] = 1
                path.append(v)
                v = self._parents[v]
            if state[v] == 1:
                raise InvalidTreeError(
                    f"cycle detected through node {v}; not a rooted tree"
                )
            for u in path:
                state[u] = 2

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def root(self) -> int:
        """The unique root node."""
        return self._root

    @property
    def parents(self) -> ParentArray:
        """Parent array; ``parents[root] == root``."""
        return self._parents

    def parent(self, v: int) -> int:
        """Parent of ``v`` (the root is its own parent)."""
        return self._parents[v]

    @cached_property
    def children_lists(self) -> Tuple[Tuple[int, ...], ...]:
        """``children_lists[v]`` = sorted tuple of children of ``v``."""
        buckets: List[List[int]] = [[] for _ in range(self._n)]
        for v, p in enumerate(self._parents):
            if v != p:
                buckets[p].append(v)
        return tuple(tuple(sorted(b)) for b in buckets)

    def children(self, v: int) -> Tuple[int, ...]:
        """Children of node ``v``."""
        return self.children_lists[v]

    def edges(self) -> Tuple[Edge, ...]:
        """All ``(parent, child)`` edges, excluding self-loops."""
        return tuple(
            (p, v) for v, p in enumerate(self._parents) if v != p
        )

    @cached_property
    def leaves(self) -> Tuple[int, ...]:
        """Nodes without children.

        Note that by this definition a single-node tree's root is a leaf.
        """
        kids = self.children_lists
        return tuple(v for v in range(self._n) if not kids[v])

    @cached_property
    def inner_nodes(self) -> Tuple[int, ...]:
        """Nodes with at least one child (complement of :attr:`leaves`)."""
        kids = self.children_lists
        return tuple(v for v in range(self._n) if kids[v])

    @cached_property
    def depths(self) -> Tuple[int, ...]:
        """``depths[v]`` = distance from the root to ``v``."""
        depth = [-1] * self._n
        depth[self._root] = 0
        order = self.topological_order()
        for v in order:
            if v == self._root:
                continue
            depth[v] = depth[self._parents[v]] + 1
        return tuple(depth)

    @cached_property
    def height(self) -> int:
        """Maximum depth over all nodes (0 for a single node)."""
        return max(self.depths)

    def degree(self, v: int) -> int:
        """Number of children of ``v`` (out-degree, loops excluded)."""
        return len(self.children_lists[v])

    # ------------------------------------------------------------------
    # Traversals and structural queries
    # ------------------------------------------------------------------

    def topological_order(self) -> Tuple[int, ...]:
        """Nodes ordered root-first (every parent precedes its children)."""
        order: List[int] = [self._root]
        kids = self.children_lists
        i = 0
        while i < len(order):
            order.extend(kids[order[i]])
            i += 1
        return tuple(order)

    def subtree_nodes(self, v: int) -> frozenset:
        """The set of nodes in the complete subtree rooted at ``v``."""
        stack = [v]
        seen = set()
        kids = self.children_lists
        while stack:
            u = stack.pop()
            seen.add(u)
            stack.extend(kids[u])
        return frozenset(seen)

    def subtree_sizes(self) -> Tuple[int, ...]:
        """``sizes[v]`` = number of nodes in the subtree rooted at ``v``."""
        sizes = [1] * self._n
        for v in reversed(self.topological_order()):
            if v != self._root:
                sizes[self._parents[v]] += sizes[v]
        return tuple(sizes)

    def path_to_root(self, v: int) -> Tuple[int, ...]:
        """Nodes on the path ``v -> ... -> root`` inclusive."""
        path = [v]
        while path[-1] != self._root:
            path.append(self._parents[path[-1]])
        return tuple(path)

    def is_ancestor(self, a: int, d: int) -> bool:
        """True if ``a`` is an ancestor of ``d`` (every node is its own)."""
        v = d
        while True:
            if v == a:
                return True
            if v == self._root:
                return False
            v = self._parents[v]

    def is_path(self) -> bool:
        """True if the tree is a directed path (every node <= 1 child)."""
        return all(len(c) <= 1 for c in self.children_lists)

    def is_star(self) -> bool:
        """True if every non-root node is a child of the root."""
        return all(
            p == self._root for v, p in enumerate(self._parents) if v != self._root
        )

    def leaf_count(self) -> int:
        """Number of leaves (see :attr:`leaves`)."""
        return len(self.leaves)

    def inner_count(self) -> int:
        """Number of inner (non-leaf) nodes."""
        return self._n - self.leaf_count()

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def relabel(self, mapping: Sequence[int]) -> "RootedTree":
        """Return the tree with node ``v`` renamed to ``mapping[v]``.

        ``mapping`` must be a permutation of ``range(n)``.
        """
        if sorted(mapping) != list(range(self._n)):
            raise InvalidTreeError("relabel mapping must be a permutation of range(n)")
        new_parents = [0] * self._n
        for v, p in enumerate(self._parents):
            new_parents[mapping[v]] = mapping[p]
        return RootedTree(new_parents)

    def rerooted_at(self, new_root: int) -> "RootedTree":
        """Return the same undirected tree re-rooted at ``new_root``.

        Edges on the old ``new_root -> root`` path are reversed; all other
        parent pointers are preserved.
        """
        if new_root == self._root:
            return self
        chain = self.path_to_root(new_root)
        new_parents = list(self._parents)
        for child, parent in zip(chain, chain[1:]):
            new_parents[parent] = child
        new_parents[new_root] = new_root
        return RootedTree(new_parents)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def to_adjacency(self, include_self_loops: bool = True) -> np.ndarray:
        """Boolean adjacency matrix ``A[x, y] = (x -> y is an edge)``.

        With ``include_self_loops=True`` (default) the matrix is the round
        graph of the model: tree edges plus the diagonal.
        """
        a = np.zeros((self._n, self._n), dtype=np.bool_)
        for p, c in self.edges():
            a[p, c] = True
        if include_self_loops:
            np.fill_diagonal(a, True)
        return a

    @cached_property
    def _parent_np(self) -> np.ndarray:
        arr = np.asarray(self._parents, dtype=np.int64)
        arr.setflags(write=False)
        return arr

    def parent_array_numpy(self) -> np.ndarray:
        """Parent array as an ``int64`` numpy vector (root points to itself).

        The array is cached and read-only (the tree is immutable); copy it
        if you need to mutate.
        """
        return self._parent_np

    def to_networkx(self):
        """Convert to a ``networkx.DiGraph`` with parent->child edges."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, graph) -> "RootedTree":
        """Build a tree from a ``networkx.DiGraph`` of parent->child edges.

        Nodes must be exactly ``0 .. n-1``; each node must have in-degree 1
        except a single root with in-degree 0.
        """
        n = graph.number_of_nodes()
        if sorted(graph.nodes) != list(range(n)):
            raise InvalidTreeError("graph nodes must be exactly range(n)")
        parents = [-1] * n
        for p, c in graph.edges:
            if parents[c] != -1:
                raise InvalidTreeError(f"node {c} has more than one parent")
            parents[c] = p
        roots = [v for v in range(n) if parents[v] == -1]
        if len(roots) != 1:
            raise InvalidTreeError(
                f"expected exactly one root (in-degree 0), found {len(roots)}"
            )
        parents[roots[0]] = roots[0]
        return cls(parents)

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Edge]) -> "RootedTree":
        """Build a tree from ``(parent, child)`` pairs over ``n`` nodes."""
        parents = [-1] * n
        for p, c in edges:
            if not (0 <= p < n and 0 <= c < n):
                raise InvalidTreeError(f"edge ({p}, {c}) out of range for n={n}")
            if parents[c] != -1:
                raise InvalidTreeError(f"node {c} has more than one parent")
            parents[c] = p
        roots = [v for v in range(n) if parents[v] == -1]
        if len(roots) != 1:
            raise InvalidTreeError(
                f"expected exactly one root (no incoming edge), found {len(roots)}"
            )
        parents[roots[0]] = roots[0]
        return cls(parents)

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RootedTree):
            return NotImplemented
        return self._parents == other._parents

    def __hash__(self) -> int:
        return hash(self._parents)

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __repr__(self) -> str:
        return f"RootedTree(parents={list(self._parents)}, root={self._root})"

    def describe(self) -> str:
        """A short human-readable structural summary."""
        return (
            f"RootedTree(n={self._n}, root={self._root}, "
            f"height={self.height}, leaves={self.leaf_count()})"
        )

    def ascii_art(self) -> str:
        """Render the tree as indented ASCII, one node per line."""
        lines: List[str] = []
        kids = self.children_lists

        def walk(v: int, prefix: str, is_last: bool) -> None:
            connector = "" if v == self._root else ("`-- " if is_last else "|-- ")
            lines.append(prefix + connector + str(v))
            child_prefix = prefix if v == self._root else (
                prefix + ("    " if is_last else "|   ")
            )
            cs = kids[v]
            for i, c in enumerate(cs):
                walk(c, child_prefix, i == len(cs) - 1)

        walk(self._root, "", True)
        return "\n".join(lines)


def degree_histogram(tree: RootedTree) -> Dict[int, int]:
    """Histogram mapping out-degree -> number of nodes with that degree."""
    hist: Dict[int, int] = {}
    for v in range(tree.n):
        d = tree.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist
