"""Canonical forms and isomorphism for rooted trees.

The exact game solver canonicalizes *states* (boolean matrices); trees are
canonicalized here mainly for reporting -- e.g. "which tree *shapes* does an
optimal adversary use?" -- via the classic AHU (Aho-Hopcroft-Ullman)
signature, which is a complete invariant for rooted-tree isomorphism.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.trees.rooted_tree import RootedTree


def ahu_signature(tree: RootedTree) -> str:
    """The AHU canonical string of the rooted tree.

    Two rooted trees are isomorphic (ignoring labels, respecting the root)
    iff their signatures are equal.  A leaf is ``"()"``; an inner node wraps
    the sorted signatures of its children.
    """
    sig: Dict[int, str] = {}
    for v in reversed(tree.topological_order()):
        kids = tree.children(v)
        if not kids:
            sig[v] = "()"
        else:
            sig[v] = "(" + "".join(sorted(sig[c] for c in kids)) + ")"
    return sig[tree.root]


def are_isomorphic(a: RootedTree, b: RootedTree) -> bool:
    """Rooted-tree isomorphism test via AHU signatures."""
    if a.n != b.n:
        return False
    return ahu_signature(a) == ahu_signature(b)


def shape_profile(tree: RootedTree) -> Tuple[int, int, int, int]:
    """A cheap (incomplete) shape fingerprint for bucketing trees.

    Returns ``(height, leaf_count, max_degree, spine_length)`` where
    *spine_length* is the number of nodes with exactly one child.  Useful
    for summarizing which families a search-based adversary plays.
    """
    max_degree = max((tree.degree(v) for v in range(tree.n)), default=0)
    spine = sum(1 for v in range(tree.n) if tree.degree(v) == 1)
    return (tree.height, tree.leaf_count(), max_degree, spine)


def classify_shape(tree: RootedTree) -> str:
    """Label the tree with the coarse family name used in reports.

    One of ``"singleton"``, ``"path"``, ``"star"``, ``"broom"``,
    ``"caterpillar"``, ``"spider"``, or ``"other"``.  The classification is
    heuristic but deterministic; it exists for adversary-behaviour reports,
    not for correctness-critical logic.
    """
    n = tree.n
    if n == 1:
        return "singleton"
    if tree.is_path():
        return "path"
    if tree.is_star():
        return "star"
    kids = tree.children_lists
    branching = [v for v in range(n) if len(kids[v]) >= 2]
    if len(branching) == 1:
        b = branching[0]
        if all(not kids[c] for c in kids[b]):
            # The single branch point fans into leaves only: broom if the
            # branch point ends a path from the root.
            return "broom"
        if all(_is_chain(tree, c) for c in kids[b]):
            return "spider"
        return "other"
    # Caterpillar: removing all leaves leaves a path.
    inner = [v for v in range(n) if kids[v]]
    if inner and all(
        sum(1 for c in kids[v] if kids[c]) <= 1 for v in inner
    ):
        return "caterpillar"
    return "other"


def _is_chain(tree: RootedTree, v: int) -> bool:
    """True if the subtree under ``v`` is a directed path."""
    while True:
        kids = tree.children(v)
        if not kids:
            return True
        if len(kids) > 1:
            return False
        v = kids[0]
