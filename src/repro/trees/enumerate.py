"""Exhaustive enumeration of rooted labeled trees for small ``n``.

The adversary's per-round choice set is ``T_n``, the set of all rooted
labeled trees over ``[n]`` -- there are ``n^(n-1)`` of them (Cayley).  The
exact game solver (``repro.adversaries.exact``) iterates over this set at
every state, so enumeration is only practical for small ``n``:

====  ==========
 n    |T_n|
====  ==========
 2    2
 3    9
 4    64
 5    625
 6    7776
 7    117649
====  ==========

Enumeration goes through all parent arrays directly (each node picks a
parent or is the root), with a union-find acyclicity filter; this is simpler
and faster than decoding all Prüfer/root pairs for the sizes we care about.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Iterator, List, Optional

import numpy as np

from repro.errors import SearchBudgetExceeded
from repro.trees.rooted_tree import RootedTree
from repro.types import validate_node_count

#: Enumerating beyond this size is (deliberately) refused: n^(n-1) explodes.
MAX_ENUMERABLE_N = 8


def count_rooted_trees(n: int) -> int:
    """Number of rooted labeled trees on ``n`` nodes: ``n^(n-1)``."""
    validate_node_count(n)
    return n ** (n - 1)


def all_rooted_trees(n: int, limit: Optional[int] = None) -> Iterator[RootedTree]:
    """Yield every rooted labeled tree on ``n`` nodes exactly once.

    Parameters
    ----------
    n:
        Node count; must be <= :data:`MAX_ENUMERABLE_N`.
    limit:
        Optional hard cap on the number of trees yielded; exceeding the cap
        raises :class:`SearchBudgetExceeded`.  Useful for "first few" tests.

    Yields
    ------
    RootedTree
        Trees in lexicographic order of their parent arrays (with each
        node's "self" parent encoding the root).
    """
    validate_node_count(n)
    if n > MAX_ENUMERABLE_N:
        raise SearchBudgetExceeded(
            f"refusing to enumerate {n}^{n - 1} = {count_rooted_trees(n)} trees; "
            f"max supported n is {MAX_ENUMERABLE_N}"
        )
    yielded = 0
    for parents in iter_product(range(n), repeat=n):
        if not _is_tree_parent_array(parents, n):
            continue
        if limit is not None and yielded >= limit:
            raise SearchBudgetExceeded(
                f"enumeration limit {limit} exceeded for n={n}", yielded
            )
        yielded += 1
        yield RootedTree(parents)


def _is_tree_parent_array(parents: tuple, n: int) -> bool:
    """Fast check that a parent tuple encodes a rooted tree.

    Exactly one fixed point (the root) and no cycles elsewhere.
    """
    root = -1
    for v in range(n):
        if parents[v] == v:
            if root != -1:
                return False
            root = v
    if root == -1:
        return False
    # Follow parent pointers; every node must reach the root.
    state = [0] * n  # 0 unvisited, 1 on path, 2 ok
    state[root] = 2
    for start in range(n):
        if state[start]:
            continue
        path: List[int] = []
        v = start
        while state[v] == 0:
            state[v] = 1
            path.append(v)
            v = parents[v]
        if state[v] == 1:
            return False
        for u in path:
            state[u] = 2
    return True


def all_parent_arrays(n: int) -> Iterator[tuple]:
    """Yield the raw parent tuples of all rooted trees on ``n`` nodes.

    Lighter-weight companion to :func:`all_rooted_trees` for hot loops that
    do not need :class:`RootedTree` objects (e.g. the exact solver's
    successor generation).
    """
    validate_node_count(n)
    if n > MAX_ENUMERABLE_N:
        raise SearchBudgetExceeded(
            f"refusing to enumerate {count_rooted_trees(n)} parent arrays "
            f"(n={n} > {MAX_ENUMERABLE_N})"
        )
    for parents in iter_product(range(n), repeat=n):
        if _is_tree_parent_array(parents, n):
            yield parents


def random_tree_uniform(
    n: int, rng: Optional[np.random.Generator] = None
) -> RootedTree:
    """Uniform sample from all ``n^(n-1)`` rooted labeled trees.

    Rejection-free: uniform Prüfer sequence + independent uniform root.
    Equivalent to :func:`repro.trees.generators.random_tree`; re-exported
    here so enumeration and sampling live side by side.
    """
    from repro.trees.generators import random_tree

    return random_tree(n, rng=rng)
