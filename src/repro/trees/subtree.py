"""Complete-subtree closure machinery: the stalling characterization.

The paper's matrix-evolution analysis hinges on when a node's reach set can
avoid growing.  With round graph = rooted tree + self-loops and reach set
``R_x`` (row ``x`` of the product graph), composing with tree ``T`` gives

    R'_x = R_x ∪ { child c of T : parent_T(c) ∈ R_x }.

So ``x`` *stalls* (gains nothing) iff ``R_x`` is closed under T's
parent->child edges, i.e. iff ``R_x`` is a **union of complete subtrees** of
``T`` (Lemma S in DESIGN.md).  Two corollaries this module also exposes:

* the chosen **root always gains** while unfinished (Lemma R): a
  child-closed set containing the root is all of ``[n]``;
* at least one new product-graph edge appears per round (Section 2's
  ``t* <= n^2`` remark) -- the root's row grows.

The functions here are deliberately implemented two independent ways
(closure-based and subtree-decomposition-based) and cross-checked by
property tests.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, List, Set

import numpy as np

from repro.trees.rooted_tree import RootedTree


def closure_under_children(tree: RootedTree, nodes: Iterable[int]) -> FrozenSet[int]:
    """Smallest superset of ``nodes`` closed under T's parent->child edges.

    Equivalently: the union of the complete subtrees rooted at ``nodes``.
    """
    stack: List[int] = list(nodes)
    seen: Set[int] = set(stack)
    while stack:
        v = stack.pop()
        for c in tree.children(v):
            if c not in seen:
                seen.add(c)
                stack.append(c)
    return frozenset(seen)


def is_union_of_subtrees(tree: RootedTree, nodes: AbstractSet[int]) -> bool:
    """True iff ``nodes`` is a union of complete subtrees of ``tree``.

    Implementation: a set is a union of complete subtrees iff it is closed
    under children (if ``v`` is in the set, so is every child of ``v``).
    """
    node_set = set(nodes)
    return all(c in node_set for v in node_set for c in tree.children(v))


def is_union_of_subtrees_by_decomposition(
    tree: RootedTree, nodes: AbstractSet[int]
) -> bool:
    """Independent re-implementation of :func:`is_union_of_subtrees`.

    Greedily peels maximal subtrees: every member whose parent is outside
    the set must root a complete subtree contained in the set.  Kept as a
    separate code path purely for cross-validation in property tests.
    """
    node_set = set(nodes)
    tops = [
        v
        for v in node_set
        if v == tree.root or tree.parent(v) not in node_set
    ]
    covered: Set[int] = set()
    for top in tops:
        sub = tree.subtree_nodes(top)
        if not sub <= node_set:
            return False
        covered |= sub
    return covered == node_set


def stalled_nodes(tree: RootedTree, reach: np.ndarray) -> FrozenSet[int]:
    """Nodes whose reach row would not grow when composing with ``tree``.

    Parameters
    ----------
    tree:
        The round's rooted tree.
    reach:
        Boolean matrix; ``reach[x, y]`` true iff ``x`` has reached ``y``.

    Returns
    -------
    frozenset of nodes ``x`` with ``R'_x == R_x``.  Note a node that has
    already finished (full row) is trivially stalled.
    """
    n = tree.n
    if reach.shape != (n, n):
        raise ValueError(
            f"reach matrix shape {reach.shape} does not match tree over n={n}"
        )
    parent = tree.parent_array_numpy()
    # gain[x, c] is true iff c is a fresh gain for x through edge parent->c.
    gains = reach[:, parent] & ~reach
    # The root's column in reach[:, parent] is reach[:, root] which equals
    # reach[:, root]; gains[x, root] = reach[x, root] & ~reach[x, root] = 0,
    # so the root-parent self-pointer contributes nothing (correct: the only
    # in-edge of the root is its self-loop).
    stalled_mask = ~gains.any(axis=1)
    return frozenset(int(v) for v in np.nonzero(stalled_mask)[0])


def growing_nodes(tree: RootedTree, reach: np.ndarray) -> FrozenSet[int]:
    """Complement of :func:`stalled_nodes` over ``range(n)``."""
    st = stalled_nodes(tree, reach)
    return frozenset(range(tree.n)) - st


def root_always_gains(tree: RootedTree, reach: np.ndarray) -> bool:
    """Check Lemma R on one configuration.

    Returns True iff the tree's root either already has a full reach row or
    strictly gains when composing with ``tree``.  This must hold for every
    reflexive reach matrix; property tests assert it.
    """
    r = tree.root
    row = reach[r]
    if row.all():
        return True
    return r not in stalled_nodes(tree, reach)


def maximal_stallable_family(tree: RootedTree) -> List[FrozenSet[int]]:
    """All complete subtrees of ``tree``, as the building blocks of
    stallable sets.

    A set is stallable under ``tree`` iff it is a union of members of this
    family; returned in root-first order.
    """
    return [tree.subtree_nodes(v) for v in tree.topological_order()]


def stalling_tree_exists(n: int, reach_row: AbstractSet[int]) -> bool:
    """Can *some* rooted tree stall a node with this reach row?

    A proper subset ``R`` of ``[n]`` containing the node is stallable by any
    tree rooted outside ``R`` whose members' children stay inside ``R`` --
    always constructible unless ``R = [n]``: root the tree at any node
    outside ``R``, hang ``R``'s nodes as a chain below some member of
    ``R``... in fact hanging all of ``R`` as a subtree below the root works.
    Hence the answer is simply ``len(R) < n`` (or trivially True when the
    node has finished and no growth is possible anyway).
    """
    if len(reach_row) >= n:
        return True  # finished row: nothing left to gain, stalled under any tree
    return True  # any proper subset is stallable; kept explicit for readability
