"""Generators for named rooted-tree families.

These are the shapes the broadcast literature keeps reaching for:

* **paths** -- the adversary's basic delaying tool (a static path yields the
  ``n - 1`` broadcast time quoted in Section 2 of the paper);
* **stars** -- the fastest tree (the root finishes in one round);
* **brooms / caterpillars / spiders** -- interpolations between the two,
  used by restricted-adversary constructions in Zeiner et al. [14];
* **k-leaf and k-inner-node trees** -- the families of Figure 1's
  ``O(kn)`` rows;
* **random trees** -- uniform over labeled trees via Prüfer sequences.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import InvalidTreeError
from repro.trees.rooted_tree import RootedTree
from repro.types import validate_node_count


def path_from_order(order: Sequence[int]) -> RootedTree:
    """Directed path ``order[0] -> order[1] -> ... -> order[-1]``.

    ``order`` must be a permutation of ``range(n)``; ``order[0]`` is the root.
    """
    n = len(order)
    if sorted(order) != list(range(n)):
        raise InvalidTreeError("path order must be a permutation of range(n)")
    parents = [0] * n
    parents[order[0]] = order[0]
    for a, b in zip(order, order[1:]):
        parents[b] = a
    return RootedTree(parents)


def path(n: int) -> RootedTree:
    """The identity path ``0 -> 1 -> ... -> n-1`` (root 0)."""
    validate_node_count(n)
    return path_from_order(list(range(n)))


def reversed_path(n: int) -> RootedTree:
    """The path ``n-1 -> n-2 -> ... -> 0`` (root ``n-1``)."""
    validate_node_count(n)
    return path_from_order(list(range(n - 1, -1, -1)))


def star(n: int, center: int = 0) -> RootedTree:
    """A star: every node other than ``center`` is a child of ``center``.

    The root broadcasts in a single round, so stars are the adversary's
    worst choice -- useful as a fast baseline and in tests.
    """
    validate_node_count(n)
    parents = [center] * n
    parents[center] = center
    return RootedTree(parents)


def broom(n: int, handle_length: int, root: int = 0) -> RootedTree:
    """A broom: a path of ``handle_length`` nodes ending in a star.

    Nodes ``root = h_0 -> h_1 -> ... -> h_{handle_length-1}`` form the
    handle (using the smallest available labels in order) and every
    remaining node hangs off the last handle node.

    ``handle_length = n`` degenerates to a path, ``handle_length = 1`` to a
    star.
    """
    validate_node_count(n)
    if not 1 <= handle_length <= n:
        raise InvalidTreeError(
            f"handle_length must be in [1, n]; got {handle_length} for n={n}"
        )
    labels = [root] + [v for v in range(n) if v != root]
    handle = labels[:handle_length]
    bristles = labels[handle_length:]
    parents = [0] * n
    parents[root] = root
    for a, b in zip(handle, handle[1:]):
        parents[b] = a
    for v in bristles:
        parents[v] = handle[-1]
    return RootedTree(parents)


def caterpillar(n: int, spine: Sequence[int]) -> RootedTree:
    """A caterpillar: a directed spine path with all other nodes as legs.

    Legs are distributed round-robin along the spine, so every spine node
    gets roughly the same number of legs.
    """
    validate_node_count(n)
    spine = list(spine)
    if len(set(spine)) != len(spine) or not spine:
        raise InvalidTreeError("spine must be a non-empty sequence of distinct nodes")
    for v in spine:
        if not 0 <= v < n:
            raise InvalidTreeError(f"spine node {v} out of range for n={n}")
    legs = [v for v in range(n) if v not in set(spine)]
    parents = [0] * n
    parents[spine[0]] = spine[0]
    for a, b in zip(spine, spine[1:]):
        parents[b] = a
    for i, v in enumerate(legs):
        parents[v] = spine[i % len(spine)]
    return RootedTree(parents)


def spider(n: int, legs: int, center: int = 0) -> RootedTree:
    """A spider: ``legs`` directed paths of near-equal length from ``center``."""
    validate_node_count(n)
    if legs < 1:
        raise InvalidTreeError(f"a spider needs at least one leg, got {legs}")
    others = [v for v in range(n) if v != center]
    legs = min(legs, max(1, len(others)))
    parents = [0] * n
    parents[center] = center
    chains: List[List[int]] = [[] for _ in range(legs)]
    for i, v in enumerate(others):
        chains[i % legs].append(v)
    for chain in chains:
        prev = center
        for v in chain:
            parents[v] = prev
            prev = v
    return RootedTree(parents)


def binary_tree(n: int) -> RootedTree:
    """The complete binary tree in heap order (node ``v`` has parent
    ``(v-1)//2``)."""
    validate_node_count(n)
    parents = [max(0, (v - 1) // 2) for v in range(n)]
    parents[0] = 0
    return RootedTree(parents)


def k_leaf_tree(n: int, k: int, root: int = 0) -> RootedTree:
    """A tree with exactly ``k`` leaves: a spider with ``k`` legs.

    The restricted-adversary setting of [14] (Figure 1's "k leaves" row)
    allows only trees with ``k`` leaves in every round; spiders with ``k``
    legs are the canonical members of that family.

    For ``n = 1`` the single node is a leaf, so only ``k = 1`` is valid.
    """
    validate_node_count(n)
    if n == 1:
        if k != 1:
            raise InvalidTreeError("a single-node tree has exactly one leaf")
        return RootedTree([0])
    if not 1 <= k <= n - 1:
        raise InvalidTreeError(f"k leaves requires 1 <= k <= n-1; got k={k}, n={n}")
    tree = spider(n, k, center=root)
    if tree.leaf_count() != k:
        raise InvalidTreeError(
            f"internal error: spider produced {tree.leaf_count()} leaves, wanted {k}"
        )
    return tree


def k_inner_tree(n: int, k: int, root: int = 0) -> RootedTree:
    """A tree with exactly ``k`` inner (non-leaf) nodes: a short-handled broom.

    The restricted-adversary setting of [14] (Figure 1's "k inner nodes"
    row) allows only trees whose inner-node count is ``k``.  A broom whose
    handle has ``k`` nodes has exactly ``k`` inner nodes (each handle node
    has a child).
    """
    validate_node_count(n)
    if n == 1:
        if k != 0:
            raise InvalidTreeError("a single-node tree has zero inner nodes")
        return RootedTree([0])
    if not 1 <= k <= n - 1:
        raise InvalidTreeError(f"k inner nodes requires 1 <= k <= n-1; got k={k}, n={n}")
    tree = broom(n, k, root=root)
    if tree.inner_count() != k:
        raise InvalidTreeError(
            f"internal error: broom produced {tree.inner_count()} inner nodes, wanted {k}"
        )
    return tree


def chain_fan(
    n: int,
    start: int,
    chain_length: int,
    backward: bool = True,
    fan_at_tail: bool = False,
) -> RootedTree:
    """A cyclic chain with the remaining nodes fanned off it.

    The chain runs ``start, start±1, ..., start±chain_length (mod n)``
    (minus for ``backward=True``), directed away from ``start``; every node
    not on the chain hangs directly under ``start`` (or under the chain's
    last node when ``fan_at_tail``).

    This family is the workhorse of the lower-bound adversary: when reach
    sets are cyclic intervals, a backward chain freezes the intervals whose
    left endpoint sits just past the chain while extending the others by
    exactly one, and the fan placement picks which intervals pay for the
    round.  See ``repro.adversaries.zeiner.CyclicFamilyAdversary``.
    """
    validate_node_count(n)
    if not 0 <= chain_length <= n - 1:
        raise InvalidTreeError(
            f"chain_length must be in [0, n-1]; got {chain_length} for n={n}"
        )
    step = -1 if backward else 1
    chain = [(start + step * i) % n for i in range(chain_length + 1)]
    on_chain = [False] * n
    for v in chain:
        on_chain[v] = True
    parents = [0] * n
    parents[start] = start
    for a, b in zip(chain, chain[1:]):
        parents[b] = a
    anchor = chain[-1] if fan_at_tail else start
    for v in range(n):
        if not on_chain[v]:
            parents[v] = anchor
    return RootedTree(parents)


def rotated_path(n: int, start: int, backward: bool = False) -> RootedTree:
    """The cyclic path ``start, start±1, ..., (mod n)`` as a rooted tree."""
    validate_node_count(n)
    step = -1 if backward else 1
    return path_from_order([(start + step * i) % n for i in range(n)])


def random_tree(
    n: int,
    rng: Optional[np.random.Generator] = None,
    root: Optional[int] = None,
) -> RootedTree:
    """A uniformly random rooted labeled tree.

    Uniformity over all ``n^(n-1)`` rooted labeled trees follows from
    pairing a uniform Prüfer sequence (uniform over the ``n^(n-2)``
    unrooted labeled trees) with an independent uniform root choice.
    """
    validate_node_count(n)
    rng = rng if rng is not None else np.random.default_rng()
    if n == 1:
        return RootedTree([0])
    if root is None:
        root = int(rng.integers(n))
    if n == 2:
        parents = [root, root]
        return RootedTree(parents)
    from repro.trees.prufer import from_prufer

    seq = [int(x) for x in rng.integers(0, n, size=n - 2)]
    return from_prufer(seq, n=n, root=root)


def random_path(n: int, rng: Optional[np.random.Generator] = None) -> RootedTree:
    """A directed path through a uniformly random permutation of the nodes."""
    validate_node_count(n)
    rng = rng if rng is not None else np.random.default_rng()
    order = [int(v) for v in rng.permutation(n)]
    return path_from_order(order)
