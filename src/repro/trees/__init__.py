"""Rooted-tree substrate.

The adversary of the paper picks, in every round, a rooted labeled tree over
``[n]`` with edges directed parent -> child (a self-loop at every node is
added implicitly by the broadcast model, not stored here).

This subpackage provides:

* :class:`~repro.trees.rooted_tree.RootedTree` -- immutable parent-array
  representation with validation and structural queries;
* :mod:`~repro.trees.generators` -- named tree families (paths, stars,
  brooms, caterpillars, spiders, binary trees, random trees, k-leaf and
  k-inner-node families);
* :mod:`~repro.trees.prufer` -- Prüfer encoding/decoding of labeled trees;
* :mod:`~repro.trees.enumerate` -- exhaustive enumeration of all ``n^(n-1)``
  rooted labeled trees for small ``n`` (used by the exact game solver);
* :mod:`~repro.trees.canonical` -- AHU canonical forms and isomorphism tests;
* :mod:`~repro.trees.compile` -- memoized packed parent schedules for the
  executors' compiled fast path;
* :mod:`~repro.trees.subtree` -- complete-subtree closure machinery used by
  the stalling characterization (Lemma S in DESIGN.md).
"""

from repro.trees.rooted_tree import RootedTree
from repro.trees.generators import (
    binary_tree,
    broom,
    caterpillar,
    chain_fan,
    k_inner_tree,
    k_leaf_tree,
    path,
    path_from_order,
    random_tree,
    reversed_path,
    rotated_path,
    spider,
    star,
)
from repro.trees.prufer import from_prufer, to_prufer
from repro.trees.enumerate import (
    all_rooted_trees,
    count_rooted_trees,
    random_tree_uniform,
)
from repro.trees.canonical import ahu_signature, are_isomorphic
from repro.trees.compile import (
    clear_compile_cache,
    compile_cache_info,
    cycle_schedule,
    parent_row,
    sequence_schedule,
    static_schedule,
)
from repro.trees.subtree import (
    closure_under_children,
    is_union_of_subtrees,
    stalled_nodes,
)
from repro.trees.distance import (
    edge_jaccard_distance,
    parent_hamming,
    sequence_dynamicity,
)

__all__ = [
    "RootedTree",
    "path",
    "path_from_order",
    "reversed_path",
    "rotated_path",
    "star",
    "broom",
    "caterpillar",
    "chain_fan",
    "spider",
    "binary_tree",
    "random_tree",
    "k_leaf_tree",
    "k_inner_tree",
    "to_prufer",
    "from_prufer",
    "all_rooted_trees",
    "count_rooted_trees",
    "random_tree_uniform",
    "ahu_signature",
    "are_isomorphic",
    "parent_row",
    "static_schedule",
    "cycle_schedule",
    "sequence_schedule",
    "compile_cache_info",
    "clear_compile_cache",
    "closure_under_children",
    "is_union_of_subtrees",
    "stalled_nodes",
    "parent_hamming",
    "edge_jaccard_distance",
    "sequence_dynamicity",
]
