"""Compiled parent schedules: packed ``(rounds, n)`` arrays for oblivious play.

An *oblivious* adversary's whole strategy is a predetermined tree sequence,
so there is no reason to rebuild a :class:`~repro.trees.rooted_tree.RootedTree`
(with its O(n) validation pass) in the hot loop every round.  This module
compiles such strategies once into packed ``int64`` parent arrays that the
executors (:mod:`repro.engine.executor`) feed straight into the backend
compose kernels / :meth:`repro.engine.batch.BatchRunner.step_parents`.

Two memoization layers keep repeated compilation free:

* **per-tree rows** -- :func:`parent_row` caches one read-only ``(n,)``
  vector per canonical tree form (the parent tuple *is* the canonical form
  of a labeled rooted tree), so the same tree appearing in many schedules,
  adversaries, or freshly reconstructed ``RootedTree`` instances shares one
  array;
* **per-schedule stacks** -- :func:`sequence_schedule` / :func:`cycle_schedule`
  LRU-cache the stacked ``(rounds, n)`` arrays keyed by the tuple of
  canonical forms plus the horizon, so an executor growing its horizon (or
  many runs of the same adversary) recompiles nothing.

Static (single-tree) schedules are served as ``np.broadcast_to`` views of
the cached row -- O(1) memory for any number of rounds.

All returned arrays are read-only; copy before mutating.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.trees.rooted_tree import RootedTree

#: Maximum number of stacked schedules kept in the LRU cache.
SCHEDULE_CACHE_SIZE = 128

#: Maximum number of per-tree parent rows kept in the LRU cache.
ROW_CACHE_SIZE = 4096

_ROW_CACHE: "OrderedDict[Tuple[int, ...], np.ndarray]" = OrderedDict()
_SCHEDULE_CACHE: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
_HITS = 0
_MISSES = 0


def parent_row(tree: RootedTree) -> np.ndarray:
    """Read-only ``(n,)`` int64 parent vector, memoized by canonical form.

    Unlike :meth:`RootedTree.parent_array_numpy` (cached per *instance*),
    this cache is keyed by the parent tuple, so structurally identical
    trees -- however they were constructed -- share one array.  LRU-bounded
    (:data:`ROW_CACHE_SIZE`) so long-lived processes replaying ever-new
    trees cannot grow it without bound.
    """
    key = tree.parents
    row = _ROW_CACHE.get(key)
    if row is None:
        row = np.asarray(key, dtype=np.int64)
        row.setflags(write=False)
        _ROW_CACHE[key] = row
        while len(_ROW_CACHE) > ROW_CACHE_SIZE:
            _ROW_CACHE.popitem(last=False)
    else:
        _ROW_CACHE.move_to_end(key)
    return row


def _freeze(arr: np.ndarray) -> np.ndarray:
    arr.setflags(write=False)
    return arr


def _cache_get(key: Tuple) -> Optional[np.ndarray]:
    global _HITS
    cached = _SCHEDULE_CACHE.get(key)
    if cached is not None:
        _SCHEDULE_CACHE.move_to_end(key)
        _HITS += 1
    return cached


def _cache_put(key: Tuple, schedule: np.ndarray) -> np.ndarray:
    global _MISSES
    _MISSES += 1
    _SCHEDULE_CACHE[key] = schedule
    while len(_SCHEDULE_CACHE) > SCHEDULE_CACHE_SIZE:
        _SCHEDULE_CACHE.popitem(last=False)
    return schedule


def static_schedule(tree: RootedTree, rounds: int) -> np.ndarray:
    """``(rounds, n)`` schedule repeating one tree -- an O(1) broadcast view."""
    if rounds < 0:
        raise SimulationError(f"rounds must be >= 0, got {rounds}")
    return np.broadcast_to(parent_row(tree), (rounds, tree.n))


def cycle_schedule(trees: Sequence[RootedTree], rounds: int) -> np.ndarray:
    """``(rounds, n)`` schedule cycling through ``trees`` round-robin."""
    return sequence_schedule(trees, rounds, after="repeat")


def sequence_schedule(
    trees: Sequence[RootedTree],
    rounds: int,
    after: str = "hold",
) -> Optional[np.ndarray]:
    """Compile an explicit tree sequence into a packed parent schedule.

    ``after`` mirrors :class:`repro.adversaries.base.SequenceAdversary`:
    past the end of the sequence, ``"repeat"`` cycles from the start,
    ``"hold"`` repeats the last tree, and ``"error"`` refuses -- the
    function returns ``None`` when ``rounds`` exceeds the sequence (the
    caller must fall back to the uncompiled path so the adversary itself
    can raise at the offending round).
    """
    if rounds < 0:
        raise SimulationError(f"rounds must be >= 0, got {rounds}")
    if not trees:
        raise SimulationError("cannot compile an empty tree sequence")
    if after not in ("repeat", "hold", "error"):
        raise SimulationError(
            f"after must be 'repeat', 'hold' or 'error', got {after!r}"
        )
    if after == "error" and rounds > len(trees):
        return None
    if len(trees) == 1 or (after == "hold" and rounds <= 1):
        return static_schedule(trees[0], rounds)
    keys = tuple(t.parents for t in trees)
    cache_key = (after, rounds, keys)
    cached = _cache_get(cache_key)
    if cached is not None:
        return cached
    n = trees[0].n
    rows = np.stack([parent_row(t) for t in trees])
    length = len(trees)
    idx = np.arange(rounds, dtype=np.int64)
    if after == "repeat":
        idx %= length
    else:  # "hold" and in-range "error" both clamp to the last tree
        idx = np.minimum(idx, length - 1)
    schedule = _freeze(np.ascontiguousarray(rows[idx].reshape(rounds, n)))
    return _cache_put(cache_key, schedule)


def cached_schedule(key: Tuple, builder: Callable[[], np.ndarray]) -> np.ndarray:
    """Memoize an adversary-specific schedule under the shared LRU cache.

    For strategies whose schedules are cheaper to build directly than via
    tree objects (rotating/alternating paths): ``key`` must uniquely
    determine the schedule (include the strategy name, ``n``, parameters,
    and the horizon).  The built array is frozen read-only before
    caching.
    """
    cache_key = ("custom", *key)
    cached = _cache_get(cache_key)
    if cached is not None:
        return cached
    return _cache_put(cache_key, _freeze(np.ascontiguousarray(builder())))


def compile_cache_info() -> Dict[str, int]:
    """Cache statistics (rows cached, schedules cached, hits, misses)."""
    return {
        "rows": len(_ROW_CACHE),
        "schedules": len(_SCHEDULE_CACHE),
        "hits": _HITS,
        "misses": _MISSES,
    }


def clear_compile_cache() -> None:
    """Drop both memoization layers (tests and memory-pressure hooks)."""
    global _HITS, _MISSES
    _ROW_CACHE.clear()
    _SCHEDULE_CACHE.clear()
    _HITS = 0
    _MISSES = 0


__all__ = [
    "ROW_CACHE_SIZE",
    "SCHEDULE_CACHE_SIZE",
    "cached_schedule",
    "parent_row",
    "static_schedule",
    "cycle_schedule",
    "sequence_schedule",
    "compile_cache_info",
    "clear_compile_cache",
]
