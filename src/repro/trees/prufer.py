"""Prüfer-sequence encoding of labeled trees.

A Prüfer sequence of length ``n - 2`` over alphabet ``[n]`` is in bijection
with the ``n^(n-2)`` *unrooted* labeled trees on ``n`` nodes (Cayley's
formula).  Pairing a sequence with a root choice gives all ``n^(n-1)``
rooted labeled trees, which is exactly the adversary's per-round choice set
``T_n`` -- this codec is what both the exhaustive enumerator and the uniform
sampler are built on.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

from repro.errors import InvalidTreeError
from repro.trees.rooted_tree import RootedTree
from repro.types import validate_node, validate_node_count


def from_prufer(sequence: Sequence[int], n: int, root: int = 0) -> RootedTree:
    """Decode a Prüfer ``sequence`` into a rooted tree on ``n`` nodes.

    The standard decoding produces an undirected tree; the result is then
    oriented away from ``root``.

    Parameters
    ----------
    sequence:
        ``n - 2`` integers in ``range(n)`` (empty for ``n <= 2``).
    n:
        Number of nodes; must satisfy ``len(sequence) == max(n - 2, 0)``.
    root:
        The node to orient the tree from.
    """
    validate_node_count(n)
    validate_node(root, n)
    if len(sequence) != max(n - 2, 0):
        raise InvalidTreeError(
            f"Prüfer sequence for n={n} must have length {max(n - 2, 0)}, "
            f"got {len(sequence)}"
        )
    if n == 1:
        return RootedTree([0])
    if n == 2:
        parents = [root, root]
        return RootedTree(parents)
    for x in sequence:
        validate_node(x, n)

    degree = [1] * n
    for x in sequence:
        degree[x] += 1

    undirected: List[List[int]] = [[] for _ in range(n)]
    leaf_heap = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaf_heap)
    for x in sequence:
        leaf = heapq.heappop(leaf_heap)
        undirected[leaf].append(x)
        undirected[x].append(leaf)
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaf_heap, x)
    u = heapq.heappop(leaf_heap)
    v = heapq.heappop(leaf_heap)
    undirected[u].append(v)
    undirected[v].append(u)

    parents = [-1] * n
    parents[root] = root
    stack = [root]
    seen = [False] * n
    seen[root] = True
    while stack:
        a = stack.pop()
        for b in undirected[a]:
            if not seen[b]:
                seen[b] = True
                parents[b] = a
                stack.append(b)
    return RootedTree(parents)


def to_prufer(tree: RootedTree) -> List[int]:
    """Encode the underlying *undirected* tree as a Prüfer sequence.

    The root is deliberately ignored: two rooted trees over the same
    undirected tree encode identically.  Round-trip with
    :func:`from_prufer` therefore reproduces the tree up to re-rooting
    (exactly, when decoded with the original root).
    """
    n = tree.n
    if n <= 2:
        return []
    undirected: List[set] = [set() for _ in range(n)]
    for p, c in tree.edges():
        undirected[p].add(c)
        undirected[c].add(p)

    degree = [len(adj) for adj in undirected]
    leaf_heap = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaf_heap)
    sequence: List[int] = []
    removed = [False] * n
    for _ in range(n - 2):
        leaf = heapq.heappop(leaf_heap)
        removed[leaf] = True
        neighbor = next(u for u in undirected[leaf] if not removed[u])
        sequence.append(neighbor)
        undirected[neighbor].discard(leaf)
        degree[neighbor] -= 1
        if degree[neighbor] == 1:
            heapq.heappush(leaf_heap, neighbor)
    return sequence
