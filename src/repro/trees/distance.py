"""Structural distances between rooted trees, and sequence dynamicity.

How *dynamic* is a dynamic-network adversary really?  These metrics
quantify per-round change:

* :func:`parent_hamming` -- number of nodes whose parent pointer differs
  (0 = identical trees; up to ``n``);
* :func:`edge_jaccard_distance` -- 1 − |E₁∩E₂| / |E₁∪E₂| over directed
  edge sets;
* :func:`root_moved` -- did the adversary re-root?

:func:`sequence_dynamicity` folds a whole played sequence into summary
statistics, used by the analysis examples to contrast the static path
(dynamicity 0) with the lower-bound construction (which re-roots almost
every round).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import DimensionMismatchError
from repro.trees.rooted_tree import RootedTree


def parent_hamming(a: RootedTree, b: RootedTree) -> int:
    """Number of nodes whose parent differs between the two trees."""
    if a.n != b.n:
        raise DimensionMismatchError(
            f"cannot compare trees over {a.n} and {b.n} nodes"
        )
    return sum(1 for pa, pb in zip(a.parents, b.parents) if pa != pb)


def edge_jaccard_distance(a: RootedTree, b: RootedTree) -> float:
    """``1 − |E_a ∩ E_b| / |E_a ∪ E_b|`` over directed (parent, child) edges.

    0.0 for identical trees, 1.0 for edge-disjoint ones.  Single-node
    trees (no edges) have distance 0 by convention.
    """
    if a.n != b.n:
        raise DimensionMismatchError(
            f"cannot compare trees over {a.n} and {b.n} nodes"
        )
    ea, eb = set(a.edges()), set(b.edges())
    union = ea | eb
    if not union:
        return 0.0
    return 1.0 - len(ea & eb) / len(union)


def root_moved(a: RootedTree, b: RootedTree) -> bool:
    """True iff the two trees have different roots."""
    if a.n != b.n:
        raise DimensionMismatchError(
            f"cannot compare trees over {a.n} and {b.n} nodes"
        )
    return a.root != b.root


@dataclass(frozen=True)
class DynamicityReport:
    """Per-sequence change statistics.

    Attributes
    ----------
    rounds: number of transitions measured (len(sequence) − 1).
    mean_parent_hamming: average per-round parent changes.
    mean_edge_jaccard: average per-round edge Jaccard distance.
    reroot_fraction: fraction of transitions that moved the root.
    max_parent_hamming: the largest single-round change.
    """

    rounds: int
    mean_parent_hamming: float
    mean_edge_jaccard: float
    reroot_fraction: float
    max_parent_hamming: int


def sequence_dynamicity(trees: Sequence[RootedTree]) -> DynamicityReport:
    """Summarize how much a played sequence changes round to round.

    A single tree (or empty sequence) reports zero dynamicity.
    """
    if len(trees) < 2:
        return DynamicityReport(0, 0.0, 0.0, 0.0, 0)
    hams: List[int] = []
    jaccards: List[float] = []
    reroots = 0
    for a, b in zip(trees, trees[1:]):
        hams.append(parent_hamming(a, b))
        jaccards.append(edge_jaccard_distance(a, b))
        if root_moved(a, b):
            reroots += 1
    k = len(hams)
    return DynamicityReport(
        rounds=k,
        mean_parent_hamming=sum(hams) / k,
        mean_edge_jaccard=sum(jaccards) / k,
        reroot_fraction=reroots / k,
        max_parent_hamming=max(hams),
    )
