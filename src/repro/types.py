"""Shared type aliases and protocols used across the ``repro`` package.

The aliases intentionally stay close to the paper's notation (Section 2):

* a *node* is an integer in ``[n] = {0, ..., n-1}`` (the paper is 1-based,
  the code is 0-based);
* a *round graph* is a rooted labeled tree plus a self-loop on every node;
* the *product graph* ``G(t) = G_1 ∘ ... ∘ G_t`` is a reflexive boolean
  adjacency matrix.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.state import BroadcastState
    from repro.trees.rooted_tree import RootedTree

#: A node identifier in ``range(n)``.
Node = int

#: A directed edge ``(parent, child)``.
Edge = Tuple[int, int]

#: Immutable parent-pointer representation of a rooted tree.  ``parents[v]``
#: is the parent of ``v``; the root points to itself.
ParentArray = Tuple[int, ...]

#: A boolean adjacency matrix (``numpy`` array of dtype ``bool_``).
BoolMatrixArray = np.ndarray


@runtime_checkable
class AdversaryProtocol(Protocol):
    """The interface every adversary implements.

    An adversary observes the current :class:`~repro.core.state.BroadcastState`
    (the full product graph so far -- adaptive adversaries are at least as
    strong as oblivious ones, and Definition 2.3's max over sequences makes
    the two equivalent for this deterministic system) and returns the rooted
    tree for the next round.
    """

    def next_tree(self, state: "BroadcastState", round_index: int) -> "RootedTree":
        """Return the rooted tree the adversary plays in ``round_index``.

        ``round_index`` is 1-based, matching the paper's ``t = 1, 2, ...``.
        """
        ...  # pragma: no cover - protocol body

    def reset(self) -> None:
        """Forget any per-run state so the adversary can be reused."""
        ...  # pragma: no cover - protocol body


class TreeSequence(Protocol):
    """Anything that yields rooted trees indexed by round (1-based)."""

    def __getitem__(self, index: int) -> "RootedTree": ...  # pragma: no cover

    def __len__(self) -> int: ...  # pragma: no cover


def validate_node_count(n: int) -> int:
    """Validate and return a node count.

    Raises
    ------
    ValueError
        If ``n`` is not an integer >= 1.
    """
    if not isinstance(n, (int, np.integer)):
        raise ValueError(f"node count must be an integer, got {type(n).__name__}")
    if n < 1:
        raise ValueError(f"node count must be >= 1, got {n}")
    return int(n)


def validate_node(v: int, n: int) -> int:
    """Validate that ``v`` is a node identifier in ``range(n)``."""
    if not isinstance(v, (int, np.integer)):
        raise ValueError(f"node must be an integer, got {type(v).__name__}")
    if not 0 <= v < n:
        raise ValueError(f"node {v} out of range for n={n}")
    return int(v)


def validate_round_index(t: int) -> int:
    """Validate a 1-based round index as used throughout the paper."""
    if not isinstance(t, (int, np.integer)):
        raise ValueError(f"round index must be an integer, got {type(t).__name__}")
    if t < 1:
        raise ValueError(f"round index must be >= 1 (the paper's t = 1, 2, ...), got {t}")
    return int(t)


def as_edge_list(edges: Sequence[Edge]) -> Tuple[Edge, ...]:
    """Normalize an iterable of ``(parent, child)`` pairs to a tuple."""
    return tuple((int(p), int(c)) for p, c in edges)
