"""Executable checks of Theorem 3.1.

    ⌈(3n−1)/2⌉ − 2  ≤  t*(T_n)  ≤  ⌈(1+√2)·n − 1⌉

The upper bound must hold for *every* adversary: :func:`check_theorem_31`
verifies a measured broadcast time against it (any violation would falsify
the reproduction -- or the theorem).  The lower bound is witnessed by
specific adversaries; :func:`sandwich` reports where a measured value falls
between the two formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.bounds import lower_bound, upper_bound
from repro.types import validate_node_count


@dataclass(frozen=True)
class SandwichReport:
    """Where a measured broadcast time sits relative to Theorem 3.1."""

    n: int
    measured: int
    lower: int
    upper: int

    @property
    def upper_bound_respected(self) -> bool:
        """Must be True for every legal adversary (else the theorem fails)."""
        return self.measured <= self.upper

    @property
    def meets_lower_bound(self) -> bool:
        """True if the adversary achieved at least the known lower bound."""
        return self.measured >= self.lower

    @property
    def normalized(self) -> float:
        """``measured / n`` -- comparable to 1.5 (lower) and 2.414 (upper)."""
        return self.measured / self.n

    def __str__(self) -> str:
        return (
            f"n={self.n}: {self.lower} <= t*={self.measured} <= {self.upper} "
            f"(t*/n = {self.normalized:.3f}; UB ok: {self.upper_bound_respected}, "
            f"LB met: {self.meets_lower_bound})"
        )


def sandwich(n: int, measured_t_star: int) -> SandwichReport:
    """Build a :class:`SandwichReport` for one measurement."""
    validate_node_count(n)
    if measured_t_star < 0:
        raise ValueError(f"broadcast time cannot be negative: {measured_t_star}")
    return SandwichReport(
        n=n,
        measured=measured_t_star,
        lower=lower_bound(n),
        upper=upper_bound(n),
    )


def check_theorem_31(n: int, measured_t_star: int) -> bool:
    """True iff the measured time respects the theorem's upper bound.

    This is the falsifiable reproduction check: since the theorem
    quantifies over all adversaries, *every* measured ``t*`` must satisfy
    ``t* <= ⌈(1+√2)n − 1⌉``.
    """
    return sandwich(n, measured_t_star).upper_bound_respected


def check_exact_value(n: int, exact_t_star: int) -> bool:
    """Check an *exact* game value (from the exhaustive solver) against both
    sides of Theorem 3.1.

    Unlike :func:`check_theorem_31`, the lower bound must also hold here,
    because the exact value is the max over all adversaries.
    """
    report = sandwich(n, exact_t_star)
    return report.upper_bound_respected and report.meets_lower_bound


def theorem_gap(n: int) -> int:
    """Width of the open gap ``upper − lower`` the paper leaves (Section 5)."""
    validate_node_count(n)
    return upper_bound(n) - lower_bound(n)


def normalized_gap_limit() -> float:
    """The asymptotic gap in units of ``n``: ``(1+√2) − 3/2 ≈ 0.914``."""
    import math

    return (1 + math.sqrt(2.0)) - 1.5
