"""Product graphs of tree sequences (Definition 2.1 applied repeatedly).

Convenience functions for composing an explicit finite sequence of round
graphs, used by tests, the trace replayer, and the nonsplit reduction
(compose ``n - 1`` trees, check the result is nonsplit).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core import matrix as M
from repro.core.backend import BackendLike, get_backend
from repro.errors import DimensionMismatchError
from repro.trees.rooted_tree import RootedTree


def product_graph(graphs: Iterable[np.ndarray]) -> np.ndarray:
    """Compose arbitrary adjacency matrices left to right.

    ``product_graph([G1, G2, G3]) = G1 ∘ G2 ∘ G3``.  An empty iterable is
    rejected because the node count would be unknown.
    """
    result = None
    for g in graphs:
        g = M.validate_adjacency(g)
        if result is None:
            result = g.copy()
        else:
            result = M.bool_product(result, g)
    if result is None:
        raise DimensionMismatchError("cannot take the product of zero graphs")
    return result


def product_of_trees(
    trees: Sequence[RootedTree], backend: BackendLike = None
) -> np.ndarray:
    """Compose a sequence of round graphs (trees + self-loops).

    Uses the selected backend's O(n²)-per-round (or word-parallel) fast
    path; the result is always returned as a dense boolean matrix.
    ``product_of_trees([T1, ..., Tk])`` equals ``G(k)`` when the adversary
    plays exactly those trees.
    """
    if not trees:
        raise DimensionMismatchError("cannot take the product of zero trees")
    bk = get_backend(backend)
    n = trees[0].n
    mat = bk.identity(n)
    for t in trees:
        if t.n != n:
            raise DimensionMismatchError(
                f"tree over {t.n} nodes in a sequence over {n} nodes"
            )
        bk.compose_with_tree_inplace(mat, t.parent_array_numpy())
    return bk.to_dense(mat)


def is_nonsplit(a: np.ndarray) -> bool:
    """True iff every pair of nodes has a common in-neighbor.

    Nonsplit graphs are the pool of the related problem studied by
    Függer, Nowak, Winkler [9]; Charron-Bost, Függer, Nowak [1] show one
    nonsplit round can be simulated by ``n - 1`` rooted-tree rounds, which
    is the bridge to the previous ``O(n log log n)`` bound.  Columns of the
    matrix are heard-of sets: nonsplit ⟺ every two columns intersect.
    """
    a = M.validate_adjacency(a)
    n = a.shape[0]
    cols = a.T.astype(np.bool_)
    # Pairwise column intersection via boolean matmul: (cols @ cols.T)[i, j]
    # is true iff columns i and j share an in-neighbor.
    inter = (cols.astype(np.int32) @ cols.astype(np.int32).T) > 0
    return bool(inter.all())


def split_pairs(a: np.ndarray) -> list:
    """All node pairs *without* a common in-neighbor (empty iff nonsplit)."""
    a = M.validate_adjacency(a)
    n = a.shape[0]
    cols = a.T
    inter = (cols.astype(np.int32) @ cols.astype(np.int32).T) > 0
    return [
        (int(i), int(j))
        for i in range(n)
        for j in range(i + 1, n)
        if not inter[i, j]
    ]
