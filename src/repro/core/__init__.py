"""Core model: product graphs, broadcast state, broadcast time, bounds.

This package implements Section 2 of the paper verbatim:

* :mod:`~repro.core.matrix` -- reflexive boolean adjacency matrices and the
  product ``A ∘ B`` of Definition 2.1;
* :mod:`~repro.core.backend` / :mod:`~repro.core.bitset` -- pluggable matrix
  backends (``dense`` boolean matrices or word-packed ``bitset``), selected
  via ``REPRO_BACKEND`` or :func:`~repro.core.backend.set_default_backend`;
* :mod:`~repro.core.state` -- :class:`~repro.core.state.BroadcastState`, the
  evolving product graph ``G(t) = G_1 ∘ ... ∘ G_t``;
* :mod:`~repro.core.broadcast` -- broadcast time ``t*`` (Definitions 2.2 and
  2.3) for fixed sequences and adversaries;
* :mod:`~repro.core.bounds` -- every bound in Figure 1 and Theorem 3.1;
* :mod:`~repro.core.potential` -- per-round quantities of the paper's
  matrix-evolution analysis;
* :mod:`~repro.core.theorem` -- executable checks of Theorem 3.1.
"""

from repro.core.backend import (
    MatrixBackend,
    available_backends,
    default_backend_name,
    get_backend,
    set_default_backend,
    use_backend,
)
from repro.core.matrix import (
    bool_product,
    compose_with_tree,
    identity_matrix,
    is_reflexive,
    matrix_key,
    validate_adjacency,
)
from repro.core.state import BroadcastState
from repro.core.product import product_of_trees, product_graph
from repro.core.broadcast import (
    BroadcastResult,
    broadcast_time_adversary,
    broadcast_time_sequence,
    run_adversary,
    run_sequence,
)
from repro.core.bounds import (
    fugger_nowak_winkler_upper_bound,
    k_inner_upper_bound,
    k_leaves_upper_bound,
    lower_bound,
    nlogn_upper_bound,
    trivial_upper_bound,
    upper_bound,
)
from repro.core.theorem import check_theorem_31, sandwich

__all__ = [
    "MatrixBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "set_default_backend",
    "use_backend",
    "identity_matrix",
    "validate_adjacency",
    "is_reflexive",
    "bool_product",
    "compose_with_tree",
    "matrix_key",
    "BroadcastState",
    "product_graph",
    "product_of_trees",
    "BroadcastResult",
    "broadcast_time_sequence",
    "broadcast_time_adversary",
    "run_sequence",
    "run_adversary",
    "lower_bound",
    "upper_bound",
    "trivial_upper_bound",
    "nlogn_upper_bound",
    "fugger_nowak_winkler_upper_bound",
    "k_leaves_upper_bound",
    "k_inner_upper_bound",
    "check_theorem_31",
    "sandwich",
]
