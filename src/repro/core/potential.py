"""Per-round quantities of the paper's adjacency-matrix analysis.

The paper's proof works by "a detailed analysis of the evolution of the
adjacency matrix of the network over time" (Section 3).  This module makes
that lens executable: given a state (or a run history), compute the
quantities such an analysis watches --

* row sums (reach-set sizes) and their extremes,
* column sums (heard-of-set sizes),
* new-edge counts per round (>= 1 while unfinished, Section 2),
* the number of nodes stalled by the played tree,
* a family of scalar *potentials* that summarize progress.

These feed adversary scoring (a good adversary keeps potentials low) and
the analysis reports in :mod:`repro.analysis.evolution`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.state import BroadcastState
from repro.trees.rooted_tree import RootedTree
from repro.trees.subtree import stalled_nodes


@dataclass(frozen=True)
class MatrixPotential:
    """Scalar summaries of one product-graph matrix.

    Attributes
    ----------
    round_index: round at which the matrix was observed.
    edges: number of ones in the matrix (self-loops included).
    max_row: largest reach-set size.
    min_row: smallest reach-set size.
    max_col: largest heard-of-set size.
    min_col: smallest heard-of-set size.
    full_rows: number of broadcasters.
    rows_above_half: rows with more than n/2 ones -- the "heavy" nodes the
        adversary must keep from finishing.
    quadratic_row_potential: ``sum_x |R_x|²/n²`` -- convex potential that
        rewards keeping knowledge spread evenly (low when balanced).
    """

    round_index: int
    edges: int
    max_row: int
    min_row: int
    max_col: int
    min_col: int
    full_rows: int
    rows_above_half: int
    quadratic_row_potential: float


def matrix_potential(state: BroadcastState) -> MatrixPotential:
    """Compute :class:`MatrixPotential` for one state."""
    rows = state.reach_sizes()
    cols = state.heard_of_sizes()
    n = state.n
    return MatrixPotential(
        round_index=state.round_index,
        edges=int(rows.sum()),
        max_row=int(rows.max()),
        min_row=int(rows.min()),
        max_col=int(cols.max()),
        min_col=int(cols.min()),
        full_rows=int((rows == n).sum()),
        rows_above_half=int((rows * 2 > n).sum()),
        quadratic_row_potential=float((rows.astype(np.float64) ** 2).sum())
        / float(n * n),
    )


def row_histogram(state: BroadcastState) -> np.ndarray:
    """``hist[s]`` = number of nodes whose reach-set size is ``s``.

    Indexed ``0 .. n``; index 0 is always zero (self-loops).
    """
    n = state.n
    hist = np.zeros(n + 1, dtype=np.int64)
    for s in state.reach_sizes():
        hist[int(s)] += 1
    return hist


def column_histogram(state: BroadcastState) -> np.ndarray:
    """``hist[s]`` = number of nodes heard of by exactly ``s`` processes."""
    n = state.n
    hist = np.zeros(n + 1, dtype=np.int64)
    for s in state.heard_of_sizes():
        hist[int(s)] += 1
    return hist


def stall_fraction(state: BroadcastState, tree: RootedTree) -> float:
    """Fraction of nodes a hypothetical next tree would stall.

    The adversary's ideal round stalls everyone but the root (which always
    gains, Lemma R); a value close to ``(n-1)/n`` marks a strong move.
    """
    st = stalled_nodes(tree, state.reach_matrix_view())
    return len(st) / state.n


@dataclass(frozen=True)
class RoundDelta:
    """Progress made by one round: the paper's >=1-new-edge observation."""

    round_index: int
    new_edges: int
    nodes_that_gained: int
    root: int
    root_gain: int


def round_delta(
    before: BroadcastState, after: BroadcastState, tree: RootedTree
) -> RoundDelta:
    """Quantify the progress from ``before`` to ``after`` along ``tree``."""
    b = before.reach_matrix_view()
    a = after.reach_matrix_view()
    gained = (a & ~b).sum(axis=1)
    return RoundDelta(
        round_index=after.round_index,
        new_edges=int(gained.sum()),
        nodes_that_gained=int((gained > 0).sum()),
        root=tree.root,
        root_gain=int(gained[tree.root]),
    )


def minimum_new_edges_invariant(deltas: Sequence[RoundDelta]) -> bool:
    """Section 2's invariant: every round adds at least one edge.

    Holds for all rounds up to and including the completing round.
    """
    return all(d.new_edges >= 1 for d in deltas)


def knowledge_balance(state: BroadcastState) -> float:
    """Normalized imbalance of reach sizes: ``(max - min) / n``.

    0 means everyone knows equally much; values near 1 mean a runaway
    leader, which the adversary must prevent to stretch the game.
    """
    rows = state.reach_sizes()
    return float(rows.max() - rows.min()) / state.n
