"""Broadcast time ``t*`` (Definitions 2.2 and 2.3) and run drivers.

Two entry points mirror the paper's two definitions:

* :func:`broadcast_time_sequence` -- ``t*(G_1, G_2, ...)`` for an explicit
  sequence of trees (Definition 2.2);
* :func:`broadcast_time_adversary` -- drive an adversary until broadcast
  completes, returning the achieved ``t*`` (a *witness* for Definition
  2.3's max; the exact solver in ``repro.adversaries.exact`` computes the
  max itself for small ``n``).

Both return a :class:`BroadcastResult` carrying the final state, the first
broadcaster(s), and optional per-round history for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.backend import BackendLike
from repro.core.state import BroadcastState
from repro.errors import SimulationError
from repro.trees.rooted_tree import RootedTree
from repro.types import AdversaryProtocol, validate_node_count


@dataclass(frozen=True)
class RoundSnapshot:
    """What happened in one round (kept only when history is requested)."""

    round_index: int
    tree: RootedTree
    new_edges: int
    max_reach: int
    min_reach: int
    broadcaster_count: int


@dataclass
class BroadcastResult:
    """Outcome of running a tree sequence / adversary to completion.

    Attributes
    ----------
    t_star:
        The broadcast time: first round at which some node has reached all.
        ``None`` if the run was truncated before completion.
    n:
        Number of processes.
    broadcasters:
        The nodes with full reach rows at time ``t_star``.
    final_state:
        The product-graph state at the end of the run.
    history:
        Optional per-round snapshots (empty unless requested).
    trees:
        The sequence of trees actually played (empty unless requested).
    """

    t_star: Optional[int]
    n: int
    broadcasters: Tuple[int, ...]
    final_state: BroadcastState
    history: List[RoundSnapshot] = field(default_factory=list)
    trees: List[RootedTree] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        """True iff broadcast finished within the allotted rounds."""
        return self.t_star is not None

    def normalized_time(self) -> Optional[float]:
        """``t*/n`` -- the constant the paper's bounds are about."""
        if self.t_star is None:
            return None
        return self.t_star / self.n


def run_sequence(
    trees: Sequence[RootedTree],
    n: Optional[int] = None,
    keep_history: bool = False,
    stop_at_broadcast: bool = True,
    backend: BackendLike = None,
) -> BroadcastResult:
    """Run an explicit sequence of trees from the identity state.

    Parameters
    ----------
    trees:
        Round graphs for rounds ``1 .. len(trees)``.
    n:
        Node count; inferred from the first tree when omitted.
    keep_history:
        Record per-round snapshots (costs one matrix scan per round).
    stop_at_broadcast:
        Stop at the first broadcaster (Definition 2.2).  When False the
        whole sequence is applied; ``t_star`` still reports the first
        completion round if one occurred.
    backend:
        Matrix backend name or instance (default: process-wide default,
        see :mod:`repro.core.backend`).

    Returns
    -------
    BroadcastResult
        With ``t_star=None`` if the sequence ended before broadcast.
    """
    if n is None:
        if not trees:
            raise SimulationError("cannot infer n from an empty sequence")
        n = trees[0].n
    validate_node_count(n)
    state = BroadcastState.initial(n, backend=backend)
    result_t: Optional[int] = None
    history: List[RoundSnapshot] = []
    played: List[RootedTree] = []
    for i, tree in enumerate(trees, start=1):
        before_edges = state.edge_count() if keep_history else 0
        state.apply_tree_inplace(tree)
        played.append(tree)
        if keep_history:
            sizes = state.reach_sizes()
            history.append(
                RoundSnapshot(
                    round_index=i,
                    tree=tree,
                    new_edges=state.edge_count() - before_edges,
                    max_reach=int(sizes.max()),
                    min_reach=int(sizes.min()),
                    broadcaster_count=len(state.broadcasters()),
                )
            )
        if result_t is None and state.is_broadcast_complete():
            result_t = i
            if stop_at_broadcast:
                break
    return BroadcastResult(
        t_star=result_t,
        n=n,
        broadcasters=state.broadcasters(),
        final_state=state,
        history=history,
        trees=played,
    )


def run_adversary(
    adversary: AdversaryProtocol,
    n: int,
    max_rounds: Optional[int] = None,
    keep_history: bool = False,
    keep_trees: bool = False,
    backend: BackendLike = None,
) -> BroadcastResult:
    """Drive an adversary until broadcast completes (or ``max_rounds``).

    A facade over the unified execution layer: builds a
    :class:`~repro.engine.executor.RunSpec` and runs it through a
    :class:`~repro.engine.executor.SequentialExecutor` (oblivious
    adversaries take the compiled parent-schedule fast path when no
    history/trees are requested).

    The round-cap policy is the shared one
    (:func:`repro.core.bounds.resolve_round_cap`): the default cap is the
    paper's trivial ``n²`` bound -- any legal adversary must finish by
    then, so hitting it indicates a bug (an illegal adversary) and raises
    :class:`AdversaryError` -- while an explicit ``max_rounds`` truncates
    quietly (``t_star=None``).
    """
    from repro.engine.executor import RunSpec, SequentialExecutor

    report = SequentialExecutor().run(
        RunSpec(
            adversary=adversary,
            n=n,
            max_rounds=max_rounds,
            backend=backend,
            instrumentation="history" if keep_history else "none",
            keep_trees=keep_trees,
        )
    )
    return report.to_broadcast_result()


def broadcast_time_sequence(
    trees: Sequence[RootedTree],
    n: Optional[int] = None,
    backend: BackendLike = None,
) -> Optional[int]:
    """``t*`` of an explicit sequence (Definition 2.2); ``None`` if unfinished."""
    return run_sequence(trees, n=n, backend=backend).t_star


def broadcast_time_adversary(
    adversary: AdversaryProtocol,
    n: int,
    max_rounds: Optional[int] = None,
    backend: BackendLike = None,
) -> Optional[int]:
    """``t*`` achieved by an adversary on ``n`` processes."""
    return run_adversary(adversary, n, max_rounds=max_rounds, backend=backend).t_star


def first_broadcaster(trees: Sequence[RootedTree], n: Optional[int] = None) -> Optional[int]:
    """The smallest-index node that completes broadcast first, if any."""
    result = run_sequence(trees, n=n)
    if not result.broadcasters:
        return None
    return result.broadcasters[0]


def verify_certificate(
    trees: Sequence[RootedTree],
    claimed_t_star: int,
    n: Optional[int] = None,
) -> bool:
    """Check that ``claimed_t_star`` is exactly the ``t*`` of the sequence.

    Used to validate results produced by search adversaries and the exact
    solver: a claimed value must be achieved at round ``claimed_t_star``
    and *not* any earlier.
    """
    result = run_sequence(trees, n=n, stop_at_broadcast=True)
    return result.t_star == claimed_t_star
