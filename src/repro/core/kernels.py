"""Compiled kernel tier: graph-compose kernels, dispatch, and t* squaring.

This module sits *behind* the backend seam (:mod:`repro.core.backend`):
``compose_with_graph`` on both shipped backends routes through
:func:`graph_compose`, which picks one of several registered kernels for
the same mathematical operation ``R ∘ G``.  Three legs live here:

Graph-compose kernels (bitset)
------------------------------
``word-or``
    The original chunked OR-reduction over packed rows
    (:func:`repro.core.bitset.bool_product_words`) -- pure word-parallel
    memory traffic, no BLAS.
``gather``
    CSR-style gather: concatenate the packed heard-of rows selected by
    each column of ``G`` and ``np.bitwise_or.reduceat`` over the segment
    starts.  Work is ``O(nnz(G) * words)``, so it wins big on sparse
    round graphs (the nonsplit experiments' cyclic graphs have constant
    degree) and loses on dense ones.
``blas``
    Reformulate the boolean product as a float32 sgemm: unpack the packed
    words to 0/1 float32, compute ``G.T @ bits`` (counts are <= n < 2^24,
    exactly representable in float32), threshold ``> 0``, and repack.
    OpenBLAS turns the ``n^3`` bit-AND-OR into a cache-blocked sgemm --
    ~5x over ``word-or`` at n=4096 dense on one core.  Chunked over the
    word axis so the float32 temporaries stay under
    :data:`BLAS_CHUNK_BYTES`.

The dense backend gets ``matmul`` (the original int32 matmul, the
reference semantics of :func:`repro.core.matrix.bool_product`) and a
float32 ``blas`` variant.

Dispatch
--------
:func:`graph_compose` consults, in priority order: an in-process override
(:func:`set_kernel` / :func:`use_kernel`), the ``REPRO_KERNEL``
environment variable, then a small measured rule table (mean degree of
``G`` routes sparse graphs to ``gather``; ``n`` past the measured
crossover routes to ``blas``).  The built-in defaults were measured on a
1-core OpenBLAS host; :func:`autotune` re-measures the crossovers on the
current machine and persists them as JSON (``REPRO_KERNEL_TABLE`` points
future processes at the file).  Kernel choice is an *execution detail*:
every kernel is bit-identical, so cache digests never include it.

Repeated-squaring completion search
-----------------------------------
:func:`static_completion_search` finds ``t*`` for a *static* schedule
(the same tree every round) in ``O(log t*)`` compositions instead of
``O(t*)``.  Naive boolean matrix squaring would lose here (``t* <= 2.5n``
but squaring costs ``n^3/64`` per step); instead the power ``G(d)`` of a
single tree is represented as the pair ``(H_d, j_d)`` where ``H_d`` is
the ordinary state handle and ``j_d[y]`` is ``y``'s ``d``-step ancestor
(clamped at the root).  Because the heard-of set after ``a + b`` rounds
satisfies ``heard_{a+b}[y] = heard_a[y] | heard_b[j_a[y]]``, both
doubling and combining are one ``or_gather`` (gather + OR, ``O(n *
words)``) plus one integer gather ``j_b[j_a]``:

    double:   H_{2d} = H_d | H_d[j_d],     j_{2d} = j_d[j_d]
    combine:  H_{a+b} = H_a | H_b[j_a],    j_{a+b} = j_b[j_a]

So the search is: double until a broadcaster appears (or the round cap is
hit), then binary-search the exact ``t*`` down the ladder -- ``~2 log2
t* + 1`` gather-OR passes, byte-identical to the round-by-round loop.
The executors (:mod:`repro.engine.executor`) call this automatically for
adversaries that advertise a static schedule via
:meth:`~repro.adversaries.base.Adversary.compile_static_row`.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.backend import MatrixBackend, get_backend
from repro.errors import BackendError

#: Environment variable forcing one kernel name (or ``auto``) for every
#: graph compose; the in-process :func:`set_kernel` override wins over it.
ENV_KERNEL = "REPRO_KERNEL"

#: Environment variable pointing at a persisted :func:`autotune` table.
ENV_TABLE = "REPRO_KERNEL_TABLE"

#: Byte budget for the float32 unpacked-bits temporary of the ``blas``
#: kernel.  64 MiB keeps n <= 4096 in a single sgemm (narrow chunked
#: panels measured ~2x slower than one full-width call on OpenBLAS) while
#: still bounding memory at larger n.
BLAS_CHUNK_BYTES = 1 << 26

#: Byte budget for the gathered-rows temporary of the ``gather`` kernel.
GATHER_CHUNK_BYTES = 1 << 25

#: Dispatch rules measured on the reference host (1 core, OpenBLAS,
#: numpy 2.x).  ``gather_max_degree``: route to ``gather`` when the mean
#: out-degree of ``G`` is at or below this.  ``blas_min_n``: route to
#: ``blas`` from this ``n`` up.  :func:`autotune` re-measures both.
DEFAULT_RULES: Dict[str, Dict[str, float]] = {
    "bitset": {"gather_max_degree": 32.0, "blas_min_n": 128},
    "dense": {"blas_min_n": 128},
}

#: Sentinel for "never pick this kernel" in an autotuned rule.
NEVER = 1 << 30


# ----------------------------------------------------------------------
# Kernel implementations
# ----------------------------------------------------------------------


def _word_or_kernel(mat: np.ndarray, g: np.ndarray) -> np.ndarray:
    from repro.core.bitset import bool_product_words

    return bool_product_words(mat, g)


def _gather_kernel(mat: np.ndarray, g: np.ndarray) -> np.ndarray:
    """OR-reduce the packed rows selected by each column of ``G``.

    ``heard'[y] = OR over {z : G[z, y]} heard[z]`` becomes: gather the
    selected rows for a block of output rows into one ``(nnz_block,
    words)`` array and ``np.bitwise_or.reduceat`` at the segment starts.
    Rows with no contributors stay zero (``reduceat`` mishandles empty
    segments, so only nonempty rows are reduced).  Chunked over output
    rows so the gathered temporary stays under
    :data:`GATHER_CHUNK_BYTES`.
    """
    n, words = mat.shape
    gT = np.asarray(g, dtype=np.bool_).T
    counts = gT.sum(axis=1, dtype=np.int64)
    out = np.zeros_like(mat)
    budget_rows = max(1, GATHER_CHUNK_BYTES // (words * 8))
    csum = np.concatenate([[0], np.cumsum(counts)])
    start = 0
    while start < n:
        stop = start + 1
        while stop < n and csum[stop + 1] - csum[start] <= budget_rows:
            stop += 1
        ys, zs = np.nonzero(gT[start:stop])
        if zs.size:
            cnt = counts[start:stop]
            nonempty = cnt > 0
            seg_starts = np.concatenate([[0], np.cumsum(cnt)])[:-1][nonempty]
            reduced = np.bitwise_or.reduceat(mat[zs], seg_starts, axis=0)
            out[np.nonzero(nonempty)[0] + start] = reduced
        start = stop
    return out


def _blas_kernel(mat: np.ndarray, g: np.ndarray) -> np.ndarray:
    """``R ∘ G`` as a float32 sgemm over unpacked bit columns.

    ``G.T @ bits`` counts, per (y, source-bit), how many selected rows
    carry the bit; counts are <= n < 2^24 so float32 is exact and the
    ``> 0`` threshold reproduces the boolean OR bit-for-bit.  Source
    padding bits are zero in ``mat``, so their columns repack to zero.
    """
    from repro.core.bitset import WORD_BITS, _unpack_bits

    n, words = mat.shape
    gT = np.ascontiguousarray(g.T, dtype=np.float32)
    out = np.empty_like(mat)
    word_chunk = max(1, BLAS_CHUNK_BYTES // (4 * n * WORD_BITS))
    for w0 in range(0, words, word_chunk):
        w1 = min(words, w0 + word_chunk)
        bits = _unpack_bits(mat[:, w0:w1], (w1 - w0) * WORD_BITS)
        prod = gT @ bits.astype(np.float32)
        packed = np.packbits(prod > 0, axis=-1, bitorder="little")
        out[:, w0:w1] = np.ascontiguousarray(packed).view(np.uint64)
    return out


def _dense_matmul_kernel(mat: np.ndarray, g: np.ndarray) -> np.ndarray:
    # The reference semantics of repro.core.matrix.bool_product.
    return (mat.astype(np.int32) @ g.astype(np.int32)) > 0


def _dense_blas_kernel(mat: np.ndarray, g: np.ndarray) -> np.ndarray:
    return (mat.astype(np.float32) @ g.astype(np.float32)) > 0


# ----------------------------------------------------------------------
# Registry + dispatch
# ----------------------------------------------------------------------

#: ``{backend name: {kernel name: fn(mat, validated bool G) -> handle}}``.
_KERNELS: Dict[str, Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]]] = {
    "bitset": {
        "word-or": _word_or_kernel,
        "gather": _gather_kernel,
        "blas": _blas_kernel,
    },
    "dense": {
        "matmul": _dense_matmul_kernel,
        "blas": _dense_blas_kernel,
    },
}

_forced: Optional[str] = None
_rules_cache: Optional[Tuple[Dict[str, Dict[str, float]], Optional[str], Optional[str]]] = None

#: Optional observability hook (installed by :mod:`repro.obs.profile`).
#: When set, every compose that crosses the kernel seam routes through it
#: as ``observer(namespace, kernel_name, n, thunk) -> result``; when
#: ``None`` (the default) call sites take the raw path -- one attribute
#: load and an ``is None`` branch is the entire disabled cost.
_compose_observer: Optional[Callable[[str, str, int, Callable[[], np.ndarray]], np.ndarray]] = None


def set_compose_observer(
    observer: Optional[Callable[[str, str, int, Callable[[], np.ndarray]], np.ndarray]]
) -> None:
    """Install (or with ``None`` remove) the kernel-seam observer."""
    global _compose_observer
    _compose_observer = observer


def register_kernel(
    backend_name: str,
    kernel_name: str,
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
) -> None:
    """Register a graph-compose kernel for one backend's handle layout."""
    _KERNELS.setdefault(backend_name, {})[kernel_name] = fn


def available_kernels(backend_name: str) -> Tuple[str, ...]:
    """Kernel names registered for a backend, sorted."""
    return tuple(sorted(_KERNELS.get(backend_name, ())))


def known_kernel_names() -> Tuple[str, ...]:
    """Every kernel name any backend registers (the ``REPRO_KERNEL`` domain)."""
    names = {name for table in _KERNELS.values() for name in table}
    return tuple(sorted(names))


def set_kernel(name: Optional[str]) -> None:
    """Force one kernel in-process (``None``/``"auto"`` restores dispatch)."""
    global _forced
    if name in (None, "auto"):
        _forced = None
        return
    if name not in known_kernel_names():
        raise BackendError(
            f"unknown kernel {name!r}; known: {known_kernel_names()}"
        )
    _forced = name


@contextmanager
def use_kernel(name: Optional[str]) -> Iterator[None]:
    """Temporarily force one kernel (tests and the equivalence sweeps)."""
    global _forced
    saved = _forced
    set_kernel(name)
    try:
        yield
    finally:
        _forced = saved


def forced_kernel_name() -> Optional[str]:
    """The forced kernel: in-process override first, then ``REPRO_KERNEL``."""
    if _forced is not None:
        return _forced
    env = os.environ.get(ENV_KERNEL, "").strip()
    if not env or env == "auto":
        return None
    if env not in known_kernel_names():
        raise BackendError(
            f"{ENV_KERNEL}={env!r} is not a known kernel; "
            f"known: {known_kernel_names()}"
        )
    return env


def _load_rules() -> Tuple[Dict[str, Dict[str, float]], Optional[str], Optional[str]]:
    """``(rules, table_path, load_error)`` with the persisted table merged in."""
    rules = {name: dict(table) for name, table in DEFAULT_RULES.items()}
    path = os.environ.get(ENV_TABLE) or None
    error: Optional[str] = None
    if path:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            for backend_name, overrides in doc.get("rules", {}).items():
                rules.setdefault(backend_name, {}).update(overrides)
        except (OSError, ValueError) as exc:
            # A missing or corrupt table must not take down runs; the
            # defaults stay active and kernel_table() reports the error.
            error = f"{type(exc).__name__}: {exc}"
    return rules, path, error


def current_rules() -> Dict[str, Dict[str, float]]:
    """The active dispatch rules (defaults overlaid by any persisted table)."""
    global _rules_cache
    if _rules_cache is None:
        _rules_cache = _load_rules()
    return _rules_cache[0]


def reload_kernel_table() -> None:
    """Drop the cached rule table (picks up ``REPRO_KERNEL_TABLE`` changes)."""
    global _rules_cache
    _rules_cache = None


def choose_kernel(backend_name: str, n: int, g: np.ndarray) -> Optional[str]:
    """The kernel auto-dispatch would pick for this compose (``None`` = ABC)."""
    rules = current_rules().get(backend_name)
    if rules is None or backend_name not in _KERNELS:
        return None
    table = _KERNELS[backend_name]
    if backend_name == "bitset":
        degree = np.count_nonzero(g) / max(n, 1)
        if degree <= rules.get("gather_max_degree", 0) and "gather" in table:
            return "gather"
        if n >= rules.get("blas_min_n", NEVER) and "blas" in table:
            return "blas"
        return "word-or"
    if n >= rules.get("blas_min_n", NEVER) and "blas" in table:
        return "blas"
    return "matmul" if "matmul" in table else None


def graph_compose(
    backend: MatrixBackend, mat: np.ndarray, g: np.ndarray
) -> np.ndarray:
    """Dispatch one validated ``R ∘ G`` compose to the winning kernel.

    ``g`` must already be a validated boolean ``(n, n)`` adjacency (the
    backends validate before routing here).  A forced kernel that is not
    registered for this backend's layout falls back to auto dispatch, so
    ``REPRO_KERNEL=gather`` can drive a whole suite without the dense
    backend erroring.  Backends sharing another backend's handle layout
    (the numba backend reuses bitset packing) set ``kernel_namespace`` to
    borrow its kernel table.
    """
    namespace = getattr(backend, "kernel_namespace", backend.name)
    table = _KERNELS.get(namespace)
    if not table:
        raise BackendError(
            f"no graph-compose kernels registered for backend {backend.name!r}"
        )
    name = forced_kernel_name()
    if name is None or name not in table:
        name = choose_kernel(namespace, mat.shape[0], g)
    if name is None:
        raise BackendError(
            f"no dispatch rule for backend {backend.name!r}"
        )
    observer = _compose_observer
    if observer is None:
        return table[name](mat, g)
    return observer(namespace, name, mat.shape[0], lambda: table[name](mat, g))


# ----------------------------------------------------------------------
# Autotune + introspection
# ----------------------------------------------------------------------


def machine_info() -> Dict[str, object]:
    """Host fingerprint recorded next to measured numbers."""
    import platform

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count() or 1,
    }


def default_table_path() -> str:
    """Where :func:`autotune` persists when no path is given."""
    env = os.environ.get(ENV_TABLE)
    if env:
        return env
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "kernel_table.json"
    )


def _time_call(fn: Callable[[], np.ndarray], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def autotune(
    ns: Tuple[int, ...] = (64, 128, 256, 512),
    degrees: Tuple[int, ...] = (8, 32, 128),
    repeats: int = 3,
    path: Optional[str] = None,
    persist: bool = True,
    seed: int = 0,
) -> Dict[str, object]:
    """Re-measure the kernel crossovers on this machine.

    Times every registered bitset/dense kernel on random states over the
    ``ns`` grid (dense ~0.3-density graphs for the n-crossover, constant
    ``degrees`` graphs at the largest ``n`` for the gather threshold),
    derives fresh dispatch rules, and -- when ``persist`` -- writes the
    whole document to ``path`` (default :func:`default_table_path`, which
    honours ``REPRO_KERNEL_TABLE``).  The new rules become active in this
    process immediately.  Returns the document.
    """
    global _rules_cache
    rng = np.random.default_rng(seed)
    bitset = get_backend("bitset")
    measured: Dict[str, Dict[str, float]] = {}

    def _dense_graph(n: int) -> np.ndarray:
        g = rng.random((n, n)) < 0.3
        np.fill_diagonal(g, True)
        return g

    def _sparse_graph(n: int, degree: int) -> np.ndarray:
        g = rng.random((n, n)) < min(1.0, degree / n)
        np.fill_diagonal(g, True)
        return g

    blas_min_n = NEVER
    dense_blas_min_n = NEVER
    for n in sorted(ns):
        mat = bitset.from_dense(rng.random((n, n)) < 0.3)
        dmat = rng.random((n, n)) < 0.3
        g = _dense_graph(n)
        cell = {
            "word-or": _time_call(lambda: _word_or_kernel(mat, g), repeats),
            "blas": _time_call(lambda: _blas_kernel(mat, g), repeats),
            "dense-matmul": _time_call(
                lambda: _dense_matmul_kernel(dmat, g), repeats
            ),
            "dense-blas": _time_call(
                lambda: _dense_blas_kernel(dmat, g), repeats
            ),
        }
        measured[f"n{n}"] = cell
        if blas_min_n == NEVER and cell["blas"] < cell["word-or"]:
            blas_min_n = n
        if dense_blas_min_n == NEVER and cell["dense-blas"] < cell["dense-matmul"]:
            dense_blas_min_n = n

    n_big = max(ns)
    mat = bitset.from_dense(rng.random((n_big, n_big)) < 0.3)
    gather_max_degree = 0.0
    for degree in sorted(degrees):
        g = _sparse_graph(n_big, degree)
        gather_s = _time_call(lambda: _gather_kernel(mat, g), repeats)
        rival_s = min(
            _time_call(lambda: _word_or_kernel(mat, g), repeats),
            _time_call(lambda: _blas_kernel(mat, g), repeats),
        )
        measured[f"n{n_big}-deg{degree}"] = {
            "gather": gather_s,
            "rival": rival_s,
        }
        if gather_s < rival_s:
            gather_max_degree = float(degree)

    doc: Dict[str, object] = {
        "version": 1,
        "machine": machine_info(),
        "rules": {
            "bitset": {
                "gather_max_degree": gather_max_degree,
                "blas_min_n": blas_min_n,
            },
            "dense": {"blas_min_n": dense_blas_min_n},
        },
        "measured": measured,
    }
    if persist:
        target = path or default_table_path()
        os.makedirs(os.path.dirname(target) or ".", exist_ok=True)
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    # Activate immediately, regardless of whether the file is on the
    # REPRO_KERNEL_TABLE path this process started with.
    rules = {name: dict(table) for name, table in DEFAULT_RULES.items()}
    for backend_name, overrides in doc["rules"].items():
        rules.setdefault(backend_name, {}).update(overrides)
    _rules_cache = (rules, path or default_table_path(), None)
    return doc


def kernel_table() -> Dict[str, object]:
    """The active dispatch picture (the service exposes this on /metrics)."""
    rules, path, error = _rules_cache if _rules_cache is not None else _load_rules()
    try:
        forced = forced_kernel_name()
    except BackendError as exc:
        forced, error = None, str(exc)
    return {
        "forced": forced,
        "rules": rules,
        "table_path": path,
        "table_error": error,
        "kernels": {name: list(available_kernels(name)) for name in sorted(_KERNELS)},
    }


# ----------------------------------------------------------------------
# Repeated-squaring completion search
# ----------------------------------------------------------------------

#: One rung of the jump-pointer ladder: ``(H_{2^i}, j_{2^i})``.
_Rung = Tuple[np.ndarray, np.ndarray]


def _combine(backend: MatrixBackend, a: _Rung, b: _Rung) -> _Rung:
    """``(H_{c+d}, j_{c+d})`` from ``(H_c, j_c)`` and ``(H_d, j_d)``."""
    h_a, j_a = a
    h_b, j_b = b
    return backend.or_gather(h_a, h_b, j_a), j_b[j_a]


def _state_at(backend: MatrixBackend, ladder: List[_Rung], t: int) -> np.ndarray:
    """``H_t`` by binary decomposition of ``t >= 1`` over the ladder."""
    acc: Optional[_Rung] = None
    for i in range(t.bit_length()):
        if (t >> i) & 1:
            acc = ladder[i] if acc is None else _combine(backend, acc, ladder[i])
    assert acc is not None
    return acc[0]


def static_completion_search(
    backend: MatrixBackend, parents: np.ndarray, n: int, cap: int
) -> Tuple[Optional[int], np.ndarray, int]:
    """``(t_star, final_handle, rounds)`` for a static schedule under a cap.

    Routes through the observability seam (one ``squaring`` kernel row /
    span per search) when an observer is installed; see
    :func:`set_compose_observer`.
    """
    observer = _compose_observer
    if observer is None:
        return _static_completion_search(backend, parents, n, cap)
    namespace = getattr(backend, "kernel_namespace", backend.name)
    return observer(
        namespace,
        "squaring",
        n,
        lambda: _static_completion_search(backend, parents, n, cap),
    )


def _static_completion_search(
    backend: MatrixBackend, parents: np.ndarray, n: int, cap: int
) -> Tuple[Optional[int], np.ndarray, int]:
    """The uninstrumented search (docs on the public wrapper above).

    Plays the tree ``parents`` every round via the jump-pointer doubling
    described in the module docstring.  Semantics exactly match the
    sequential loop: ``t_star`` is the first round with a broadcaster
    (``0`` when ``n == 1``), or ``None`` when the run does not complete
    within ``cap`` rounds -- then ``final_handle`` is the state after
    exactly ``cap`` rounds and ``rounds == cap`` (the caller decides
    whether an exhausted cap raises or truncates).  The result is
    byte-identical to composing round by round.
    """
    ident = backend.identity(n)
    if backend.has_broadcaster(ident):  # n == 1: complete before any round
        return 0, ident, 0
    if cap <= 0:
        return None, ident, 0
    parents = np.asarray(parents, dtype=np.int64)
    ladder: List[_Rung] = [(backend.compose_with_tree(ident, parents), parents)]
    d = 1
    while not backend.has_broadcaster(ladder[-1][0]) and d < cap:
        h, j = ladder[-1]
        ladder.append((backend.or_gather(h, h, j), j[j]))
        d *= 2
    if not backend.has_broadcaster(ladder[-1][0]):
        # Doubled past the cap while still incomplete: t* > cap.
        return None, _state_at(backend, ladder, cap), cap
    k = len(ladder) - 1
    if k == 0:
        return 1, ladder[0][0], 1
    # t* is in (2^(k-1), 2^k]: greedily add lower powers while incomplete.
    cur = ladder[k - 1]
    c = 1 << (k - 1)
    for i in range(k - 2, -1, -1):
        cand = _combine(backend, cur, ladder[i])
        if not backend.has_broadcaster(cand[0]):
            cur = cand
            c += 1 << i
    t_star = c + 1
    if t_star > cap:
        return None, _state_at(backend, ladder, cap), cap
    final = backend.or_gather(cur[0], ladder[0][0], cur[1])
    return t_star, final, t_star


__all__ = [
    "ENV_KERNEL",
    "ENV_TABLE",
    "BLAS_CHUNK_BYTES",
    "GATHER_CHUNK_BYTES",
    "DEFAULT_RULES",
    "register_kernel",
    "available_kernels",
    "known_kernel_names",
    "set_kernel",
    "use_kernel",
    "forced_kernel_name",
    "current_rules",
    "reload_kernel_table",
    "choose_kernel",
    "graph_compose",
    "set_compose_observer",
    "machine_info",
    "default_table_path",
    "autotune",
    "kernel_table",
    "static_completion_search",
]
