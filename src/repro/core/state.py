"""The evolving product graph ``G(t)`` as a first-class object.

:class:`BroadcastState` is the object every adversary observes and every
engine advances: the reflexive boolean matrix ``G(t) = G_1 ∘ ... ∘ G_t``
together with the round counter and convenience queries (reach sets,
broadcasters, stalled nodes for a hypothetical next tree).

The matrix itself lives behind a :class:`~repro.core.backend.MatrixBackend`
(``dense`` or ``bitset``, see :mod:`repro.core.backend`); all mutation and
queries route through that interface, so the packed representation never
leaks.  ``reach_matrix`` / ``reach_matrix_view`` still hand out plain
boolean matrices for analysis code.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core import kernels as _kernels
from repro.core import matrix as M
from repro.core.backend import BackendLike, MatrixBackend, get_backend
from repro.errors import DimensionMismatchError, SimulationError
from repro.trees.rooted_tree import RootedTree
from repro.types import validate_node_count


class BroadcastState:
    """The product graph after some number of rounds.

    Parameters
    ----------
    n:
        Number of processes.
    reach:
        Optional initial matrix as a dense boolean array (defaults to the
        identity = round 0).  The matrix must be reflexive: processes never
        forget their own value.
    round_index:
        How many rounds produced ``reach`` (0 for the identity).
    backend:
        Matrix backend name or instance; defaults to the process-wide
        default (see :func:`repro.core.backend.get_backend`).
    """

    __slots__ = ("_mat", "_round", "_n", "_backend", "_dense_cache")

    def __init__(
        self,
        n: int,
        reach: Optional[np.ndarray] = None,
        round_index: int = 0,
        backend: BackendLike = None,
    ) -> None:
        self._n = validate_node_count(n)
        self._backend = get_backend(backend)
        if reach is None:
            self._mat = self._backend.identity(self._n)
        else:
            arr = M.validate_adjacency(reach, require_reflexive=True)
            if arr.shape[0] != self._n:
                raise DimensionMismatchError(
                    f"reach matrix over {arr.shape[0]} nodes but n={self._n}"
                )
            self._mat = self._backend.from_dense(arr)
        if round_index < 0:
            raise SimulationError(f"round_index must be >= 0, got {round_index}")
        self._round = int(round_index)
        self._dense_cache: Optional[np.ndarray] = None

    @classmethod
    def _wrap(
        cls,
        mat: np.ndarray,
        n: int,
        round_index: int,
        backend: MatrixBackend,
    ) -> "BroadcastState":
        """Internal constructor around an existing backend handle (no copy)."""
        state = cls.__new__(cls)
        state._n = n
        state._backend = backend
        state._mat = mat
        state._round = round_index
        state._dense_cache = None
        return state

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of processes."""
        return self._n

    @property
    def round_index(self) -> int:
        """Number of rounds applied so far (``t`` in ``G(t)``)."""
        return self._round

    @property
    def backend(self) -> MatrixBackend:
        """The matrix backend this state's storage lives in."""
        return self._backend

    def backend_matrix(self) -> np.ndarray:
        """The raw backend handle (layout is backend-specific).

        For batched kernels (:mod:`repro.engine.batch`) that compose many
        candidates against this state in one step.  Treat as read-only.
        """
        return self._mat

    @property
    def reach_matrix(self) -> np.ndarray:
        """A *copy* of the boolean product-graph matrix."""
        return self._backend.to_dense(self._mat)

    def reach_matrix_view(self) -> np.ndarray:
        """Read-only dense matrix without a per-call copy.

        For the dense backend this is a view of live storage; for packed
        backends it is a cached conversion that is refreshed after each
        mutating call.  Mutating the returned array is undefined
        behaviour; use it for hot read paths like adversary scoring.
        """
        if self._dense_cache is None:
            view = self._backend.dense_view(self._mat)
            view.setflags(write=False)
            self._dense_cache = view
        return self._dense_cache

    def reach_set(self, x: int) -> FrozenSet[int]:
        """All nodes process ``x`` has reached (row ``x``), including itself."""
        return frozenset(
            int(v) for v in np.nonzero(self._backend.row(self._mat, x))[0]
        )

    def heard_of_set(self, y: int) -> FrozenSet[int]:
        """All nodes that have reached ``y`` (column ``y``), including itself."""
        return frozenset(
            int(v) for v in np.nonzero(self._backend.col(self._mat, y))[0]
        )

    def reach_sizes(self) -> np.ndarray:
        """Vector of row sums: how many nodes each process reached."""
        return self._backend.reach_sizes(self._mat)

    def heard_of_sizes(self) -> np.ndarray:
        """Vector of column sums: how many processes reached each node."""
        return self._backend.heard_of_sizes(self._mat)

    def broadcasters(self) -> Tuple[int, ...]:
        """Nodes that have reached everyone (full rows)."""
        return self._backend.broadcasters(self._mat)

    def is_broadcast_complete(self) -> bool:
        """Definition 2.2's stopping event: some node reached everyone."""
        return self._backend.has_broadcaster(self._mat)

    def edge_count(self) -> int:
        """Number of product-graph edges (self-loops included)."""
        return self._backend.edge_count(self._mat)

    def missing(self, x: int) -> FrozenSet[int]:
        """Nodes process ``x`` has not reached yet."""
        return frozenset(
            int(v) for v in np.nonzero(~self._backend.row(self._mat, x))[0]
        )

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def apply_tree(self, tree: RootedTree) -> "BroadcastState":
        """Return the state after one more round along ``tree``.

        Pure: the receiver is unchanged.  The round counter increments.
        """
        if tree.n != self._n:
            raise DimensionMismatchError(
                f"tree over {tree.n} nodes applied to state over {self._n}"
            )
        new_mat = self._backend.compose_with_tree(
            self._mat, tree.parent_array_numpy()
        )
        return BroadcastState._wrap(new_mat, self._n, self._round + 1, self._backend)

    def apply_tree_inplace(self, tree: RootedTree) -> "BroadcastState":
        """Advance this state by one round along ``tree`` (mutating)."""
        if tree.n != self._n:
            raise DimensionMismatchError(
                f"tree over {tree.n} nodes applied to state over {self._n}"
            )
        self._compose_tree_inplace(tree.parent_array_numpy())
        self._round += 1
        self._dense_cache = None
        return self

    def _compose_tree_inplace(self, parents: np.ndarray) -> None:
        """One tree compose through the observability seam.

        The observer defaults to ``None`` (one attribute load + branch --
        the entire disabled cost of instrumenting the engine's hottest
        call); :mod:`repro.obs.profile` installs it while tracing or
        profiling is on, recording a ``tree-compose`` kernel row/span.
        """
        observer = _kernels._compose_observer
        if observer is None:
            self._backend.compose_with_tree_inplace(self._mat, parents)
            return
        observer(
            getattr(self._backend, "kernel_namespace", self._backend.name),
            "tree-compose",
            self._n,
            lambda: self._backend.compose_with_tree_inplace(self._mat, parents),
        )

    def apply_parents_inplace(self, parents: np.ndarray) -> "BroadcastState":
        """Advance one round along a packed parent row (mutating).

        The compiled-schedule fast path
        (:mod:`repro.trees.compile` / :mod:`repro.engine.executor`): same
        composition as :meth:`apply_tree_inplace` but without a
        :class:`RootedTree` in the loop.  ``parents`` must be a valid
        ``(n,)`` parent array (root pointing to itself); rows obtained
        from :meth:`RootedTree.parent_array_numpy` or
        :func:`repro.trees.compile.parent_row` always are.
        """
        parents = np.asarray(parents, dtype=np.int64)
        if parents.shape != (self._n,):
            raise DimensionMismatchError(
                f"parent row must have shape ({self._n},), got {parents.shape}"
            )
        self._compose_tree_inplace(parents)
        self._round += 1
        self._dense_cache = None
        return self

    def apply_graph(self, adjacency: np.ndarray) -> "BroadcastState":
        """Compose with an arbitrary reflexive round graph.

        Used by the nonsplit-adversary experiments where the round graph is
        not a tree.  The graph must be reflexive, preserving monotonicity.
        """
        g = M.validate_adjacency(adjacency, require_reflexive=True)
        new_mat = self._backend.compose_with_graph(self._mat, g)
        return BroadcastState._wrap(new_mat, self._n, self._round + 1, self._backend)

    def would_stall(self, tree: RootedTree) -> FrozenSet[int]:
        """Nodes that would gain nothing if ``tree`` were played next."""
        from repro.trees.subtree import stalled_nodes

        return stalled_nodes(tree, self.reach_matrix_view())

    def gains_under(self, tree: RootedTree) -> np.ndarray:
        """Per-node number of new nodes gained if ``tree`` were played."""
        return self._backend.gains_under(self._mat, tree.parent_array_numpy())

    # ------------------------------------------------------------------
    # Identity / bookkeeping
    # ------------------------------------------------------------------

    def copy(self) -> "BroadcastState":
        """Deep copy."""
        return BroadcastState._wrap(
            self._backend.copy(self._mat), self._n, self._round, self._backend
        )

    def with_backend(self, backend: BackendLike) -> "BroadcastState":
        """This state converted to another backend (copies the matrix)."""
        target = get_backend(backend)
        if target is self._backend:
            return self.copy()
        return BroadcastState._wrap(
            target.from_dense(self.reach_matrix), self._n, self._round, target
        )

    def key(self) -> bytes:
        """Hashable packed-bit key of the matrix (round index excluded).

        Identical across backends for the same matrix.
        """
        return self._backend.matrix_key(self._mat)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BroadcastState):
            return NotImplemented
        if self._n != other._n or self._round != other._round:
            return False
        if self._backend is other._backend:
            return self._backend.equal(self._mat, other._mat)
        return bool((self.reach_matrix == other.reach_matrix).all())

    def __repr__(self) -> str:
        return (
            f"BroadcastState(n={self._n}, round={self._round}, "
            f"edges={self.edge_count()}, "
            f"broadcasters={len(self.broadcasters())})"
        )

    def summary(self) -> str:
        """One-line human summary used by traces and the CLI."""
        sizes = self.reach_sizes()
        return (
            f"t={self._round} edges={self.edge_count()} "
            f"min|R|={int(sizes.min())} max|R|={int(sizes.max())} "
            f"done={self.is_broadcast_complete()}"
        )

    @classmethod
    def initial(cls, n: int, backend: BackendLike = None) -> "BroadcastState":
        """The canonical starting state ``G(0) = identity``."""
        return cls(n, backend=backend)

    @classmethod
    def from_rows(
        cls,
        rows: List[FrozenSet[int]],
        round_index: int = 0,
        backend: BackendLike = None,
    ) -> "BroadcastState":
        """Build a state from explicit reach sets (row ``x`` = ``rows[x]``)."""
        n = len(rows)
        reach = np.zeros((n, n), dtype=np.bool_)
        for x, row in enumerate(rows):
            for y in row:
                reach[x, int(y)] = True
            reach[x, x] = True
        return cls(n, reach, round_index, backend=backend)
