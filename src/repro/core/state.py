"""The evolving product graph ``G(t)`` as a first-class object.

:class:`BroadcastState` is the object every adversary observes and every
engine advances: the reflexive boolean matrix ``G(t) = G_1 ∘ ... ∘ G_t``
together with the round counter and convenience queries (reach sets,
broadcasters, stalled nodes for a hypothetical next tree).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core import matrix as M
from repro.errors import DimensionMismatchError, SimulationError
from repro.trees.rooted_tree import RootedTree
from repro.types import validate_node_count


class BroadcastState:
    """The product graph after some number of rounds.

    Parameters
    ----------
    n:
        Number of processes.
    reach:
        Optional initial matrix (defaults to the identity = round 0).  The
        matrix must be reflexive: processes never forget their own value.
    round_index:
        How many rounds produced ``reach`` (0 for the identity).
    """

    __slots__ = ("_reach", "_round", "_n")

    def __init__(
        self,
        n: int,
        reach: Optional[np.ndarray] = None,
        round_index: int = 0,
    ) -> None:
        self._n = validate_node_count(n)
        if reach is None:
            self._reach = M.identity_matrix(self._n)
        else:
            arr = M.validate_adjacency(reach, require_reflexive=True)
            if arr.shape[0] != self._n:
                raise DimensionMismatchError(
                    f"reach matrix over {arr.shape[0]} nodes but n={self._n}"
                )
            self._reach = arr.copy()
        if round_index < 0:
            raise SimulationError(f"round_index must be >= 0, got {round_index}")
        self._round = int(round_index)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of processes."""
        return self._n

    @property
    def round_index(self) -> int:
        """Number of rounds applied so far (``t`` in ``G(t)``)."""
        return self._round

    @property
    def reach_matrix(self) -> np.ndarray:
        """A *copy* of the boolean product-graph matrix."""
        return self._reach.copy()

    def reach_matrix_view(self) -> np.ndarray:
        """Read-only view of the matrix (no copy).

        Mutating the returned array is undefined behaviour; use it for hot
        read paths like adversary scoring.
        """
        view = self._reach.view()
        view.setflags(write=False)
        return view

    def reach_set(self, x: int) -> FrozenSet[int]:
        """All nodes process ``x`` has reached (row ``x``), including itself."""
        return frozenset(int(v) for v in np.nonzero(self._reach[x])[0])

    def heard_of_set(self, y: int) -> FrozenSet[int]:
        """All nodes that have reached ``y`` (column ``y``), including itself."""
        return frozenset(int(v) for v in np.nonzero(self._reach[:, y])[0])

    def reach_sizes(self) -> np.ndarray:
        """Vector of row sums: how many nodes each process reached."""
        return self._reach.sum(axis=1).astype(np.int64)

    def heard_of_sizes(self) -> np.ndarray:
        """Vector of column sums: how many processes reached each node."""
        return self._reach.sum(axis=0).astype(np.int64)

    def broadcasters(self) -> Tuple[int, ...]:
        """Nodes that have reached everyone (full rows)."""
        return M.broadcasters(self._reach)

    def is_broadcast_complete(self) -> bool:
        """Definition 2.2's stopping event: some node reached everyone."""
        return M.has_broadcaster(self._reach)

    def edge_count(self) -> int:
        """Number of product-graph edges (self-loops included)."""
        return M.edge_count(self._reach)

    def missing(self, x: int) -> FrozenSet[int]:
        """Nodes process ``x`` has not reached yet."""
        return frozenset(int(v) for v in np.nonzero(~self._reach[x])[0])

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def apply_tree(self, tree: RootedTree) -> "BroadcastState":
        """Return the state after one more round along ``tree``.

        Pure: the receiver is unchanged.  The round counter increments.
        """
        if tree.n != self._n:
            raise DimensionMismatchError(
                f"tree over {tree.n} nodes applied to state over {self._n}"
            )
        new_reach = M.compose_with_tree(self._reach, tree)
        return BroadcastState(self._n, new_reach, self._round + 1)

    def apply_tree_inplace(self, tree: RootedTree) -> "BroadcastState":
        """Advance this state by one round along ``tree`` (mutating)."""
        if tree.n != self._n:
            raise DimensionMismatchError(
                f"tree over {tree.n} nodes applied to state over {self._n}"
            )
        M.compose_with_tree_inplace(self._reach, tree)
        self._round += 1
        return self

    def apply_graph(self, adjacency: np.ndarray) -> "BroadcastState":
        """Compose with an arbitrary reflexive round graph.

        Used by the nonsplit-adversary experiments where the round graph is
        not a tree.  The graph must be reflexive, preserving monotonicity.
        """
        g = M.validate_adjacency(adjacency, require_reflexive=True)
        new_reach = M.bool_product(self._reach, g)
        return BroadcastState(self._n, new_reach, self._round + 1)

    def would_stall(self, tree: RootedTree) -> FrozenSet[int]:
        """Nodes that would gain nothing if ``tree`` were played next."""
        from repro.trees.subtree import stalled_nodes

        return stalled_nodes(tree, self._reach)

    def gains_under(self, tree: RootedTree) -> np.ndarray:
        """Per-node number of new nodes gained if ``tree`` were played."""
        parent = tree.parent_array_numpy()
        gains = self._reach[:, parent] & ~self._reach
        return gains.sum(axis=1).astype(np.int64)

    # ------------------------------------------------------------------
    # Identity / bookkeeping
    # ------------------------------------------------------------------

    def copy(self) -> "BroadcastState":
        """Deep copy."""
        return BroadcastState(self._n, self._reach, self._round)

    def key(self) -> bytes:
        """Hashable packed-bit key of the matrix (round index excluded)."""
        return M.matrix_key(self._reach)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BroadcastState):
            return NotImplemented
        return (
            self._n == other._n
            and self._round == other._round
            and bool((self._reach == other._reach).all())
        )

    def __repr__(self) -> str:
        return (
            f"BroadcastState(n={self._n}, round={self._round}, "
            f"edges={self.edge_count()}, "
            f"broadcasters={len(self.broadcasters())})"
        )

    def summary(self) -> str:
        """One-line human summary used by traces and the CLI."""
        sizes = self.reach_sizes()
        return (
            f"t={self._round} edges={self.edge_count()} "
            f"min|R|={int(sizes.min())} max|R|={int(sizes.max())} "
            f"done={self.is_broadcast_complete()}"
        )

    @classmethod
    def initial(cls, n: int) -> "BroadcastState":
        """The canonical starting state ``G(0) = identity``."""
        return cls(n)

    @classmethod
    def from_rows(cls, rows: List[FrozenSet[int]], round_index: int = 0) -> "BroadcastState":
        """Build a state from explicit reach sets (row ``x`` = ``rows[x]``)."""
        n = len(rows)
        reach = np.zeros((n, n), dtype=np.bool_)
        for x, row in enumerate(rows):
            for y in row:
                reach[x, int(y)] = True
            reach[x, x] = True
        return cls(n, reach, round_index)
