"""Every bound in Figure 1 and Theorem 3.1, as executable formulas.

The figure's columns, left to right, with the paper's attributions:

=================  =============================  ==========================
Name               Formula                        Source
=================  =============================  ==========================
trivial            ``n²``                         Section 2 (one new edge
                                                  per round)
nlogn              ``n · log₂ n``                 [14] / [2]+[1]
loglog             ``2·n·log₂log₂ n + O(n)``      Függer-Nowak-Winkler [9]
new (this paper)   ``⌈(1+√2)·n − 1⌉``             Theorem 3.1 upper bound
k leaves           ``O(k·n)``                     [14], restricted adversary
k inner nodes      ``O(k·n)``                     [14], restricted adversary
lower bound        ``⌈(3n−1)/2⌉ − 2``             [14], Theorem 3.1 lower
static path        ``n − 1``                      Section 2 example
=================  =============================  ==========================

Asymptotic bounds (``O(...)``) carry explicit constants here so they can be
plotted/tabulated; the chosen constants are documented per function and the
benchmark output prints them alongside the exact formulas.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.types import validate_node_count

#: The paper's headline constant ``1 + √2``.
LINEAR_CONSTANT = 1.0 + math.sqrt(2.0)


def lower_bound(n: int) -> int:
    """Zeiner-Schwarz-Schmid lower bound ``⌈(3n−1)/2⌉ − 2`` (Theorem 3.1).

    For very small ``n`` the formula can dip below the trivial facts that
    broadcast takes at least one round for ``n >= 2`` (and zero rounds for
    ``n = 1``, where the sole process has trivially reached everyone);
    we clamp accordingly so the function is usable as a true lower bound
    over the whole range.
    """
    validate_node_count(n)
    if n == 1:
        return 0
    raw = math.ceil((3 * n - 1) / 2) - 2
    return max(raw, 1)


def upper_bound(n: int) -> int:
    """This paper's upper bound ``⌈(1+√2)·n − 1⌉`` (Theorem 3.1)."""
    validate_node_count(n)
    return math.ceil(LINEAR_CONSTANT * n - 1)


def trivial_upper_bound(n: int) -> int:
    """``n²``: at least one new product-graph edge appears per round.

    The product graph starts with ``n`` self-loops and completes no later
    than when all ``n²`` entries are present; ``n²`` is the paper's quoted
    safe cap (Section 2).
    """
    validate_node_count(n)
    return n * n


def resolve_round_cap(n: int, max_rounds: Optional[int] = None) -> Tuple[int, bool]:
    """The one round-cap policy every run driver shares.

    Returns ``(cap, explicit)``:

    * no ``max_rounds`` -- the cap is the trivial ``n²`` bound and
      ``explicit`` is False: any legal adversary must finish by then, so a
      driver hitting this cap should *raise* (the adversary produced
      illegal round graphs);
    * explicit ``max_rounds`` -- the cap is exactly that and ``explicit``
      is True: hitting it truncates the run quietly (``t_star=None``),
      never raises.

    Sourced from :class:`repro.engine.executor.RunSpec` by every executor,
    and from here directly by the legacy drivers, so the sequential,
    instrumented, batched, and sharded paths cannot drift apart.
    """
    if max_rounds is None:
        return trivial_upper_bound(n), False
    validate_node_count(n)
    return int(max_rounds), True


def static_path_time(n: int) -> int:
    """``n − 1``: broadcast time when the adversary repeats one path."""
    validate_node_count(n)
    return n - 1


def nlogn_upper_bound(n: int) -> int:
    """The ``n·log n`` bound implied by [2] + [1] and shown in [14].

    We use ``⌈n·log₂(n)⌉`` (base 2, the usual convention in this line of
    work); for ``n = 1`` the bound is 0.
    """
    validate_node_count(n)
    if n == 1:
        return 0
    return math.ceil(n * math.log2(n))


def fugger_nowak_winkler_upper_bound(n: int, additive_constant: float = 2.0) -> int:
    """The ``2·n·log₂ log₂ n + O(n)`` bound of [9].

    The ``O(n)`` term's constant is not pinned down in the brief
    announcement; we expose it as ``additive_constant`` (default 2, so the
    bound reads ``2n·log₂log₂n + 2n``) and the benchmark table prints the
    convention.  For ``n <= 2`` (where ``log₂ log₂ n`` is degenerate) the
    trivial ``n²`` bound is returned.
    """
    validate_node_count(n)
    if n <= 2:
        return trivial_upper_bound(n)
    loglog = math.log2(math.log2(n))
    return math.ceil(2 * n * max(loglog, 0.0) + additive_constant * n)


def k_leaves_upper_bound(n: int, k: int, constant: float = 2.0) -> int:
    """``O(k·n)`` bound of [14] for adversaries limited to k-leaf trees.

    Reported as ``constant · k · n`` with an explicit constant (default 2);
    the reproduced claim is the *linearity in n for fixed k*, which the
    restricted-adversary benchmark measures directly.
    """
    validate_node_count(n)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return math.ceil(constant * k * n)


def k_inner_upper_bound(n: int, k: int, constant: float = 2.0) -> int:
    """``O(k·n)`` bound of [14] for adversaries limited to k inner nodes."""
    validate_node_count(n)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return math.ceil(constant * k * n)


def all_bounds(n: int, k: int = 3) -> Dict[str, int]:
    """Every Figure 1 row (plus the lower bound) evaluated at ``n``.

    ``k`` parameterizes the two restricted-adversary rows.
    """
    return {
        "trivial_n_squared": trivial_upper_bound(n),
        "nlogn_zeiner": nlogn_upper_bound(n),
        "loglog_fnw": fugger_nowak_winkler_upper_bound(n),
        "new_linear": upper_bound(n),
        f"k_leaves_k={k}": k_leaves_upper_bound(n, k),
        f"k_inner_k={k}": k_inner_upper_bound(n, k),
        "lower_bound": lower_bound(n),
        "static_path": static_path_time(n),
    }


def crossover_nlogn_vs_linear() -> int:
    """Smallest ``n`` where the new linear bound beats the old ``n log n``.

    The figure's story: the new bound wins asymptotically; this pins down
    where.  ``n log₂ n > (1+√2)n − 1 ⟺ log₂ n > (1+√2) − 1/n``, so the
    crossover is at ``n`` around ``2^2.41 ≈ 5.3``.
    """
    n = 2
    while nlogn_upper_bound(n) <= upper_bound(n):
        n += 1
    return n


def crossover_loglog_vs_linear(additive_constant: float = 2.0) -> int:
    """Smallest ``n`` where the new linear bound beats [9]'s bound.

    ``2n·log₂log₂n + c·n > (1+√2)n − 1`` once ``log₂log₂ n`` exceeds
    roughly ``(1+√2−c)/2``; with the default ``c = 2`` that happens just
    above ``n = 2^(2^0.207) ≈ 2.3``.  The function searches directly so the
    convention stays honest whatever ``c`` is.
    """
    n = 3
    while fugger_nowak_winkler_upper_bound(
        n, additive_constant
    ) <= upper_bound(n):
        n += 1
        if n > 10**7:
            raise RuntimeError(
                "no crossover below 10^7; additive constant makes [9] dominate"
            )
    return n
