"""Optional numba-jitted bitset backend (registry name ``numba``).

Registers only when ``importlib.util.find_spec("numba")`` succeeds (and
the host is little-endian, same as the bitset backend it subclasses) --
numba is never a hard dependency, and every test touching this backend
skips cleanly when it is absent.

The handle layout is exactly :class:`~repro.core.bitset.BitsetBackend`'s
``(n, words)`` uint64 packed heard-of sets, so every inherited kernel
(batched compose, reach counts, conversion) stays valid; only the three
hottest single-run loops are replaced with jitted versions that fuse the
gather and the OR into one pass with no ``mat[parent]`` temporary:

* :meth:`compose_with_tree` / :meth:`compose_with_tree_inplace`
* :meth:`or_gather` (the repeated-squaring ladder step)
* the AND-reduction behind broadcaster detection

Bit-identity note: the jitted compose writes into a separate output
buffer.  An in-place row loop ``mat[y] |= mat[parent[y]]`` would read
rows already updated this round whenever ``parent[y] < y``, silently
computing a *different* (2-step) round -- the out-buffer form keeps the
backend byte-identical to the numpy gather-copy semantics.

Compilation is lazy: the first composed round pays the JIT cost, so
short-lived processes that never touch the backend never compile.
"""

from __future__ import annotations

import importlib.util
import sys
from typing import Callable, Dict, Optional

import numpy as np

from repro.core.backend import register_backend
from repro.core.bitset import BitsetBackend

#: True when the `numba` backend registered at import time.
NUMBA_AVAILABLE = importlib.util.find_spec("numba") is not None

_jit_cache: Optional[Dict[str, Callable]] = None


def _jitted() -> Dict[str, Callable]:
    """Compile the kernels once, on first use."""
    global _jit_cache
    if _jit_cache is None:
        import numba

        @numba.njit(cache=False)
        def or_gather(mat, other, parents, out):  # pragma: no cover - jitted
            n, words = mat.shape
            for y in range(n):
                p = parents[y]
                for w in range(words):
                    out[y, w] = mat[y, w] | other[p, w]

        @numba.njit(cache=False)
        def and_reduce(mat, out):  # pragma: no cover - jitted
            n, words = mat.shape
            for w in range(words):
                out[w] = mat[0, w]
            for y in range(1, n):
                for w in range(words):
                    out[w] &= mat[y, w]

        _jit_cache = {"or_gather": or_gather, "and_reduce": and_reduce}
    return _jit_cache


class NumbaBitsetBackend(BitsetBackend):
    """Bitset layout with numba-jitted compose / reduce hot loops."""

    name = "numba"
    #: Same packed handle layout as bitset, so its kernel table applies.
    kernel_namespace = "bitset"

    def compose_with_tree(self, mat: np.ndarray, parent: np.ndarray) -> np.ndarray:
        out = np.empty_like(mat)
        _jitted()["or_gather"](
            mat, mat, np.asarray(parent, dtype=np.int64), out
        )
        return out

    def compose_with_tree_inplace(self, mat: np.ndarray, parent: np.ndarray) -> np.ndarray:
        # Compute into a fresh buffer first: updating rows in place would
        # leak this round's bits through parent chains (see module doc).
        out = self.compose_with_tree(mat, parent)
        mat[:] = out
        return mat

    def or_gather(
        self, mat: np.ndarray, other: np.ndarray, parents: np.ndarray
    ) -> np.ndarray:
        out = np.empty_like(mat)
        _jitted()["or_gather"](
            mat, other, np.asarray(parents, dtype=np.int64), out
        )
        return out

    def _full_row_words(self, mat: np.ndarray) -> np.ndarray:
        out = np.empty(mat.shape[1], dtype=np.uint64)
        _jitted()["and_reduce"](mat, out)
        return out


if NUMBA_AVAILABLE and sys.byteorder == "little":
    register_backend(NumbaBitsetBackend())

__all__ = ["NUMBA_AVAILABLE", "NumbaBitsetBackend"]
