"""Boolean adjacency matrices and the product graph of Definition 2.1.

The paper's key analytical move is to watch the boolean adjacency matrix of
the accumulated communication graph evolve round by round.  Row ``x`` of the
matrix is the *reach set* of process ``x`` (everyone ``x`` has reached);
column ``y`` is the *heard-of set* of ``y`` (everyone that reached ``y``).
Broadcast completes when some row is all-ones.

Two composition routines are provided:

* :func:`bool_product` -- the generic ``A ∘ B`` of Definition 2.1 for
  arbitrary directed graphs (used by the nonsplit experiments and as a
  cross-check), computed via integer matmul;
* :func:`compose_with_tree` -- the O(n²) fast path for composing the current
  product graph with *a rooted tree plus self-loops*, which is the only
  composition the broadcast model ever performs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import DimensionMismatchError, InvalidGraphError
from repro.trees.rooted_tree import RootedTree
from repro.types import validate_node_count


def identity_matrix(n: int) -> np.ndarray:
    """The reflexive diagonal matrix: every process knows only itself.

    This is ``G(0)``, the state before any communication round.
    """
    validate_node_count(n)
    return np.eye(n, dtype=np.bool_)


def validate_adjacency(a: np.ndarray, require_reflexive: bool = False) -> np.ndarray:
    """Validate an adjacency matrix and return it as a ``bool_`` array.

    Raises
    ------
    InvalidGraphError
        If ``a`` is not a square 2-D boolean-convertible matrix, or if
        ``require_reflexive`` and some diagonal entry is False.
    """
    arr = np.asarray(a)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise InvalidGraphError(f"adjacency matrix must be square 2-D, got {arr.shape}")
    if arr.dtype != np.bool_:
        # Coercing e.g. a weight matrix through astype(bool) would silently
        # turn every nonzero weight into an edge; only exact 0/1 is accepted.
        try:
            valid = (arr == 0) | (arr == 1)
            all_valid = bool(np.all(valid))
        except (TypeError, ValueError) as exc:
            raise InvalidGraphError(
                f"adjacency matrix of dtype {arr.dtype} is not boolean-comparable"
            ) from exc
        if not all_valid:
            raise InvalidGraphError(
                "adjacency matrix entries must all be 0 or 1 (or boolean); "
                "refusing to coerce other values"
            )
        arr = arr.astype(np.bool_)
    if require_reflexive and not bool(arr.diagonal().all()):
        raise InvalidGraphError(
            "matrix must be reflexive (self-loops on the diagonal); "
            "the model never forgets information"
        )
    return arr


def is_reflexive(a: np.ndarray) -> bool:
    """True iff every diagonal entry (self-loop) is present."""
    return bool(np.asarray(a).diagonal().all())


def bool_product(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The product graph ``A ∘ B`` of Definition 2.1.

    ``(x, y) ∈ A ∘ B`` iff there is a ``z`` with ``(x, z) ∈ A`` and
    ``(z, y) ∈ B``.  This is exactly boolean matrix multiplication.
    """
    a = validate_adjacency(a)
    b = validate_adjacency(b)
    if a.shape != b.shape:
        raise DimensionMismatchError(
            f"cannot compose graphs over {a.shape[0]} and {b.shape[0]} nodes"
        )
    # int32 accumulation avoids uint8 overflow for n >= 256.
    return (a.astype(np.int32) @ b.astype(np.int32)) > 0


def compose_with_tree(reach: np.ndarray, tree: RootedTree) -> np.ndarray:
    """Compose the product graph with one round graph (tree + self-loops).

    For round graph ``T`` with self-loops, ``(x, y) ∈ R ∘ T`` iff
    ``y ∈ R_x`` (self-loop on ``y``) or ``parent_T(y) ∈ R_x`` (tree edge).
    Column-wise that is ``R' = R | R[:, parent]`` -- O(n²) and allocation
    light, versus the O(n³)-ish generic product.

    Returns a new matrix; ``reach`` is not modified.
    """
    reach = validate_adjacency(reach)
    if reach.shape[0] != tree.n:
        raise DimensionMismatchError(
            f"reach matrix over {reach.shape[0]} nodes composed with tree over {tree.n}"
        )
    parent = tree.parent_array_numpy()
    return reach | reach[:, parent]


def compose_with_tree_inplace(reach: np.ndarray, tree: RootedTree) -> np.ndarray:
    """In-place variant of :func:`compose_with_tree` for hot loops.

    ``reach`` must already be a validated boolean matrix of the right shape;
    no checks are performed.  Returns ``reach`` for chaining.
    """
    parent = tree.parent_array_numpy()
    np.logical_or(reach, reach[:, parent], out=reach)
    return reach


def full_rows(a: np.ndarray) -> np.ndarray:
    """Boolean vector: ``full[x]`` iff row ``x`` is all-ones.

    A full row means process ``x`` has reached everyone -- ``x`` is a
    *broadcaster* in the paper's sense.
    """
    return np.asarray(a, dtype=np.bool_).all(axis=1)


def has_broadcaster(a: np.ndarray) -> bool:
    """True iff some node has reached every node (Definition 2.2's event)."""
    return bool(full_rows(a).any())


def broadcasters(a: np.ndarray) -> Tuple[int, ...]:
    """All nodes whose rows are full, in increasing order."""
    return tuple(int(v) for v in np.nonzero(full_rows(a))[0])


def edge_count(a: np.ndarray) -> int:
    """Total number of edges including self-loops."""
    return int(np.asarray(a, dtype=np.bool_).sum())


def new_edges(before: np.ndarray, after: np.ndarray) -> int:
    """Number of edges in ``after`` missing from ``before``.

    Section 2 of the paper observes this is >= 1 every round while
    broadcast is unfinished (hence ``t* <= n²``).
    """
    before = np.asarray(before, dtype=np.bool_)
    after = np.asarray(after, dtype=np.bool_)
    if before.shape != after.shape:
        raise DimensionMismatchError(
            f"cannot diff matrices of shapes {before.shape} and {after.shape}"
        )
    return int((after & ~before).sum())


def is_monotone_step(before: np.ndarray, after: np.ndarray) -> bool:
    """True iff ``before ⊆ after`` edge-wise (self-loops make this invariant)."""
    before = np.asarray(before, dtype=np.bool_)
    after = np.asarray(after, dtype=np.bool_)
    return bool((~before | after).all())


def matrix_key(a: np.ndarray) -> bytes:
    """A hashable, compact key for a boolean matrix (row-major packed bits).

    Used as the memoization key of the exact game solver.  The node count
    must be carried separately by the caller (packing pads to bytes).
    """
    arr = np.asarray(a, dtype=np.bool_)
    return np.packbits(arr, axis=None).tobytes()


def key_to_matrix(key: bytes, n: int) -> np.ndarray:
    """Inverse of :func:`matrix_key` given the node count."""
    bits = np.unpackbits(np.frombuffer(key, dtype=np.uint8), count=n * n)
    return bits.astype(np.bool_).reshape(n, n)


def permute_matrix(a: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Apply a simultaneous row/column relabeling.

    ``perm[i]`` is the new name of node ``i``; the returned matrix ``B``
    satisfies ``B[perm[x], perm[y]] = A[x, y]``.
    """
    a = np.asarray(a, dtype=np.bool_)
    n = a.shape[0]
    inv = np.empty(n, dtype=np.int64)
    inv[np.asarray(perm, dtype=np.int64)] = np.arange(n)
    return a[np.ix_(inv, inv)]


def canonical_key(a: np.ndarray, perms: Optional[np.ndarray] = None) -> bytes:
    """Lexicographically-minimal :func:`matrix_key` over node relabelings.

    ``perms`` may carry a precomputed ``(k, n)`` array of permutations
    (typically all ``n!`` for exact small-``n`` work); by default all
    permutations are generated, which is only sensible for ``n <= 7``.
    Collapsing states by symmetry keeps the exact solver's memo table small:
    the broadcast game is invariant under relabeling nodes.
    """
    a = np.asarray(a, dtype=np.bool_)
    n = a.shape[0]
    if perms is None:
        perms = all_permutations(n)
    best: Optional[bytes] = None
    for perm in perms:
        key = matrix_key(permute_matrix(a, perm))
        if best is None or key < best:
            best = key
    assert best is not None
    return best


def all_permutations(n: int) -> np.ndarray:
    """All ``n!`` permutations of ``range(n)`` as an ``(n!, n)`` array."""
    from itertools import permutations

    if n > 8:
        raise InvalidGraphError(
            f"refusing to materialize {n}! permutations; canonicalization is "
            "meant for small n"
        )
    return np.array(list(permutations(range(n))), dtype=np.int64)
