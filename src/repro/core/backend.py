"""Pluggable matrix backends for the product-graph kernels.

Every hot operation of the model -- composing the product graph with a
round tree, counting reach sets, detecting broadcasters -- runs through a
:class:`MatrixBackend`.  Two implementations ship with the library:

* ``dense`` (:class:`DenseBackend`, this module) -- the original
  ``np.bool_`` ``(n, n)`` matrices, delegating to :mod:`repro.core.matrix`;
* ``bitset`` (:class:`~repro.core.bitset.BitsetBackend`) -- rows packed
  64-to-a-word into ``uint64`` so the same kernels run word-parallel,
  roughly ``64x`` less memory traffic per round.

Backends operate on *opaque matrix handles*: a dense handle is a boolean
``(n, n)`` array, a bitset handle is a ``(n, words)`` ``uint64`` array.
Callers that need a plain boolean matrix convert explicitly via
:meth:`MatrixBackend.to_dense`.  Batched variants of the kernels stack a
leading run axis (``(B, n, n)`` / ``(B, n, words)``) and advance ``B``
independent runs in one vectorized step; :class:`repro.engine.batch.BatchRunner`
builds on them.

Selection
---------
The process-wide default comes from, in priority order:

1. :func:`set_default_backend` / the :func:`use_backend` context manager;
2. the ``REPRO_BACKEND`` environment variable (``dense`` or ``bitset``);
3. ``dense``.

APIs that create state (:class:`~repro.core.state.BroadcastState`,
:func:`~repro.core.broadcast.run_sequence`, ...) also accept an explicit
``backend=`` argument (a name or a backend instance).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.errors import BackendError, DimensionMismatchError

#: Environment variable consulted when no default backend was set in-process.
ENV_VAR = "REPRO_BACKEND"


class MatrixBackend:
    """Abstract interface every matrix backend implements.

    A *handle* (``mat``) is whatever array layout the backend uses for one
    reflexive boolean matrix over ``n`` nodes; a *batch handle* (``bmat``)
    stacks ``B`` of them along a leading axis.  Handles must always be
    obtained from this interface (``identity`` / ``from_dense`` / ``copy`` /
    the compose kernels) and are only meaningful to the backend that made
    them.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    # -- construction / conversion ------------------------------------

    def identity(self, n: int) -> np.ndarray:
        """Handle for the identity matrix (``G(0)``)."""
        raise NotImplementedError

    def from_dense(self, dense: np.ndarray) -> np.ndarray:
        """Handle holding a copy of a boolean ``(n, n)`` matrix."""
        raise NotImplementedError

    def to_dense(self, mat: np.ndarray) -> np.ndarray:
        """Fresh boolean ``(n, n)`` matrix with the handle's contents."""
        raise NotImplementedError

    def copy(self, mat: np.ndarray) -> np.ndarray:
        """Independent copy of a handle."""
        return mat.copy()

    def dense_view(self, mat: np.ndarray) -> np.ndarray:
        """Dense boolean matrix for read paths; MAY share storage.

        The dense backend returns a live view; packed backends fall back
        to a fresh conversion.  Callers must not mutate the result.
        """
        return self.to_dense(mat)

    # -- single-run kernels -------------------------------------------

    def compose_with_tree(self, mat: np.ndarray, parent: np.ndarray) -> np.ndarray:
        """New handle for ``R ∘ (tree + self-loops)`` (Definition 2.1)."""
        raise NotImplementedError

    def compose_with_tree_inplace(self, mat: np.ndarray, parent: np.ndarray) -> np.ndarray:
        """In-place variant of :meth:`compose_with_tree`; returns ``mat``."""
        raise NotImplementedError

    def compose_with_graph(self, mat: np.ndarray, dense_graph: np.ndarray) -> np.ndarray:
        """Compose with an arbitrary dense round graph (``A ∘ G``).

        Only the nonsplit experiments take this path, so the default
        implementation routes through dense boolean matmul.
        """
        from repro.core import matrix as M

        return self.from_dense(M.bool_product(self.to_dense(mat), dense_graph))

    def or_gather(
        self, mat: np.ndarray, other: np.ndarray, parents: np.ndarray
    ) -> np.ndarray:
        """New handle ``A | (B ∘ J)`` for the jump-pointer squaring ladder.

        ``parents`` is an ``(n,)`` int64 jump array; in heard-of terms the
        result is ``heard'[y] = heard_A[y] | heard_B[parents[y]]``.  With
        ``other is mat`` and ``parents`` a tree's parent row this equals
        :meth:`compose_with_tree`; :func:`repro.core.kernels.static_completion_search`
        uses the two-operand form to combine precomputed tree powers.
        The default routes through dense; both shipped backends override
        with a one-expression gather + OR.
        """
        a = self.to_dense(mat)
        b = self.to_dense(other)
        return self.from_dense(a | b[:, parents])

    def reach_sizes(self, mat: np.ndarray) -> np.ndarray:
        """Row sums: how many nodes each process has reached."""
        raise NotImplementedError

    def heard_of_sizes(self, mat: np.ndarray) -> np.ndarray:
        """Column sums: how many processes reached each node."""
        raise NotImplementedError

    def full_rows(self, mat: np.ndarray) -> np.ndarray:
        """Boolean ``(n,)`` vector marking rows that are all-ones."""
        raise NotImplementedError

    def has_broadcaster(self, mat: np.ndarray) -> bool:
        """True iff some row is all-ones (Definition 2.2's event)."""
        return bool(self.full_rows(mat).any())

    def broadcasters(self, mat: np.ndarray) -> Tuple[int, ...]:
        """All full-row nodes, ascending."""
        return tuple(int(v) for v in np.nonzero(self.full_rows(mat))[0])

    def edge_count(self, mat: np.ndarray) -> int:
        """Total number of edges, self-loops included."""
        raise NotImplementedError

    def row(self, mat: np.ndarray, x: int) -> np.ndarray:
        """Row ``x`` (the reach set of ``x``) as a boolean vector."""
        raise NotImplementedError

    def col(self, mat: np.ndarray, y: int) -> np.ndarray:
        """Column ``y`` (the heard-of set of ``y``) as a boolean vector."""
        raise NotImplementedError

    def gains_under(self, mat: np.ndarray, parent: np.ndarray) -> np.ndarray:
        """Per-node count of new nodes gained if the tree were played."""
        raise NotImplementedError

    def equal(self, a: np.ndarray, b: np.ndarray) -> bool:
        """True iff two handles hold the same matrix."""
        return a.shape == b.shape and bool((a == b).all())

    def matrix_key(self, mat: np.ndarray) -> bytes:
        """Hashable key; identical across backends for the same matrix."""
        from repro.core import matrix as M

        return M.matrix_key(self.to_dense(mat))

    # -- batched kernels (leading run axis) ---------------------------

    def identity_batch(self, batch: int, n: int) -> np.ndarray:
        """Batch handle: ``batch`` copies of the identity."""
        return np.repeat(self.identity(n)[None, ...], batch, axis=0)

    def stack(self, mats: List[np.ndarray]) -> np.ndarray:
        """Batch handle from a list of single-run handles (copies)."""
        return np.stack(mats, axis=0)

    def batch_compose_inplace(self, bmat: np.ndarray, parents: np.ndarray) -> np.ndarray:
        """Advance run ``b`` by the tree ``parents[b]``, for all ``b`` at once.

        ``parents`` is ``(B, n)`` int64; ``parents[b, y] == y`` everywhere
        encodes "no tree this round" (composing with self-loops only is a
        no-op), which is how ragged batches are padded.
        """
        raise NotImplementedError

    def batch_compose_from(self, mat: np.ndarray, parents: np.ndarray) -> np.ndarray:
        """Successors of ONE state under ``C`` candidate trees at once.

        Returns a ``(C, ...)`` batch handle; ``parents`` is ``(C, n)``.
        This is the kernel behind batched greedy/beam scoring.
        """
        raise NotImplementedError

    def batch_reach_sizes(self, bmat: np.ndarray) -> np.ndarray:
        """``(B, n)`` row sums for every run."""
        raise NotImplementedError

    def batch_full_rows(self, bmat: np.ndarray) -> np.ndarray:
        """``(B, n)`` boolean: full rows per run."""
        raise NotImplementedError

    def batch_has_broadcaster(self, bmat: np.ndarray) -> np.ndarray:
        """``(B,)`` boolean: which runs have completed broadcast."""
        return self.batch_full_rows(bmat).any(axis=1)

    def batch_edge_count(self, bmat: np.ndarray) -> np.ndarray:
        """``(B,)`` int64 edge counts."""
        raise NotImplementedError

    def slice_run(self, bmat: np.ndarray, b: int) -> np.ndarray:
        """Single-run handle for run ``b`` -- a VIEW into the batch."""
        return bmat[b]


class DenseBackend(MatrixBackend):
    """The original representation: boolean ``(n, n)`` numpy matrices."""

    name = "dense"

    def identity(self, n: int) -> np.ndarray:
        return np.eye(n, dtype=np.bool_)

    def from_dense(self, dense: np.ndarray) -> np.ndarray:
        return np.array(dense, dtype=np.bool_)

    def to_dense(self, mat: np.ndarray) -> np.ndarray:
        return mat.copy()

    def dense_view(self, mat: np.ndarray) -> np.ndarray:
        return mat.view()

    def compose_with_graph(self, mat: np.ndarray, dense_graph: np.ndarray) -> np.ndarray:
        from repro.core import kernels
        from repro.core import matrix as M

        g = M.validate_adjacency(dense_graph)
        if g.shape[0] != mat.shape[0]:
            raise DimensionMismatchError(
                f"cannot compose graphs over {mat.shape[0]} and {g.shape[0]} nodes"
            )
        return kernels.graph_compose(self, mat, g)

    def compose_with_tree(self, mat: np.ndarray, parent: np.ndarray) -> np.ndarray:
        return mat | mat[:, parent]

    def or_gather(
        self, mat: np.ndarray, other: np.ndarray, parents: np.ndarray
    ) -> np.ndarray:
        return mat | other[:, parents]

    def compose_with_tree_inplace(self, mat: np.ndarray, parent: np.ndarray) -> np.ndarray:
        np.logical_or(mat, mat[:, parent], out=mat)
        return mat

    def reach_sizes(self, mat: np.ndarray) -> np.ndarray:
        return mat.sum(axis=1, dtype=np.int64)

    def heard_of_sizes(self, mat: np.ndarray) -> np.ndarray:
        return mat.sum(axis=0, dtype=np.int64)

    def full_rows(self, mat: np.ndarray) -> np.ndarray:
        return mat.all(axis=1)

    def edge_count(self, mat: np.ndarray) -> int:
        return int(mat.sum())

    def row(self, mat: np.ndarray, x: int) -> np.ndarray:
        return mat[x].copy()

    def col(self, mat: np.ndarray, y: int) -> np.ndarray:
        return mat[:, y].copy()

    def gains_under(self, mat: np.ndarray, parent: np.ndarray) -> np.ndarray:
        gains = mat[:, parent] & ~mat
        return gains.sum(axis=1, dtype=np.int64)

    def batch_compose_inplace(self, bmat: np.ndarray, parents: np.ndarray) -> np.ndarray:
        idx = np.broadcast_to(parents[:, None, :], bmat.shape)
        gathered = np.take_along_axis(bmat, idx, axis=2)
        np.logical_or(bmat, gathered, out=bmat)
        return bmat

    def batch_compose_from(self, mat: np.ndarray, parents: np.ndarray) -> np.ndarray:
        # mat[:, parents] is (n, C, n) with [x, c, y] = mat[x, parents[c, y]].
        return mat[None, :, :] | mat[:, parents].transpose(1, 0, 2)

    def batch_reach_sizes(self, bmat: np.ndarray) -> np.ndarray:
        return bmat.sum(axis=2, dtype=np.int64)

    def batch_full_rows(self, bmat: np.ndarray) -> np.ndarray:
        return bmat.all(axis=2)

    def batch_edge_count(self, bmat: np.ndarray) -> np.ndarray:
        return bmat.sum(axis=(1, 2), dtype=np.int64)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

BackendLike = Union[str, MatrixBackend, None]

_REGISTRY: Dict[str, MatrixBackend] = {}
_default_name: Optional[str] = None


def register_backend(backend: MatrixBackend) -> MatrixBackend:
    """Add a backend instance to the registry (keyed by ``backend.name``)."""
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_REGISTRY))


def default_backend_name() -> str:
    """The name the next :func:`get_backend` call would resolve to."""
    if _default_name is not None:
        return _default_name
    return os.environ.get(ENV_VAR, "dense")


def set_default_backend(name: Optional[str]) -> None:
    """Set the process-wide default backend (``None`` re-enables the env var)."""
    if name is not None and name not in _REGISTRY:
        raise BackendError(
            f"unknown backend {name!r}; available: {available_backends()}"
        )
    global _default_name
    _default_name = name


def get_backend(spec: BackendLike = None) -> MatrixBackend:
    """Resolve a backend from a name, an instance, or the default chain."""
    if isinstance(spec, MatrixBackend):
        return spec
    name = spec if spec is not None else default_backend_name()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None


@contextmanager
def use_backend(spec: BackendLike) -> Iterator[MatrixBackend]:
    """Temporarily make ``spec`` the default backend (for tests and sweeps)."""
    backend = get_backend(spec)
    global _default_name
    saved = _default_name
    _default_name = backend.name
    try:
        yield backend
    finally:
        _default_name = saved


register_backend(DenseBackend())

# The bitset backend registers itself on import; importing it here keeps a
# single registry entry point without a circular import (bitset only needs
# MatrixBackend and numpy).
from repro.core import bitset as _bitset  # noqa: E402  (registry side effect)

__all__ = [
    "ENV_VAR",
    "MatrixBackend",
    "DenseBackend",
    "register_backend",
    "available_backends",
    "default_backend_name",
    "set_default_backend",
    "get_backend",
    "use_backend",
]
