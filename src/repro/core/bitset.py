"""Word-packed bitset backend: 64 matrix entries per ``uint64`` word.

Layout
------
The dense model matrix ``R`` has ``R[x, y] = 1`` iff ``x`` has reached
``y``.  The bitset handle stores the *transpose*, packed: row ``y`` of the
handle is the heard-of set of ``y`` -- a bitset over sources ``x`` -- laid
out little-endian in ``words = ceil(n / 64)`` ``uint64`` words, so a
handle is a ``(n, words)`` ``uint64`` array.  Bits ``n .. 64*words-1``
(the padding) are kept zero by every kernel.

Why the transpose?  Composing with a round tree is, column-wise,
``R'[:, y] = R[:, y] | R[:, parent[y]]`` -- in heard-of space that is
``heard'[y] = heard[y] | heard[parent[y]]``, a *whole-word* OR of two
packed rows selected by a parent gather:

    ``packed | packed[parent]``

one vectorized numpy expression touching ``n * words`` words instead of
``n * n`` bools -- the 64x memory-traffic reduction this backend exists
for.  The broadcast-complete check is equally word-parallel: node ``x``
is a broadcaster iff bit ``x`` survives an AND-reduction of all packed
rows (``x`` is in everyone's heard-of set).

Quantities that genuinely need per-source counts (reach sizes) unpack to
bytes first; they stay vectorized but are O(n^2 / 8) -- still well ahead
of dense, and off the critical path of a plain broadcast run.

The platform is assumed little-endian (x86-64, arm64) so that a
``uint64`` view of ``np.packbits(..., bitorder="little")`` output keeps
bit ``x`` at word ``x // 64``, position ``x % 64``.
"""

from __future__ import annotations

import sys
from typing import Tuple

import numpy as np

from repro.core.backend import MatrixBackend, register_backend
from repro.errors import DimensionMismatchError

#: Bits per storage word.
WORD_BITS = 64

# np.bitwise_count is numpy >= 2.0; fall back to a byte LUT otherwise.
if hasattr(np, "bitwise_count"):
    def _popcount(words: np.ndarray) -> np.ndarray:
        return np.bitwise_count(words)
else:  # pragma: no cover - exercised only on numpy < 2.0
    _POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def _popcount(words: np.ndarray) -> np.ndarray:
        by = words.view(np.uint8).reshape(words.shape + (8,))
        return _POP8[by].sum(axis=-1, dtype=np.uint64)


def words_for(n: int) -> int:
    """Number of ``uint64`` words needed to hold ``n`` bits."""
    return (n + WORD_BITS - 1) // WORD_BITS


def _unpack_bits(packed: np.ndarray, n: int) -> np.ndarray:
    """Unpack the trailing word axis to ``n`` bits (uint8 0/1).

    ``packed`` is ``(..., words)`` uint64; the result is ``(..., n)``.
    """
    contiguous = np.ascontiguousarray(packed)
    by = contiguous.view(np.uint8).reshape(contiguous.shape[:-1] + (-1,))
    return np.unpackbits(by, axis=-1, count=n, bitorder="little")


#: Byte budget for the masked ``(chunk, n, words)`` uint64 temporary of
#: :func:`bool_product_words`.  The old heuristic divided ``1 << 22`` by
#: the *element* count, so the temporary actually peaked at 8x the bytes
#: the docstring promised; sizing by bytes makes the bound real.
OR_CHUNK_BYTES = 1 << 25


def or_chunk_rows(n: int, words: int) -> int:
    """Output rows per :func:`bool_product_words` chunk under the budget."""
    return max(1, OR_CHUNK_BYTES // max(1, n * words * 8))


def bool_product_words(mat: np.ndarray, dense_graph: np.ndarray) -> np.ndarray:
    """Word-parallel ``R ∘ G`` for a packed handle and a dense round graph.

    ``(x, y) ∈ R ∘ G`` iff some ``z`` has ``R[x, z]`` and ``G[z, y]``; in
    heard-of space that is ``heard'[y] = OR over {z : G[z, y]} of heard[z]``
    -- an OR-reduction of whole packed rows selected by column ``y`` of
    ``G``, replacing the dense boolean matmul with ``n³/64`` word ops.
    The reduction is chunked over ``y`` so the masked ``(chunk, n, words)``
    temporary stays within :data:`OR_CHUNK_BYTES` at any ``n``.
    """
    n, words = mat.shape
    g = np.asarray(dense_graph, dtype=np.bool_)
    out = np.zeros_like(mat)
    rows_in = g.T[:, :, None]  # (y, z, 1): which heard[z] feed result row y
    chunk = or_chunk_rows(n, words)
    for start in range(0, n, chunk):
        stop = min(n, start + chunk)
        sel = np.where(rows_in[start:stop], mat[None, :, :], np.uint64(0))
        np.bitwise_or.reduce(sel, axis=1, out=out[start:stop])
    return out


class BitsetBackend(MatrixBackend):
    """Matrix backend over ``(n, words)`` ``uint64`` packed heard-of sets."""

    name = "bitset"

    # -- construction / conversion ------------------------------------

    def identity(self, n: int) -> np.ndarray:
        mat = np.zeros((n, words_for(n)), dtype=np.uint64)
        idx = np.arange(n)
        mat[idx, idx // WORD_BITS] = np.left_shift(
            np.uint64(1), (idx % WORD_BITS).astype(np.uint64)
        )
        return mat

    def from_dense(self, dense: np.ndarray) -> np.ndarray:
        dense = np.asarray(dense, dtype=np.bool_)
        n = dense.shape[0]
        heard = dense.T  # row y = heard-of set of y, bits over x
        pad = words_for(n) * WORD_BITS - n
        if pad:
            heard = np.concatenate(
                [heard, np.zeros((n, pad), dtype=np.bool_)], axis=1
            )
        packed = np.packbits(heard, axis=1, bitorder="little")
        return np.ascontiguousarray(packed).view(np.uint64)

    def to_dense(self, mat: np.ndarray) -> np.ndarray:
        n = mat.shape[0]
        return _unpack_bits(mat, n).T.astype(np.bool_)

    # -- single-run kernels -------------------------------------------

    def compose_with_tree(self, mat: np.ndarray, parent: np.ndarray) -> np.ndarray:
        return mat | mat[parent]

    def compose_with_graph(self, mat: np.ndarray, dense_graph: np.ndarray) -> np.ndarray:
        from repro.core import kernels
        from repro.core import matrix as M

        g = M.validate_adjacency(dense_graph)
        if g.shape[0] != mat.shape[0]:
            raise DimensionMismatchError(
                f"cannot compose graphs over {mat.shape[0]} and {g.shape[0]} nodes"
            )
        return kernels.graph_compose(self, mat, g)

    def compose_with_tree_inplace(self, mat: np.ndarray, parent: np.ndarray) -> np.ndarray:
        # mat[parent] is a fancy-indexed copy, so writing into mat is safe.
        np.bitwise_or(mat, mat[parent], out=mat)
        return mat

    def or_gather(
        self, mat: np.ndarray, other: np.ndarray, parents: np.ndarray
    ) -> np.ndarray:
        return mat | other[parents]

    def _full_row_words(self, mat: np.ndarray) -> np.ndarray:
        """AND over all heard-of sets: bit ``x`` set iff row ``x`` is full."""
        return np.bitwise_and.reduce(mat, axis=0)

    def reach_sizes(self, mat: np.ndarray) -> np.ndarray:
        n = mat.shape[0]
        return _unpack_bits(mat, n).sum(axis=0, dtype=np.int64)

    def heard_of_sizes(self, mat: np.ndarray) -> np.ndarray:
        return _popcount(mat).sum(axis=1, dtype=np.int64)

    def full_rows(self, mat: np.ndarray) -> np.ndarray:
        n = mat.shape[0]
        return _unpack_bits(self._full_row_words(mat), n).astype(np.bool_)

    def has_broadcaster(self, mat: np.ndarray) -> bool:
        return bool(self._full_row_words(mat).any())

    def broadcasters(self, mat: np.ndarray) -> Tuple[int, ...]:
        return tuple(int(v) for v in np.nonzero(self.full_rows(mat))[0])

    def edge_count(self, mat: np.ndarray) -> int:
        return int(_popcount(mat).sum())

    def row(self, mat: np.ndarray, x: int) -> np.ndarray:
        word, bit = divmod(x, WORD_BITS)
        return ((mat[:, word] >> np.uint64(bit)) & np.uint64(1)).astype(np.bool_)

    def col(self, mat: np.ndarray, y: int) -> np.ndarray:
        n = mat.shape[0]
        return _unpack_bits(mat[y], n).astype(np.bool_)

    def gains_under(self, mat: np.ndarray, parent: np.ndarray) -> np.ndarray:
        n = mat.shape[0]
        new_bits = mat[parent] & ~mat
        return _unpack_bits(new_bits, n).sum(axis=0, dtype=np.int64)

    # -- batched kernels ----------------------------------------------

    def batch_compose_inplace(self, bmat: np.ndarray, parents: np.ndarray) -> np.ndarray:
        gathered = np.take_along_axis(bmat, parents[:, :, None], axis=1)
        np.bitwise_or(bmat, gathered, out=bmat)
        return bmat

    def batch_compose_from(self, mat: np.ndarray, parents: np.ndarray) -> np.ndarray:
        # mat[parents] is (C, n, words): run c's gather of parent rows.
        return mat[None, :, :] | mat[parents]

    def batch_reach_sizes(self, bmat: np.ndarray) -> np.ndarray:
        n = bmat.shape[1]
        bits = _unpack_bits(bmat, n)
        if n < (1 << 16):
            # Row counts are <= n, so a uint16 accumulator is exact and
            # halves the hot loop's write traffic vs int64.
            return bits.sum(axis=1, dtype=np.uint16).astype(np.int64)
        return bits.sum(axis=1, dtype=np.int64)

    def batch_full_rows(self, bmat: np.ndarray) -> np.ndarray:
        n = bmat.shape[1]
        acc = np.bitwise_and.reduce(bmat, axis=1)
        return _unpack_bits(acc, n).astype(np.bool_)

    def batch_has_broadcaster(self, bmat: np.ndarray) -> np.ndarray:
        return np.bitwise_and.reduce(bmat, axis=1).any(axis=1)

    def batch_edge_count(self, bmat: np.ndarray) -> np.ndarray:
        return _popcount(bmat).sum(axis=(1, 2), dtype=np.int64)


# On a big-endian host the uint64 view of packbits(bitorder="little")
# output would scramble bit positions and silently compute wrong results;
# leave the backend unregistered there so requesting it fails loudly.
if sys.byteorder == "little":
    register_backend(BitsetBackend())
    # The optional numba backend shares this packed layout; its module
    # registers itself only when numba is importable (no hard dependency).
    from repro.core import backend_numba as _backend_numba  # noqa: E402,F401

__all__ = [
    "OR_CHUNK_BYTES",
    "WORD_BITS",
    "BitsetBackend",
    "bool_product_words",
    "or_chunk_rows",
    "words_for",
]
