"""Exact broadcast game values by exhaustive minimax.

Definition 2.3's ``t*(T_n)`` is the value of a single-player maximization
game: from the identity product graph, the adversary repeatedly picks any
rooted tree; the game ends when some row fills.  Because round graphs carry
self-loops, states grow monotonically and every tree strictly grows the
root's row (Lemma R), so the state space is a finite DAG and plain memoized
DFS computes the exact value.

Representation and optimizations
--------------------------------
* A state is a tuple of ``n`` row bitmasks (``rows[x]`` bit ``y`` set iff
  ``x`` reached ``y``).
* Composition with a tree is a per-row table lookup: for each tree a table
  ``new_row = table[row]`` over all ``2^n`` row values is precomputed
  (``new_row = row | {c : parent(c) ∈ row}`` depends on the row only).
* Successors are deduplicated, then reduced to their ⊆-minimal antichain:
  the game value is antitone in the state (more edges can only finish
  sooner), so dominated successors are pruned.
* Memoization keys are canonicalized under simultaneous node relabeling
  (the game is label-invariant); per-permutation bit tables make the
  canonical key a handful of lookups.

Feasibility: |T_n| = n^(n-1) trees per state -- exact for n <= 5 in
seconds/minutes, n = 6 only with generous budgets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import permutations as iter_permutations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SearchBudgetExceeded
from repro.trees.enumerate import MAX_ENUMERABLE_N, all_parent_arrays
from repro.trees.rooted_tree import RootedTree
from repro.types import validate_node_count

State = Tuple[int, ...]


@dataclass
class ExactResult:
    """Outcome of an exact solve.

    Attributes
    ----------
    n: number of processes.
    t_star: the exact game value ``t*(T_n)``.
    states_explored: number of distinct (canonical) states memoized.
    tree_count: ``|T_n| = n^(n-1)``.
    elapsed_seconds: wall-clock solve time.
    optimal_trees: an optimal adversary sequence witnessing ``t_star``
        (filled by :meth:`ExactGameSolver.optimal_sequence`).
    """

    n: int
    t_star: int
    states_explored: int
    tree_count: int
    elapsed_seconds: float
    optimal_trees: List[RootedTree] = field(default_factory=list)


class ExactGameSolver:
    """Exhaustive solver for the dynamic-rooted-tree broadcast game.

    Parameters
    ----------
    n:
        Number of processes (2 .. :data:`MAX_ENUMERABLE_N`; practical
        budgets stop around 5).
    canonicalize:
        Collapse states under node relabeling.  Shrinks the memo table by
        up to ``n!`` at the cost of computing canonical keys; worthwhile
        for ``n >= 4``.
    max_states:
        Budget on distinct memoized states; exceeded ->
        :class:`SearchBudgetExceeded`.
    """

    def __init__(
        self,
        n: int,
        canonicalize: bool = True,
        max_states: int = 5_000_000,
    ) -> None:
        validate_node_count(n)
        if n < 2:
            raise ValueError("the game needs at least two processes")
        if n > MAX_ENUMERABLE_N:
            raise SearchBudgetExceeded(
                f"n={n} needs {n}^{n-1} trees per state; max supported is "
                f"{MAX_ENUMERABLE_N}"
            )
        self._n = n
        self._full = (1 << n) - 1
        self._canonicalize = canonicalize
        self._max_states = max_states
        self._parent_arrays: List[Tuple[int, ...]] = list(all_parent_arrays(n))
        self._tree_tables: List[List[int]] = [
            self._build_tree_table(pa) for pa in self._parent_arrays
        ]
        self._perm_specs: List[Tuple[Tuple[int, ...], List[int]]] = (
            self._build_perm_specs() if canonicalize else []
        )
        self._memo: Dict[State, int] = {}
        self._canon_cache: Dict[State, State] = {}

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------

    def _build_tree_table(self, parents: Sequence[int]) -> List[int]:
        """table[row] = row | {c : parents[c] ∈ row} over all 2^n rows."""
        n = self._n
        table = [0] * (1 << n)
        for row in range(1 << n):
            new = row
            for c in range(n):
                p = parents[c]
                if p != c and (row >> p) & 1:
                    new |= 1 << c
            table[row] = new
        return table

    def _build_perm_specs(self) -> List[Tuple[Tuple[int, ...], List[int]]]:
        """For each permutation π: (π itself, bit-relabeling table).

        Relabeling a state by π: new_rows[π[x]] = bitperm(rows[x]) where
        bitperm moves bit y to bit π[y].
        """
        n = self._n
        specs: List[Tuple[Tuple[int, ...], List[int]]] = []
        for perm in iter_permutations(range(n)):
            table = [0] * (1 << n)
            for row in range(1 << n):
                out = 0
                rem = row
                while rem:
                    y = (rem & -rem).bit_length() - 1
                    out |= 1 << perm[y]
                    rem &= rem - 1
                table[row] = out
            specs.append((perm, table))
        return specs

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------

    def initial_state(self) -> State:
        """The identity state: each process knows only itself."""
        return tuple(1 << x for x in range(self._n))

    def is_finished(self, state: State) -> bool:
        """True iff some row is full (broadcast complete)."""
        full = self._full
        return any(row == full for row in state)

    def apply_tree_index(self, state: State, tree_index: int) -> State:
        """Compose ``state`` with the ``tree_index``-th enumerated tree."""
        table = self._tree_tables[tree_index]
        return tuple(table[row] for row in state)

    def successors(self, state: State) -> List[State]:
        """Deduplicated, ⊆-minimal successor states of one round."""
        unique = {
            tuple(table[row] for row in state) for table in self._tree_tables
        }
        return _minimal_antichain(list(unique))

    def canonical(self, state: State) -> State:
        """Lexicographically minimal relabeling of ``state``."""
        if not self._canonicalize:
            return state
        cached = self._canon_cache.get(state)
        if cached is not None:
            return cached
        n = self._n
        best: Optional[State] = None
        for perm, table in self._perm_specs:
            out = [0] * n
            for x in range(n):
                out[perm[x]] = table[state[x]]
            cand = tuple(out)
            if best is None or cand < best:
                best = cand
        assert best is not None
        self._canon_cache[state] = best
        return best

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def value(self, state: State) -> int:
        """Exact number of further rounds the adversary can force.

        0 when ``state`` already contains a broadcaster.
        """
        if self.is_finished(state):
            return 0
        key = self.canonical(state)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        # Iterative DFS with an explicit stack (depth can reach ~n²).
        # Frames are [state, canonical_key, pending_successors, best_so_far];
        # a successor is only *peeked* until its value is memoized, so its
        # contribution is folded into ``best`` when the frame resumes.
        stack: List[List] = [[state, key, self.successors(state), 0]]
        while stack:
            frame = stack[-1]
            _cur, cur_key, succs, best = frame
            descended = False
            while succs:
                nxt = succs[-1]
                if self.is_finished(nxt):
                    best = max(best, 1)
                    succs.pop()
                    continue
                nxt_key = self.canonical(nxt)
                nxt_val = self._memo.get(nxt_key)
                if nxt_val is None:
                    frame[3] = best
                    stack.append([nxt, nxt_key, self.successors(nxt), 0])
                    descended = True
                    break
                best = max(best, 1 + nxt_val)
                succs.pop()
            if descended:
                continue
            if len(self._memo) >= self._max_states:
                raise SearchBudgetExceeded(
                    f"exact solver exceeded max_states={self._max_states}",
                    len(self._memo),
                )
            self._memo[cur_key] = best
            stack.pop()
        return self._memo[key]

    def solve(self) -> ExactResult:
        """Compute ``t*(T_n)`` from the identity state."""
        start = time.perf_counter()
        t_star = self.value(self.initial_state())
        elapsed = time.perf_counter() - start
        return ExactResult(
            n=self._n,
            t_star=t_star,
            states_explored=len(self._memo),
            tree_count=len(self._parent_arrays),
            elapsed_seconds=elapsed,
        )

    def optimal_sequence(self) -> List[RootedTree]:
        """Replay an optimal adversary line from the identity state.

        Requires/triggers a full solve.  At each state the lowest-index
        tree achieving the memoized value is chosen, so the sequence is
        deterministic.
        """
        total = self.value(self.initial_state())
        seq: List[RootedTree] = []
        state = self.initial_state()
        remaining = total
        while remaining > 0:
            chosen = None
            for i in range(len(self._tree_tables)):
                nxt = self.apply_tree_index(state, i)
                nxt_val = 0 if self.is_finished(nxt) else self.value(nxt)
                if 1 + nxt_val == remaining:
                    chosen = (i, nxt)
                    break
            if chosen is None:  # pragma: no cover - would indicate a bug
                raise RuntimeError("no tree achieves the memoized game value")
            i, state = chosen
            seq.append(RootedTree(self._parent_arrays[i]))
            remaining -= 1
        assert self.is_finished(state)
        return seq


def _minimal_antichain(states: List[State]) -> List[State]:
    """Keep only ⊆-minimal states (value is antitone in the state)."""
    # Sort by total popcount: a state can only be dominated by one with
    # fewer or equal total bits.
    keyed = sorted(states, key=_total_bits)
    kept: List[State] = []
    for s in keyed:
        if not any(_subseteq(k, s) for k in kept):
            kept.append(s)
    return kept


def _total_bits(state: State) -> int:
    return sum(bin(row).count("1") for row in state)


def _subseteq(a: State, b: State) -> bool:
    """True iff state ``a``'s edge set is contained in ``b``'s."""
    return all((ra | rb) == rb for ra, rb in zip(a, b))


def exact_broadcast_time(n: int, max_states: int = 5_000_000) -> int:
    """Convenience wrapper: the exact ``t*(T_n)`` for small ``n``."""
    if n == 1:
        return 0
    solver = ExactGameSolver(n, max_states=max_states)
    return solver.solve().t_star
