"""The arc game: a clean combinatorial abstraction of cyclic-interval play.

When every reach set is a cyclic interval (see
:mod:`repro.analysis.intervals`) and the adversary plays rotated cyclic
paths, the broadcast game collapses to a token game on the cycle:

* each node ``x`` carries an arc ``A_x`` (initially the singleton ``{x}``);
* a **forward move at s** (the rotated path ``s, s+1, ..., s-1``) extends
  every arc by one at its right end, *except* arcs whose right end is
  ``s − 1`` (the path's last node has no out-edge);
* a **backward move at s** symmetrically extends left ends, freezing arcs
  whose left end is ``s + 1``;
* the game ends when some arc covers the whole cycle.

This module implements the abstraction (:class:`ArcState`, :func:`step`),
the exact value of the *restricted* game (:func:`arc_game_value`, paths
only), and the bridge back to the real model
(:func:`move_tree`, :func:`validate_abstraction`): applying the actual
rotated path through the matrix engine must produce exactly the predicted
arcs.

The restricted game's value is a *lower bound* on ``t*(T_n)`` but a
strictly weaker one than the chain-fan family achieves -- pure rotated
paths top out near ``n``, which is precisely why
:class:`~repro.adversaries.zeiner.CyclicFamilyAdversary` needs the fan
moves.  The solver here quantifies that gap (benchmark E8b's narrative).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.intervals import CyclicInterval, as_cyclic_interval
from repro.core.state import BroadcastState
from repro.errors import SearchBudgetExceeded
from repro.trees.generators import rotated_path
from repro.trees.rooted_tree import RootedTree
from repro.types import validate_node_count

#: A move: (backward?, start node s).
Move = Tuple[bool, int]

#: Compact arc-game state: per node, (start, length) of its arc.
ArcTuple = Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class ArcState:
    """Immutable arc-game state."""

    n: int
    arcs: Tuple[CyclicInterval, ...]

    @classmethod
    def initial(cls, n: int) -> "ArcState":
        """Every node's arc is its own singleton."""
        validate_node_count(n)
        return cls(n, tuple(CyclicInterval(n, x, 1) for x in range(n)))

    def is_finished(self) -> bool:
        """Some arc covers the cycle (a broadcaster exists)."""
        return any(a.is_full() for a in self.arcs)

    def key(self) -> ArcTuple:
        """Hashable representation."""
        return tuple((a.start, a.length) for a in self.arcs)

    def __str__(self) -> str:
        return " ".join(str(a) for a in self.arcs)


def step(state: ArcState, move: Move) -> ArcState:
    """Apply one arc-game move.

    Forward move at ``s``: every arc whose right end differs from
    ``s − 1 (mod n)`` extends right.  Backward move at ``s``: every arc
    whose left end differs from ``s + 1 (mod n)`` extends left.
    """
    backward, s = move
    n = state.n
    new_arcs: List[CyclicInterval] = []
    if backward:
        frozen_left = (s + 1) % n
        for a in state.arcs:
            if a.is_full() or a.start == frozen_left:
                new_arcs.append(a)
            else:
                new_arcs.append(a.extend_left())
    else:
        frozen_right = (s - 1) % n
        for a in state.arcs:
            if a.is_full() or a.end == frozen_right:
                new_arcs.append(a)
            else:
                new_arcs.append(a.extend_right())
    return ArcState(n, tuple(new_arcs))


def move_tree(n: int, move: Move) -> RootedTree:
    """The actual rooted tree realizing an arc-game move."""
    backward, s = move
    return rotated_path(n, s, backward=backward)


def all_moves(n: int) -> List[Move]:
    """The arc game's move set: 2n rotated paths."""
    return [(backward, s) for backward in (False, True) for s in range(n)]


def arc_game_value(n: int, max_states: int = 500_000) -> int:
    """Exact value of the restricted (rotated-paths-only) game.

    Memoized maximization over the 2n moves per state.  States are arcs
    per node, so the space is far smaller than the full game's; still,
    the ``max_states`` budget guards against surprises.
    """
    validate_node_count(n)
    if n == 1:
        return 0
    memo: Dict[ArcTuple, int] = {}
    moves = all_moves(n)

    def value(state: ArcState) -> int:
        if state.is_finished():
            return 0
        key = state.key()
        cached = memo.get(key)
        if cached is not None:
            return cached
        if len(memo) >= max_states:
            raise SearchBudgetExceeded(
                f"arc game exceeded max_states={max_states}", len(memo)
            )
        best = 0
        for move in moves:
            nxt = step(state, move)
            if nxt.key() == key:
                continue  # no-progress move would loop forever
            best = max(best, 1 + value(nxt))
        memo[key] = best
        return best

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10_000))
    try:
        return value(ArcState.initial(n))
    finally:
        sys.setrecursionlimit(old_limit)


def arc_game_optimal_sequence(n: int, max_states: int = 500_000) -> List[Move]:
    """An optimal move line of the restricted game (greedy on the memo)."""
    validate_node_count(n)
    total = arc_game_value(n, max_states=max_states)
    # Re-solve with a local memo shared via closure for replay.
    memo: Dict[ArcTuple, int] = {}
    moves = all_moves(n)

    def value(state: ArcState) -> int:
        if state.is_finished():
            return 0
        key = state.key()
        if key in memo:
            return memo[key]
        best = 0
        for move in moves:
            nxt = step(state, move)
            if nxt.key() == key:
                continue
            best = max(best, 1 + value(nxt))
        memo[key] = best
        return best

    seq: List[Move] = []
    state = ArcState.initial(n)
    remaining = value(state)
    assert remaining == total
    while remaining > 0:
        for move in moves:
            nxt = step(state, move)
            if nxt.key() == state.key():
                continue
            v = 0 if nxt.is_finished() else value(nxt)
            if 1 + v == remaining:
                seq.append(move)
                state = nxt
                remaining -= 1
                break
        else:  # pragma: no cover - would indicate a solver bug
            raise RuntimeError("no move achieves the memoized arc-game value")
    return seq


def validate_abstraction(n: int, moves: List[Move]) -> bool:
    """Check the abstraction against the real model, move by move.

    Plays the rotated paths through the matrix engine and verifies the
    reach sets equal the arcs the abstraction predicts.  Returns True on
    success; raises AssertionError with context on the first mismatch.
    """
    validate_node_count(n)
    arc_state = ArcState.initial(n)
    real_state = BroadcastState.initial(n)
    for i, move in enumerate(moves, start=1):
        arc_state = step(arc_state, move)
        real_state = real_state.apply_tree(move_tree(n, move))
        for x in range(n):
            predicted = arc_state.arcs[x].members()
            actual = real_state.reach_set(x)
            assert predicted == actual, (
                f"abstraction mismatch at move {i} ({move}), node {x}: "
                f"predicted {sorted(predicted)}, actual {sorted(actual)}"
            )
    return True
