"""Oblivious adversaries: strategies that never look at the state.

These are the baselines of Section 2 (a static tree -- in particular a
static path, giving ``t* = n - 1``) plus stochastic and cyclic mixes used
to exercise the engines and to populate the Theorem 3.1 verification
portfolio (every adversary, however it plays, must respect the upper
bound).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.adversaries.base import Adversary
from repro.core.state import BroadcastState
from repro.errors import AdversaryError
from repro.trees.generators import random_tree
from repro.trees.rooted_tree import RootedTree


class StaticTreeAdversary(Adversary):
    """Repeat one fixed tree forever.

    With a path this reproduces the paper's ``n - 1`` example; with a star
    broadcast finishes in one round -- the two extremes of static play.
    """

    def __init__(self, tree: RootedTree, name: Optional[str] = None) -> None:
        self._tree = tree
        self.name = name or f"Static[{tree.describe()}]"
        super().__init__()

    @property
    def tree(self) -> RootedTree:
        """The repeated round graph."""
        return self._tree

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        return self._tree

    def compile_schedule(self, n: int, rounds: int) -> Optional[np.ndarray]:
        from repro.trees.compile import static_schedule

        if self._tree.n != n:
            return None
        return static_schedule(self._tree, rounds)

    def compile_static_row(self, n: int) -> Optional[np.ndarray]:
        from repro.trees.compile import parent_row

        if self._tree.n != n:
            return None
        return parent_row(self._tree)


class RoundRobinAdversary(Adversary):
    """Cycle through a fixed list of trees, round-robin."""

    def __init__(self, trees: Sequence[RootedTree], name: Optional[str] = None) -> None:
        if not trees:
            raise AdversaryError("RoundRobinAdversary needs at least one tree")
        n = trees[0].n
        for t in trees:
            if t.n != n:
                raise AdversaryError("all round-robin trees must share n")
        self._trees = list(trees)
        self.name = name or f"RoundRobin[{len(trees)}]"
        super().__init__()

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        return self._trees[(round_index - 1) % len(self._trees)]

    def compile_schedule(self, n: int, rounds: int) -> Optional[np.ndarray]:
        from repro.trees.compile import cycle_schedule

        if self._trees[0].n != n:
            return None
        return cycle_schedule(self._trees, rounds)

    def compile_static_row(self, n: int) -> Optional[np.ndarray]:
        """A one-tree round robin is a static schedule."""
        from repro.trees.compile import parent_row

        if len(self._trees) != 1 or self._trees[0].n != n:
            return None
        return parent_row(self._trees[0])


class RandomTreeAdversary(Adversary):
    """Play an independent uniform random rooted tree each round.

    Deterministic given ``seed``: :meth:`reset` restores the initial RNG
    state so repeated runs reproduce exactly.
    """

    def __init__(self, n: int, seed: int = 0, name: Optional[str] = None) -> None:
        self._n = n
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self.name = name or f"RandomTree[seed={seed}]"
        super().__init__()

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        if state.n != self._n:
            raise AdversaryError(
                f"adversary built for n={self._n}, driven with n={state.n}"
            )
        return random_tree(self._n, rng=self._rng)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)
