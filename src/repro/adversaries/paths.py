"""Path-based adversary strategies.

Paths are the adversary's natural delaying tool: a static path realizes the
``n - 1`` broadcast time quoted in Section 2, and the known lower-bound
constructions are path-flavoured.  This module collects the path family:

* :class:`StaticPathAdversary` -- the paper's example;
* :class:`AlternatingPathAdversary` -- forward/backward path flips;
* :class:`RotatingPathAdversary` -- cyclic shifts of the path order;
* :class:`SortedPathAdversary` -- adaptive: order the path by current
  reach-set sizes;
* :class:`TwoPhaseFlipAdversary` -- run a path for ``round(alpha * n)``
  rounds, then hand over to a sorted path (the shape the lower-bound
  analysis suggests: build up staggered knowledge, then keep re-rooting so
  the most knowledgeable nodes stall).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.adversaries.base import Adversary
from repro.core.state import BroadcastState
from repro.errors import AdversaryError
from repro.trees.generators import path, path_from_order
from repro.trees.rooted_tree import RootedTree


class StaticPathAdversary(Adversary):
    """Repeat the identity path ``0 -> 1 -> ... -> n-1`` forever.

    Achieves ``t* = n - 1`` exactly (the root needs one round per hop).
    """

    def __init__(self, n: int) -> None:
        self._tree = path(n)
        self.name = f"StaticPath[n={n}]"
        super().__init__()

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        return self._tree

    def compile_schedule(self, n: int, rounds: int) -> Optional[np.ndarray]:
        from repro.trees.compile import static_schedule

        if self._tree.n != n:
            return None
        return static_schedule(self._tree, rounds)

    def compile_static_row(self, n: int) -> Optional[np.ndarray]:
        from repro.trees.compile import parent_row

        if self._tree.n != n:
            return None
        return parent_row(self._tree)


class AlternatingPathAdversary(Adversary):
    """Alternate between the forward and the reversed identity path.

    ``period`` controls how many rounds each direction is held.  A period
    of 1 flips every round.
    """

    def __init__(self, n: int, period: int = 1) -> None:
        if period < 1:
            raise AdversaryError(f"period must be >= 1, got {period}")
        self._fwd = path(n)
        self._bwd = path_from_order(list(range(n - 1, -1, -1)))
        self._period = period
        self.name = f"AlternatingPath[period={period}]"
        super().__init__()

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        block = (round_index - 1) // self._period
        return self._fwd if block % 2 == 0 else self._bwd

    def compile_schedule(self, n: int, rounds: int) -> Optional[np.ndarray]:
        from repro.trees.compile import cached_schedule, parent_row

        if self._fwd.n != n:
            return None

        def build() -> np.ndarray:
            rows = np.stack([parent_row(self._fwd), parent_row(self._bwd)])
            block = (np.arange(rounds, dtype=np.int64) // self._period) % 2
            return rows[block]

        return cached_schedule(
            ("alternating-path", n, self._period, rounds), build
        )


class RotatingPathAdversary(Adversary):
    """Play the path starting at ``(shift * t) mod n`` in round ``t``.

    The order in round ``t`` is the cyclic rotation
    ``s, s+1, ..., n-1, 0, ..., s-1`` with ``s = shift * (t-1) mod n``.
    Rotation keeps re-rooting the path, which forces a different node to be
    the (always-gaining) root each round.
    """

    def __init__(self, n: int, shift: int = 1) -> None:
        self._n = n
        self._shift = shift % max(n, 1)
        self.name = f"RotatingPath[shift={shift}]"
        super().__init__()

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        s = (self._shift * (round_index - 1)) % self._n
        order = [(s + i) % self._n for i in range(self._n)]
        return path_from_order(order)

    def compile_schedule(self, n: int, rounds: int) -> Optional[np.ndarray]:
        """Build the rotation rows directly in numpy, then cycle.

        The rotated path starting at ``s`` has ``parents[v] = (v-1) mod n``
        for every ``v != s`` and ``parents[s] = s``, so the whole period
        (``n / gcd(shift, n)`` distinct rotations) compiles without
        constructing a single tree -- this is what makes compiled rotating
        runs ~10x faster than the per-round ``RootedTree`` loop.
        """
        from math import gcd

        from repro.trees.compile import cached_schedule

        if self._n != n:
            return None

        def build() -> np.ndarray:
            period = self._n // gcd(self._shift, self._n) if self._shift else 1
            base = (np.arange(n, dtype=np.int64) - 1) % n
            distinct = np.tile(base, (period, 1))
            starts = (self._shift * np.arange(period, dtype=np.int64)) % n
            distinct[np.arange(period), starts] = starts
            return distinct[np.arange(rounds, dtype=np.int64) % period]

        return cached_schedule(("rotating-path", n, self._shift, rounds), build)

    def compile_static_row(self, n: int) -> Optional[np.ndarray]:
        """``shift % n == 0`` plays the same rotation every round."""
        from repro.trees.compile import parent_row

        if self._n != n or self._shift != 0:
            return None
        return parent_row(self.next_tree(None, 1))


class SortedPathAdversary(Adversary):
    """Adaptive path ordered by current reach-set sizes.

    With ``ascending=True`` the least-knowledgeable node roots the path and
    the most-knowledgeable node sits at the leaf end.  The intuition: a
    node stalls iff its reach set is a union of complete subtrees (Lemma S),
    and in a path the complete subtrees are the suffixes -- so placing a
    heavy node where its reach set forms a suffix freezes it.  Sorting by
    reach size is a cheap proxy for that alignment.

    Ties are broken by node index (deterministic) or by heard-of size when
    ``tie_break='column'``.
    """

    def __init__(
        self,
        n: int,
        ascending: bool = True,
        tie_break: str = "index",
    ) -> None:
        if tie_break not in ("index", "column"):
            raise AdversaryError(
                f"tie_break must be 'index' or 'column', got {tie_break!r}"
            )
        self._n = n
        self._ascending = ascending
        self._tie_break = tie_break
        direction = "asc" if ascending else "desc"
        self.name = f"SortedPath[{direction},{tie_break}]"
        super().__init__()

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        rows = state.reach_sizes()
        if self._tie_break == "column":
            cols = state.heard_of_sizes()
            keys = list(zip(rows.tolist(), cols.tolist(), range(self._n)))
        else:
            keys = list(zip(rows.tolist(), range(self._n), range(self._n)))
        keys.sort(reverse=not self._ascending)
        order = [k[-1] for k in keys]
        return path_from_order(order)


class TwoPhaseFlipAdversary(Adversary):
    """Phase 1: static path for ``round(alpha * n)`` rounds; phase 2: sorted path.

    ``alpha`` near 0.5 builds the staggered interval structure
    (``R_i = [i, i+t]``) the lower-bound constructions rely on before
    switching to adaptive stalling.  ``alpha = 0`` degenerates to
    :class:`SortedPathAdversary`, large ``alpha`` to
    :class:`StaticPathAdversary`.
    """

    def __init__(self, n: int, alpha: float = 0.5, ascending: bool = True) -> None:
        if alpha < 0:
            raise AdversaryError(f"alpha must be >= 0, got {alpha}")
        self._n = n
        self._phase1_rounds = int(round(alpha * n))
        self._alpha = alpha
        self._static = StaticPathAdversary(n)
        self._sorted = SortedPathAdversary(n, ascending=ascending)
        self.name = f"TwoPhaseFlip[alpha={alpha:g}]"
        super().__init__()

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        if round_index <= self._phase1_rounds:
            return self._static.next_tree(state, round_index)
        return self._sorted.next_tree(state, round_index)


def path_sorted_by(values: np.ndarray, ascending: bool = True) -> RootedTree:
    """Build a path ordered by an arbitrary per-node key vector.

    Helper shared by pool builders; ties break by node index.
    """
    n = len(values)
    idx = sorted(range(n), key=lambda v: (values[v], v))
    if not ascending:
        idx = idx[::-1]
    return path_from_order(idx)
