"""Restricted adversaries: k leaves / k inner nodes (Figure 1's O(kn) rows).

Zeiner, Schwarz, Schmid [14] prove broadcast time is linear when the
adversary may only play trees with a constant number of leaves, or a
constant number of inner nodes, in every round.  These adversaries realize
the restricted settings:

* :class:`KLeafAdversary` -- every round graph is a spider with exactly
  ``k`` legs (hence ``k`` leaves), adaptively ordered;
* :class:`KInnerAdversary` -- every round graph is a broom whose handle has
  exactly ``k`` nodes (hence ``k`` inner nodes), adaptively chosen.

The benchmark (E5) sweeps ``n`` for fixed ``k`` and checks the measured
broadcast times grow linearly, the claim behind Figure 1's ``O(kn)`` rows.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.adversaries.base import Adversary
from repro.core.state import BroadcastState
from repro.errors import AdversaryError
from repro.trees.rooted_tree import RootedTree


def spider_from_order(order: List[int], k: int) -> RootedTree:
    """Spider with ``k`` legs: ``order[0]`` is the center, the rest are dealt
    round-robin onto the legs in sequence."""
    n = len(order)
    center = order[0]
    parents = [0] * n
    parents[center] = center
    chains: List[int] = [center] * k  # last node of each leg so far
    for i, v in enumerate(order[1:]):
        leg = i % k
        parents[v] = chains[leg]
        chains[leg] = v
    return RootedTree(parents)


def broom_from_order(order: List[int], k: int) -> RootedTree:
    """Broom whose handle is ``order[:k]``; the rest hang off ``order[k-1]``."""
    n = len(order)
    parents = [0] * n
    parents[order[0]] = order[0]
    for a, b in zip(order[:k], order[1:k]):
        parents[b] = a
    for v in order[k:]:
        parents[v] = order[k - 1]
    return RootedTree(parents)


class KLeafAdversary(Adversary):
    """Adaptive adversary restricted to trees with exactly ``k`` leaves.

    Strategy: play the spider whose center is the least-heard-of node and
    whose legs receive nodes sorted by reach size ascending -- the spider
    analogue of the sorted-path heuristic.  For ``k = 1`` this degenerates
    to the sorted path itself.
    """

    def __init__(self, n: int, k: int) -> None:
        if n >= 2 and not 1 <= k <= n - 1:
            raise AdversaryError(f"k must be in [1, n-1]; got k={k}, n={n}")
        self._n = n
        self._k = k
        self.name = f"KLeaf[k={k}]"
        super().__init__()

    @property
    def k(self) -> int:
        """The per-round leaf budget."""
        return self._k

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        rows = state.reach_sizes()
        cols = state.heard_of_sizes()
        center = min(range(self._n), key=lambda v: (cols[v], rows[v], v))
        rest = [v for v in range(self._n) if v != center]
        rest.sort(key=lambda v: (rows[v], v))
        tree = spider_from_order([center] + rest, self._k)
        if self._n >= 2 and tree.leaf_count() != self._k:
            raise AdversaryError(
                f"restricted adversary built a {tree.leaf_count()}-leaf tree, "
                f"budget is {self._k}"
            )
        return tree


class KInnerAdversary(Adversary):
    """Adaptive adversary restricted to trees with exactly ``k`` inner nodes.

    Strategy: broom whose handle is the ``k`` least-heard-of nodes (sorted
    so the least-known roots the tree) and whose bristles are everyone
    else.  Inner nodes are exactly the handle.
    """

    def __init__(self, n: int, k: int) -> None:
        if n >= 2 and not 1 <= k <= n - 1:
            raise AdversaryError(f"k must be in [1, n-1]; got k={k}, n={n}")
        self._n = n
        self._k = k
        self.name = f"KInner[k={k}]"
        super().__init__()

    @property
    def k(self) -> int:
        """The per-round inner-node budget."""
        return self._k

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        rows = state.reach_sizes()
        cols = state.heard_of_sizes()
        order = sorted(range(self._n), key=lambda v: (cols[v], rows[v], v))
        tree = broom_from_order(order, self._k)
        if self._n >= 2 and tree.inner_count() != self._k:
            raise AdversaryError(
                f"restricted adversary built a {tree.inner_count()}-inner tree, "
                f"budget is {self._k}"
            )
        return tree


def check_k_leaves(tree: RootedTree, k: int) -> bool:
    """Validate membership in the k-leaf restricted family."""
    return tree.leaf_count() == k


def check_k_inner(tree: RootedTree, k: int) -> bool:
    """Validate membership in the k-inner-node restricted family."""
    return tree.inner_count() == k
