"""Adversary base class and adapters.

An adversary implements ``next_tree(state, round_index)``: it observes the
current product graph and returns the next round's rooted tree.  Adaptive
and oblivious adversaries coincide in power here (the system is
deterministic and Definition 2.3 maximizes over sequences), so the adaptive
interface is the general one; oblivious adversaries simply ignore ``state``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.state import BroadcastState
from repro.errors import AdversaryError
from repro.trees.rooted_tree import RootedTree


class Adversary:
    """Abstract base class for adversaries.

    Subclasses override :meth:`next_tree`; :meth:`reset` clears per-run
    state and defaults to a no-op.  The class also provides ``name`` for
    reports (defaults to the class name).

    Two optional hot-loop hooks let the executors
    (:mod:`repro.engine.executor`) skip per-round ``RootedTree``
    construction:

    * :meth:`next_parents` -- the parent row the adversary would play next
      (defaults to routing through :meth:`next_tree`);
    * :meth:`compile_schedule` -- for *oblivious* strategies only: the
      whole run as one packed ``(rounds, n)`` parent array, so engines
      drive the backend kernels directly.
    """

    #: Human-readable label used by sweeps and benchmark tables.
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        """Return the tree to play at 1-based round ``round_index``."""
        raise NotImplementedError

    def next_parents(self, state: BroadcastState, round_index: int) -> np.ndarray:
        """Parent row (``(n,)`` int64, root points to itself) for the round.

        Executors call this *instead of* :meth:`next_tree` on
        uninstrumented runs whenever a subclass genuinely overrides it --
        the streaming analog of :meth:`compile_schedule` for adaptive
        strategies that can emit parent rows without materializing a
        validated tree.  Overrides must stay consistent with
        :meth:`next_tree` (instrumented runs still use the tree path) and
        must return a valid parent array; the engines only shape-check
        it.  The default routes through :meth:`next_tree`.
        """
        return self.next_tree(state, round_index).parent_array_numpy()

    def compile_schedule(self, n: int, rounds: int) -> Optional[np.ndarray]:
        """Compile rounds ``1 .. rounds`` into one ``(rounds, n)`` array.

        Only meaningful for oblivious adversaries whose move at round
        ``t`` depends on nothing but ``t`` (``next_tree`` must ignore the
        state *and* any mutable per-run internals): executors may play the
        compiled rows without ever calling :meth:`next_tree`, and may fall
        back to it mid-run when a longer horizon fails to compile.
        Returns ``None`` (the default) when the strategy is adaptive or
        the horizon cannot be compiled; the result must be bit-identical
        to the rows :meth:`next_tree` would produce.
        """
        return None

    def compile_static_row(self, n: int) -> Optional[np.ndarray]:
        """The single parent row of a *static* schedule, or ``None``.

        Strictly stronger contract than :meth:`compile_schedule`: the
        adversary must play the tree described by this ``(n,)`` parent
        row at **every** round, forever.  Executors then skip the
        round-by-round loop entirely and binary-search ``t*`` via
        :func:`repro.core.kernels.static_completion_search` -- ``O(log
        t*)`` compositions, byte-identical to playing the row each round.
        Return ``None`` (the default) whenever the schedule is not
        provably static; a wrong row here silently corrupts results.
        """
        return None

    def reset(self) -> None:
        """Forget per-run state so the adversary can be reused."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class SequenceAdversary(Adversary):
    """Play a fixed finite sequence of trees, then optionally repeat or hold.

    Parameters
    ----------
    trees:
        The round graphs for rounds ``1 .. len(trees)``.
    after:
        What to do past the end of the sequence: ``"repeat"`` cycles from
        the start, ``"hold"`` repeats the last tree forever, ``"error"``
        raises :class:`AdversaryError`.
    """

    def __init__(
        self,
        trees: Sequence[RootedTree],
        after: str = "hold",
        name: Optional[str] = None,
    ) -> None:
        if not trees:
            raise AdversaryError("SequenceAdversary needs at least one tree")
        if after not in ("repeat", "hold", "error"):
            raise AdversaryError(
                f"after must be 'repeat', 'hold' or 'error', got {after!r}"
            )
        n = trees[0].n
        for t in trees:
            if t.n != n:
                raise AdversaryError("all trees in a sequence must share n")
        self._trees: List[RootedTree] = list(trees)
        self._after = after
        self.name = name or f"Sequence[{len(trees)} trees]"
        super().__init__()

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        i = round_index - 1
        if i < len(self._trees):
            return self._trees[i]
        if self._after == "repeat":
            return self._trees[i % len(self._trees)]
        if self._after == "hold":
            return self._trees[-1]
        raise AdversaryError(
            f"sequence of length {len(self._trees)} exhausted at round {round_index}"
        )

    def compile_schedule(self, n: int, rounds: int) -> Optional[np.ndarray]:
        """Packed schedule following the sequence and its ``after`` policy.

        With ``after='error'`` a horizon past the end of the sequence is
        not compilable (``None``): the executor then falls back to
        :meth:`next_tree`, which raises at the offending round exactly as
        the uncompiled path would.
        """
        from repro.trees.compile import sequence_schedule

        if self._trees[0].n != n:
            return None
        return sequence_schedule(self._trees, rounds, after=self._after)

    def compile_static_row(self, n: int) -> Optional[np.ndarray]:
        """Static iff every tree in the sequence is the same tree.

        ``after='error'`` is never static: the uncompiled path raises
        once the sequence is exhausted, so jumping past it would change
        observable behaviour.
        """
        from repro.trees.compile import parent_row

        if self._trees[0].n != n or self._after == "error":
            return None
        first = parent_row(self._trees[0])
        for tree in self._trees[1:]:
            if not np.array_equal(parent_row(tree), first):
                return None
        return first

    def __len__(self) -> int:
        return len(self._trees)


class FunctionAdversary(Adversary):
    """Wrap a plain function ``(state, round_index) -> RootedTree``."""

    def __init__(
        self,
        fn: Callable[[BroadcastState, int], RootedTree],
        name: Optional[str] = None,
        reset_fn: Optional[Callable[[], None]] = None,
    ) -> None:
        self._fn = fn
        self._reset_fn = reset_fn
        self.name = name or getattr(fn, "__name__", "FunctionAdversary")
        super().__init__()

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        return self._fn(state, round_index)

    def reset(self) -> None:
        if self._reset_fn is not None:
            self._reset_fn()
