"""One-step greedy delaying adversary.

Each round, evaluate every candidate tree in the pool and play the one
whose successor state looks hardest to finish from.  The score is a
lexicographic tuple; lower is better for the adversary:

1. number of *new* broadcasters the move creates (0 unless forced),
2. the largest reach-set size afterwards (keep the leader small),
3. the number of nodes within one step of finishing (``|R| = n - 1``),
4. total new product-graph edges (the paper's per-round progress measure),
5. number of nodes that gained anything.

The tuple encodes the standard delaying heuristics: never finish if
avoidable, then suppress the leader, then suppress near-finishers, then
minimize aggregate progress.

All candidates of a round are scored in ONE batched composition
(:func:`repro.engine.batch.score_candidates`), so the search rides the
selected matrix backend's vectorized kernels; :func:`score_tree` remains
as the single-candidate reference implementation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.adversaries.base import Adversary
from repro.adversaries.pool import CandidatePool, PoolConfig
from repro.core.state import BroadcastState
from repro.engine.batch import score_candidates
from repro.errors import AdversaryError
from repro.trees.rooted_tree import RootedTree

#: Score tuple type: see module docstring for the component meaning.
Score = Tuple[int, int, int, int, int]


def score_tree(state: BroadcastState, tree: RootedTree) -> Score:
    """Score a candidate move; lexicographically lower is better."""
    reach = state.reach_matrix_view()
    n = state.n
    parent = tree.parent_array_numpy()
    new_reach = reach | reach[:, parent]
    new_rows = new_reach.sum(axis=1)
    old_rows = reach.sum(axis=1)
    finished_now = int((new_rows == n).sum() - (old_rows == n).sum())
    return (
        finished_now,
        int(new_rows.max()),
        int((new_rows == n - 1).sum()),
        int(new_rows.sum() - old_rows.sum()),
        int((new_rows > old_rows).sum()),
    )


class GreedyDelayAdversary(Adversary):
    """Play the pool candidate minimizing :func:`score_tree` each round."""

    def __init__(
        self,
        n: int,
        pool: Optional[CandidatePool] = None,
        config: Optional[PoolConfig] = None,
        seed: int = 0,
        name: Optional[str] = None,
    ) -> None:
        if pool is not None and config is not None:
            raise AdversaryError("pass either a pool or a config, not both")
        if pool is None:
            pool = CandidatePool(n, config or PoolConfig(seed=seed))
        self._pool = pool
        self._n = n
        self.name = name or "GreedyDelay"
        super().__init__()

    @property
    def pool(self) -> CandidatePool:
        """The candidate pool searched each round."""
        return self._pool

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        candidates = self._pool.candidates(state)
        if not candidates:
            raise AdversaryError("candidate pool produced no trees")
        scores = score_candidates(state, candidates)
        best_i = min(range(len(candidates)), key=scores.__getitem__)
        return candidates[best_i]

    def reset(self) -> None:
        self._pool.reset()


def rank_candidates(
    state: BroadcastState, candidates: List[RootedTree]
) -> List[Tuple[Score, RootedTree]]:
    """Sort candidates by score (best first); exposed for analysis tools."""
    scored = list(zip(score_candidates(state, candidates), candidates))
    scored.sort(key=lambda pair: pair[0])
    return scored


class ExhaustiveGreedyAdversary(Adversary):
    """Greedy over *all* ``n^(n-1)`` rooted trees (small ``n`` only).

    Each round every tree in ``T_n`` is scored with the quadratic
    potential (see
    :func:`repro.adversaries.zeiner.quadratic_potential_score`) and the
    minimizer is played.  For ``n <= 6`` this reproduces the exact game
    values; it is the strongest practical adversary before the
    state-space solver becomes necessary, and a reference point for the
    pool-restricted searchers.

    The tree set is enumerated once at construction (``n <= 7`` enforced:
    ``7^6 = 117649`` trees is the practical ceiling).
    """

    #: Enumerating all trees beyond this n is refused.
    MAX_N = 7

    def __init__(self, n: int) -> None:
        if not 2 <= n <= self.MAX_N:
            raise AdversaryError(
                f"ExhaustiveGreedyAdversary supports 2 <= n <= {self.MAX_N}, got {n}"
            )
        from repro.trees.enumerate import all_parent_arrays

        self._n = n
        self._parents = [
            np.asarray(pa, dtype=np.int64) for pa in all_parent_arrays(n)
        ]
        self.name = f"ExhaustiveGreedy[n={n}]"
        super().__init__()

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        from repro.adversaries.zeiner import quadratic_potential_score

        if state.n != self._n:
            raise AdversaryError(
                f"adversary built for n={self._n}, driven with n={state.n}"
            )
        reach = state.reach_matrix_view()
        best = None
        best_score = None
        for parent in self._parents:
            s = quadratic_potential_score(reach, parent, self._n)
            if best_score is None or s < best_score:
                best, best_score = parent, s
        assert best is not None
        return RootedTree([int(p) for p in best])
