"""Adversary strategies for the dynamic-rooted-tree broadcast game.

The adversary of Definition 2.3 picks one rooted tree per round to maximize
the broadcast time ``t*``.  This package implements the full spectrum:

* :mod:`~repro.adversaries.base` -- the :class:`Adversary` ABC and sequence
  adapters;
* :mod:`~repro.adversaries.oblivious` -- adversaries that ignore the state
  (static tree, round-robin, random);
* :mod:`~repro.adversaries.paths` -- path-based strategies, including the
  two-phase flip families;
* :mod:`~repro.adversaries.zeiner` -- explicit lower-bound constructions in
  the spirit of Zeiner-Schwarz-Schmid [14];
* :mod:`~repro.adversaries.pool` -- candidate-tree pool builders for search;
* :mod:`~repro.adversaries.greedy` -- one-step greedy minimax over a pool;
* :mod:`~repro.adversaries.beam` -- multi-step beam search;
* :mod:`~repro.adversaries.exact` -- exhaustive game solver (exact
  ``t*(T_n)`` for small ``n``);
* :mod:`~repro.adversaries.restricted` -- the k-leaf / k-inner-node
  restricted settings of Figure 1;
* :mod:`~repro.adversaries.nonsplit` -- the nonsplit-graph adversary pool
  of the related work [9].
"""

from repro.adversaries.base import (
    Adversary,
    FunctionAdversary,
    SequenceAdversary,
)
from repro.adversaries.oblivious import (
    RandomTreeAdversary,
    RoundRobinAdversary,
    StaticTreeAdversary,
)
from repro.adversaries.paths import (
    AlternatingPathAdversary,
    SortedPathAdversary,
    StaticPathAdversary,
    TwoPhaseFlipAdversary,
)
from repro.adversaries.zeiner import (
    CyclicFamilyAdversary,
    RunnerAdversary,
    ZeinerStyleAdversary,
    best_known_adversary,
    quadratic_potential_score,
)
from repro.adversaries.pool import CandidatePool, PoolConfig
from repro.adversaries.greedy import (
    ExhaustiveGreedyAdversary,
    GreedyDelayAdversary,
    score_tree,
)
from repro.adversaries.beam import BeamSearchAdversary
from repro.adversaries.exact import ExactGameSolver, ExactResult, exact_broadcast_time
from repro.adversaries.restricted import (
    KInnerAdversary,
    KLeafAdversary,
)
from repro.adversaries.nonsplit import NonsplitAdversary, random_nonsplit_graph
from repro.adversaries.annealing import AnnealingResult, anneal_sequence
from repro.adversaries.interval_game import (
    ArcState,
    arc_game_optimal_sequence,
    arc_game_value,
    validate_abstraction,
)

__all__ = [
    "Adversary",
    "SequenceAdversary",
    "FunctionAdversary",
    "StaticTreeAdversary",
    "RoundRobinAdversary",
    "RandomTreeAdversary",
    "StaticPathAdversary",
    "AlternatingPathAdversary",
    "SortedPathAdversary",
    "TwoPhaseFlipAdversary",
    "ZeinerStyleAdversary",
    "RunnerAdversary",
    "CyclicFamilyAdversary",
    "best_known_adversary",
    "quadratic_potential_score",
    "CandidatePool",
    "PoolConfig",
    "GreedyDelayAdversary",
    "ExhaustiveGreedyAdversary",
    "score_tree",
    "BeamSearchAdversary",
    "ExactGameSolver",
    "ExactResult",
    "exact_broadcast_time",
    "KLeafAdversary",
    "KInnerAdversary",
    "NonsplitAdversary",
    "random_nonsplit_graph",
    "AnnealingResult",
    "anneal_sequence",
    "ArcState",
    "arc_game_value",
    "arc_game_optimal_sequence",
    "validate_abstraction",
]
