"""Lower-bound adversaries: the cyclic chain-fan construction and friends.

The ``⌈(3n−1)/2⌉ − 2`` lower bound of Theorem 3.1 is due to Zeiner,
Schwarz, Schmid [14] via an explicit adversary (published separately in
Discrete Applied Mathematics 255, 2019, not restated in the brief
announcement we reproduce).  This module supplies executable adversaries
that *witness* the bound:

* :class:`CyclicFamilyAdversary` -- the reproduction's main result on the
  lower-bound side.  Playing greedily (quadratic-potential score) over the
  family of *rotated cyclic paths* and *cyclic chain-fan trees*, it keeps
  every reach set a cyclic interval and achieves **exactly**
  ``⌈(3n−1)/2⌉ − 2`` for every ``n`` we test (4 .. 32+), matching both the
  known lower-bound formula and the exact game values computed by
  :mod:`repro.adversaries.exact` for ``n <= 5`` (where ``t*(T_n)`` equals
  the formula).  How it was found: we solved the game exactly for small
  ``n``, observed that optimal play keeps reach sets as cyclic intervals
  and plays chains-with-fans, and closed the family under rotation and
  direction.

* :class:`ZeinerStyleAdversary`, :class:`RunnerAdversary` -- simpler
  two-phase/path heuristics kept as baselines (they only reach ``n - 1``;
  their failure is itself informative and benchmarked in E8).

* :func:`best_known_adversary` -- portfolio driver returning the strongest
  measured adversary for a given ``n``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.adversaries.base import Adversary
from repro.adversaries.paths import (
    AlternatingPathAdversary,
    RotatingPathAdversary,
    SortedPathAdversary,
    StaticPathAdversary,
    TwoPhaseFlipAdversary,
)
from repro.core.broadcast import BroadcastResult, run_adversary
from repro.core.state import BroadcastState
from repro.errors import AdversaryError
from repro.trees.generators import chain_fan, path_from_order, rotated_path
from repro.trees.rooted_tree import RootedTree


def quadratic_potential_score(
    reach: np.ndarray, parent: np.ndarray, n: int
) -> Tuple[int, int, int]:
    """Score a candidate move; lexicographically lower is better.

    ``(new broadcasters, sum of squared reach sizes, max reach size)``:
    never finish if avoidable, then keep knowledge balanced (the convex
    penalty makes informing the already-informed expensive), then suppress
    the leader.  This is the score under which greedy play over *all*
    trees reproduces the exact game values for ``n <= 6``.
    """
    new = reach | reach[:, parent]
    rows = new.sum(axis=1)
    return (
        int((rows == n).sum()),
        int((rows.astype(np.int64) ** 2).sum()),
        int(rows.max()),
    )


class CyclicFamilyAdversary(Adversary):
    """Greedy adversary over the cyclic chain-fan family.

    Candidate moves, for every start node ``s``:

    * the rotated forward and backward cyclic paths at ``s``;
    * for every chain length ``m`` (subsampled by ``m_stride`` for large
      ``n``): the chain-fan trees in both directions with the fan at the
      root and at the chain tail.

    Each round the candidate minimizing
    :func:`quadratic_potential_score` is played.  Reach sets then remain
    cyclic intervals throughout the run, and the achieved broadcast time
    equals the Theorem 3.1 lower-bound formula on every size we have
    checked (see EXPERIMENTS.md, E2/E3).

    The whole ``O(n²/m_stride)``-candidate pool is scored per round in
    blocked batched compositions
    (:func:`repro.engine.batch.score_parents_quadratic`), the same kernel
    path greedy/beam use -- decision-equal to the historical per-candidate
    dense loop (ties break to the earliest candidate in pool order), but
    one vectorized backend call per block instead of one composition per
    candidate.  ``m_stride`` defaults to 1 below 33 nodes and scales up
    beyond to keep rounds affordable.
    """

    def __init__(self, n: int, m_stride: Optional[int] = None) -> None:
        if n < 2:
            raise AdversaryError("CyclicFamilyAdversary needs n >= 2")
        self._n = n
        if m_stride is None:
            m_stride = max(1, n // 32)
        if m_stride < 1:
            raise AdversaryError(f"m_stride must be >= 1, got {m_stride}")
        self._m_stride = m_stride
        self._cands: Optional[np.ndarray] = None
        self.name = f"CyclicFamily[stride={m_stride}]"
        super().__init__()

    def _candidate_parent_matrix(self) -> np.ndarray:
        """All candidate moves as one stacked ``(C, n)`` parent matrix.

        Deduplicated in generation order and cached: the family is
        state-independent, so it is built once per instance.
        """
        if self._cands is not None:
            return self._cands
        n = self._n
        seen = set()
        out: List[List[int]] = []

        def add(parents: List[int]) -> None:
            key = tuple(parents)
            if key not in seen:
                seen.add(key)
                out.append(list(parents))

        for s in range(n):
            for backward in (False, True):
                step = -1 if backward else 1
                order = [(s + step * i) % n for i in range(n)]
                parents = [0] * n
                parents[order[0]] = order[0]
                for a, b in zip(order, order[1:]):
                    parents[b] = a
                add(parents)
                for m in range(1, n - 1, self._m_stride):
                    chain = order[: m + 1]
                    for anchor in (s, chain[-1]):
                        parents = [anchor] * n
                        parents[s] = s
                        for a, b in zip(chain, chain[1:]):
                            parents[b] = a
                        add(parents)
        self._cands = np.asarray(out, dtype=np.int64)
        return self._cands

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        from repro.engine.batch import score_parents_quadratic

        if state.n != self._n:
            raise AdversaryError(
                f"adversary built for n={self._n}, driven with n={state.n}"
            )
        candidates = self._candidate_parent_matrix()
        scores = score_parents_quadratic(state, candidates)
        # min() keeps the first of tied minima, matching the historical
        # per-candidate loop's strict-improvement tie-breaking.
        best_i = min(range(len(scores)), key=scores.__getitem__)
        return RootedTree([int(p) for p in candidates[best_i]])


class ZeinerStyleAdversary(Adversary):
    """Two-phase heuristic baseline: static path, then sorted re-rooting.

    Phase 1 (rounds ``1 .. ceil(n/2) - 1``) holds the identity path,
    building the staggered interval structure ``R_i = [i, i + t]``.
    Phase 2 re-roots adaptively: the path is ordered by reach size
    ascending, pushing nodes close to finishing to the leaf end where
    their reach sets align with path suffixes (the stallable sets of
    Lemma S).

    Measured: this only achieves ``n - 1`` -- staying inside *linear*
    path orders is not enough, which is why
    :class:`CyclicFamilyAdversary` works over *cyclic* rotations with
    fan-outs instead.  Kept as an instructive baseline (benchmark E8).
    """

    def __init__(self, n: int, phase1_rounds: Optional[int] = None) -> None:
        self._n = n
        if phase1_rounds is None:
            phase1_rounds = max(math.ceil(n / 2) - 1, 0)
        self._phase1 = phase1_rounds
        self._static = StaticPathAdversary(n)
        self.name = f"ZeinerStyle[p1={self._phase1}]"
        super().__init__()

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        if round_index <= self._phase1:
            return self._static.next_tree(state, round_index)
        rows = state.reach_sizes()
        order = sorted(range(self._n), key=lambda v: (rows[v], v))
        return path_from_order(order)


class RunnerAdversary(Adversary):
    """Keep the least-heard-of node ("runner") at the root.

    Lemma R forces the root to gain every round; this heuristic hands the
    root slot to the node the fewest processes have reached, so the forced
    gain lands on the least advanced node.  The rest of the path is
    ordered by reach ascending.  Baseline: achieves ``n - 1``.
    """

    def __init__(self, n: int) -> None:
        self._n = n
        self.name = "Runner"
        super().__init__()

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        rows = state.reach_sizes()
        cols = state.heard_of_sizes()
        runner = min(range(self._n), key=lambda v: (cols[v], rows[v], v))
        rest = [v for v in range(self._n) if v != runner]
        rest.sort(key=lambda v: (rows[v], v))
        return path_from_order([runner] + rest)


def portfolio(n: int, include_search: bool = True, seed: int = 0) -> List[Adversary]:
    """The standard adversary portfolio used by benchmarks and sweeps.

    Always contains the oblivious and constructive strategies (including
    the lower-bound-matching :class:`CyclicFamilyAdversary`);
    ``include_search`` adds the pool-based greedy/beam searchers.
    """
    from repro.adversaries.beam import BeamSearchAdversary
    from repro.adversaries.greedy import GreedyDelayAdversary
    from repro.adversaries.oblivious import RandomTreeAdversary

    advs: List[Adversary] = [
        StaticPathAdversary(n),
        AlternatingPathAdversary(n, period=1),
        RotatingPathAdversary(n, shift=1),
        SortedPathAdversary(n, ascending=True),
        SortedPathAdversary(n, ascending=False),
        TwoPhaseFlipAdversary(n, alpha=0.5),
        ZeinerStyleAdversary(n),
        RunnerAdversary(n),
        CyclicFamilyAdversary(n),
        RandomTreeAdversary(n, seed=seed),
    ]
    if include_search:
        advs.append(GreedyDelayAdversary(n, seed=seed))
        advs.append(BeamSearchAdversary(n, depth=2, width=6, seed=seed))
    return advs


def best_known_adversary(
    n: int,
    include_search: bool = True,
    seed: int = 0,
) -> Tuple[Adversary, BroadcastResult, Dict[str, int]]:
    """Run the portfolio and return the strongest adversary for ``n``.

    Returns
    -------
    (adversary, result, leaderboard)
        The adversary achieving the largest ``t*``, its full run result,
        and a name -> t* leaderboard over the whole portfolio.
    """
    best_adv: Optional[Adversary] = None
    best_result: Optional[BroadcastResult] = None
    leaderboard: Dict[str, int] = {}
    for adv in portfolio(n, include_search=include_search, seed=seed):
        result = run_adversary(adv, n)
        assert result.t_star is not None  # run_adversary enforces the n² cap
        leaderboard[adv.name] = result.t_star
        if best_result is None or result.t_star > best_result.t_star:
            best_adv, best_result = adv, result
    assert best_adv is not None and best_result is not None
    return best_adv, best_result, leaderboard
