"""Candidate-tree pools for search-based adversaries.

Searching all ``n^(n-1)`` trees per round is only possible for tiny ``n``
(the exact solver does exactly that).  For larger ``n`` the greedy and beam
adversaries evaluate a *pool* of structured candidates built from the
current state:

* identity / reversed / rotated paths;
* paths sorted by reach size, heard-of size, and missing count (both
  directions);
* runner paths (least-heard-of node at the root);
* **constructive stall trees**: trees built to satisfy Lemma S for the
  heaviest nodes -- each heavy node's reach set is kept closed under the
  tree's parent->child edges wherever the constraints can be met;
* random paths and random trees for diversity.

The pool is deliberately tree-*family* diverse: Lemma S says stalling power
is about aligning complete subtrees with reach sets, and different families
realize different alignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.state import BroadcastState
from repro.trees.generators import random_tree
from repro.trees.generators import path_from_order
from repro.trees.rooted_tree import RootedTree


@dataclass(frozen=True)
class PoolConfig:
    """Tuning knobs for :class:`CandidatePool`.

    Attributes
    ----------
    rotations: number of rotated identity paths to include.
    random_paths: number of random-permutation paths per round.
    random_trees: number of uniform random trees per round.
    stall_targets: how many "heaviest nodes" target-set sizes to try for
        the constructive stall trees (targets of size 1, 2, 4, ... up to
        this many doublings).
    include_sorted_paths: include the reach/heard-of/missing sorted paths.
    include_runner_paths: include least-heard-of-rooted paths.
    seed: RNG seed (the pool re-seeds on ``reset`` for reproducibility).
    """

    rotations: int = 4
    random_paths: int = 6
    random_trees: int = 4
    stall_targets: int = 3
    include_sorted_paths: bool = True
    include_runner_paths: bool = True
    seed: int = 0


class CandidatePool:
    """Build a per-round list of candidate trees from the current state."""

    def __init__(self, n: int, config: Optional[PoolConfig] = None) -> None:
        self._n = n
        self._config = config or PoolConfig()
        self._rng = np.random.default_rng(self._config.seed)

    @property
    def config(self) -> PoolConfig:
        """The pool's configuration (frozen)."""
        return self._config

    def reset(self) -> None:
        """Restore the RNG so repeated runs see identical pools."""
        self._rng = np.random.default_rng(self._config.seed)

    def candidates(self, state: BroadcastState) -> List[RootedTree]:
        """The candidate trees for the next round, deduplicated."""
        n = self._n
        cfg = self._config
        out: List[RootedTree] = []

        identity_order = list(range(n))
        out.append(path_from_order(identity_order))
        out.append(path_from_order(identity_order[::-1]))
        for r in range(1, min(cfg.rotations, max(n - 1, 0)) + 1):
            order = [(r + i) % n for i in range(n)]
            out.append(path_from_order(order))

        rows = state.reach_sizes()
        cols = state.heard_of_sizes()
        if cfg.include_sorted_paths and n > 1:
            for key in (rows, cols, rows + cols):
                asc = sorted(range(n), key=lambda v: (key[v], v))
                out.append(path_from_order(asc))
                out.append(path_from_order(asc[::-1]))

        if cfg.include_runner_paths and n > 1:
            runner = min(range(n), key=lambda v: (cols[v], rows[v], v))
            rest = [v for v in range(n) if v != runner]
            rest.sort(key=lambda v: (rows[v], v))
            out.append(path_from_order([runner] + rest))
            out.append(path_from_order([runner] + rest[::-1]))

        reach = state.reach_matrix_view()
        target = 1
        for _ in range(cfg.stall_targets):
            out.append(stall_tree(reach, heaviest(rows, target), rows))
            target *= 2
            if target > n:
                break

        for _ in range(cfg.random_paths):
            order = [int(v) for v in self._rng.permutation(n)]
            out.append(path_from_order(order))
        for _ in range(cfg.random_trees):
            out.append(random_tree(n, rng=self._rng))

        return _dedupe(out)


def heaviest(rows: np.ndarray, count: int) -> List[int]:
    """The ``count`` nodes with the largest reach sets (unfinished first).

    Finished nodes (full rows) cannot be slowed down and are excluded
    unless nothing else remains.
    """
    n = len(rows)
    unfinished = [v for v in range(n) if rows[v] < n]
    pool = unfinished if unfinished else list(range(n))
    pool.sort(key=lambda v: (-rows[v], v))
    return pool[:count]


def stall_tree(
    reach: np.ndarray,
    protected: Sequence[int],
    rows: Optional[np.ndarray] = None,
) -> RootedTree:
    """Construct a tree that stalls as many ``protected`` nodes as possible.

    A protected node ``x`` stalls iff its reach set is closed under the
    tree's parent->child edges (Lemma S).  Every edge ``(z, c)`` must
    therefore satisfy: for each protected ``x`` with ``z ∈ R_x``, also
    ``c ∈ R_x``.  The builder grows an arborescence greedily, always
    choosing a legal attachment when one exists and otherwise the
    attachment violating the fewest protected constraints.

    The root is chosen *outside* the protected reach sets whenever
    possible: a root inside some ``R_x`` forces its children into ``R_x``,
    which can make the non-members unattachable without violations.  A
    node in no protected reach set can parent anyone, so rooting there
    (smallest reach as tie-break: the forced Lemma R gain lands on the
    least advanced node) keeps the construction unconstrained at the top.
    """
    n = reach.shape[0]
    if rows is None:
        rows = reach.sum(axis=1)
    protected = [int(x) for x in protected]
    # allowed[z] = bitwise AND of R_x over protected x containing z
    # (all-ones when no protected row contains z).
    allowed = np.ones((n, n), dtype=np.bool_)
    for x in protected:
        rx = reach[x]
        members = np.nonzero(rx)[0]
        allowed[members] &= rx

    constraint_count = [
        sum(1 for x in protected if reach[x, v]) for v in range(n)
    ]
    root = min(range(n), key=lambda v: (constraint_count[v], rows[v], v))
    parents = [-1] * n
    parents[root] = root
    attached = [root]
    attached_set = {root}
    remaining = [v for v in range(n) if v != root]
    # Attach easy (fully legal) nodes first; fall back to least-violating.
    while remaining:
        best_pair = None
        best_cost = None
        for c in remaining:
            for z in attached:
                if allowed[z, c]:
                    cost = (0, rows[z], z, c)
                else:
                    violations = sum(
                        1 for x in protected if reach[x, z] and not reach[x, c]
                    )
                    cost = (violations, rows[z], z, c)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_pair = (z, c)
                if cost[0] == 0:
                    break
            else:
                continue
            break
        assert best_pair is not None
        z, c = best_pair
        parents[c] = z
        attached.append(c)
        attached_set.add(c)
        remaining.remove(c)
    return RootedTree(parents)


def _dedupe(trees: List[RootedTree]) -> List[RootedTree]:
    """Stable deduplication by parent array."""
    seen = set()
    out: List[RootedTree] = []
    for t in trees:
        if t.parents not in seen:
            seen.add(t.parents)
            out.append(t)
    return out
