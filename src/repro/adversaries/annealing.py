"""Black-box sequence optimization: simulated annealing over tree sequences.

A different attack on Definition 2.3's max: instead of playing adaptively,
optimize an entire *sequence* of trees offline.  The optimizer maintains a
candidate sequence (long enough to be safely past any achievable ``t*``),
scores it by the broadcast time it realizes, and locally perturbs single
rounds (replacing one tree with a random one) under a standard annealing
acceptance rule.

Purpose in the reproduction: an *independent, structure-free* searcher to
compare against the structured cyclic family (benchmark E8b's story).
Annealing plateaus around the static-path value for moderate ``n`` --
evidence that the lower-bound constructions occupy a thin manifold random
local search does not find, which is consistent with the problem having
been open for years.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.bounds import upper_bound
from repro.core.broadcast import run_sequence
from repro.errors import AdversaryError
from repro.trees.generators import path, random_tree
from repro.trees.rooted_tree import RootedTree
from repro.types import validate_node_count


@dataclass
class AnnealingResult:
    """Outcome of a sequence-annealing run.

    Attributes
    ----------
    n: number of processes.
    best_t_star: the best broadcast time found.
    best_sequence: a witness sequence realizing it (truncated at t*).
    iterations: proposals evaluated.
    accepted: proposals accepted (including improvements).
    history: best-so-far after each improvement (for convergence plots).
    """

    n: int
    best_t_star: int
    best_sequence: List[RootedTree]
    iterations: int
    accepted: int
    history: List[int] = field(default_factory=list)


def _score(trees: List[RootedTree], n: int) -> int:
    """Broadcast time of a sequence; unfinished counts as the full length
    plus one (strictly better than any finishing sequence of that length)."""
    t = run_sequence(trees, n=n).t_star
    return t if t is not None else len(trees) + 1


def anneal_sequence(
    n: int,
    iterations: int = 2000,
    seed: int = 0,
    initial: Optional[List[RootedTree]] = None,
    horizon: Optional[int] = None,
    temperature0: float = 2.0,
) -> AnnealingResult:
    """Maximize broadcast time by annealing over tree sequences.

    Parameters
    ----------
    n: number of processes.
    iterations: proposal count (each costs one sequence evaluation).
    seed: RNG seed (fully deterministic).
    initial: starting sequence; defaults to the static path (the natural
        ``n − 1`` baseline).
    horizon: sequence length; defaults to the Theorem 3.1 upper bound
        (no legal sequence can delay longer, so the horizon never binds).
    temperature0: initial acceptance temperature, decayed geometrically.
    """
    validate_node_count(n)
    if n < 2:
        raise AdversaryError("annealing needs n >= 2")
    if iterations < 1:
        raise AdversaryError(f"iterations must be >= 1, got {iterations}")
    rng = np.random.default_rng(seed)
    horizon = horizon if horizon is not None else upper_bound(n)
    current = list(initial) if initial is not None else [path(n)] * horizon
    if len(current) < horizon:
        current = current + [path(n)] * (horizon - len(current))
    current_score = _score(current, n)
    best = list(current)
    best_score = current_score
    accepted = 0
    history = [best_score]

    for it in range(iterations):
        temperature = temperature0 * (0.995 ** it)
        proposal = list(current)
        # Perturb a round at or before the current completion point --
        # changes past t* cannot affect the score.
        cutoff = min(current_score, len(proposal) - 1)
        idx = int(rng.integers(0, max(cutoff, 1)))
        proposal[idx] = random_tree(n, rng)
        proposal_score = _score(proposal, n)
        delta = proposal_score - current_score
        if delta >= 0 or rng.random() < np.exp(delta / max(temperature, 1e-9)):
            current, current_score = proposal, proposal_score
            accepted += 1
            if current_score > best_score:
                best, best_score = list(current), current_score
                history.append(best_score)

    witness = best[:best_score] if best_score <= len(best) else best
    return AnnealingResult(
        n=n,
        best_t_star=min(best_score, _score(best, n)),
        best_sequence=witness,
        iterations=iterations,
        accepted=accepted,
        history=history,
    )
