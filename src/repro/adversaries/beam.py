"""Beam-search adversary: greedy with multi-round lookahead.

One-step greed can walk into traps: a move that minimizes immediate
progress may leave only bad moves next round.  The beam adversary expands
``depth`` rounds ahead, keeping the ``width`` most promising states per
level (by the same score as the greedy adversary, accumulated
lexicographically), and plays the first move of the best surviving line.

Cost per round is ``O(depth * width * |pool| * n²)``; with the default
pool this stays comfortable for ``n`` up to a few hundred.  All
candidates of one expansion are scored in a single batched composition
(:func:`repro.engine.batch.score_candidates`) and only the ``width``
survivors of a level are materialized as successor states.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.adversaries.base import Adversary
from repro.adversaries.greedy import Score
from repro.adversaries.pool import CandidatePool, PoolConfig
from repro.core.state import BroadcastState
from repro.engine.batch import score_candidates
from repro.errors import AdversaryError
from repro.trees.rooted_tree import RootedTree


class BeamSearchAdversary(Adversary):
    """Lookahead-``depth`` beam search over the candidate pool.

    Parameters
    ----------
    n: number of processes.
    depth: how many rounds to look ahead (1 reduces to greedy).
    width: beam width per level.
    pool / config / seed: candidate pool, as for the greedy adversary.
    """

    def __init__(
        self,
        n: int,
        depth: int = 2,
        width: int = 6,
        pool: Optional[CandidatePool] = None,
        config: Optional[PoolConfig] = None,
        seed: int = 0,
        name: Optional[str] = None,
    ) -> None:
        if depth < 1:
            raise AdversaryError(f"depth must be >= 1, got {depth}")
        if width < 1:
            raise AdversaryError(f"width must be >= 1, got {width}")
        if pool is not None and config is not None:
            raise AdversaryError("pass either a pool or a config, not both")
        if pool is None:
            pool = CandidatePool(n, config or PoolConfig(seed=seed))
        self._pool = pool
        self._depth = depth
        self._width = width
        self._n = n
        self.name = name or f"Beam[d={depth},w={width}]"
        super().__init__()

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        # Beam entries: (accumulated score path, state, first move).
        # A move whose successor finishes broadcast is pruned from further
        # expansion but remembered as a last resort (if every line
        # finishes, the adversary is cornered and must pick the least-bad
        # losing move).  Beam states never contain a broadcaster, so a
        # successor completes iff its score's first component (new
        # broadcasters) is positive -- no successor state is needed to
        # detect it.
        first_moves = self._pool.candidates(state)
        if not first_moves:
            raise AdversaryError("candidate pool produced no trees")

        scores = score_candidates(state, first_moves)
        if state.is_broadcast_complete():
            # Degenerate call on a finished game: every move "finishes";
            # play the least-bad one (the run loop never takes this path).
            best_i = min(range(len(first_moves)), key=scores.__getitem__)
            return first_moves[best_i]
        surviving: List[Tuple[Tuple[Score, ...], RootedTree]] = []
        cornered: List[Tuple[Score, RootedTree]] = []
        for s, tree in zip(scores, first_moves):
            if s[0] > 0:
                cornered.append((s, tree))
            else:
                surviving.append(((s,), tree))
        if not surviving:
            cornered.sort(key=lambda pair: pair[0])
            return cornered[0][1]
        surviving.sort(key=lambda entry: entry[0])
        beam: List[Tuple[Tuple[Score, ...], BroadcastState, RootedTree]] = [
            (acc, state.apply_tree(tree), tree)
            for acc, tree in surviving[: self._width]
        ]

        for _ in range(self._depth - 1):
            level: List[
                Tuple[Tuple[Score, ...], BroadcastState, RootedTree, RootedTree]
            ] = []
            for acc, st, first in beam:
                cands = self._pool.candidates(st)
                if not cands:
                    continue
                for s, tree in zip(score_candidates(st, cands), cands):
                    if s[0] > 0:  # this continuation finishes broadcast
                        continue
                    level.append((acc + (s,), st, tree, first))
            if not level:
                break  # every continuation finishes: current beam is final
            level.sort(key=lambda entry: entry[0])
            beam = [
                (acc, st.apply_tree(tree), first)
                for acc, st, tree, first in level[: self._width]
            ]

        return beam[0][2]

    def reset(self) -> None:
        self._pool.reset()
