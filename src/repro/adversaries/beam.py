"""Beam-search adversary: greedy with multi-round lookahead.

One-step greed can walk into traps: a move that minimizes immediate
progress may leave only bad moves next round.  The beam adversary expands
``depth`` rounds ahead, keeping the ``width`` most promising states per
level (by the same score as the greedy adversary, accumulated
lexicographically), and plays the first move of the best surviving line.

Cost per round is ``O(depth * width * |pool| * n²)``; with the default
pool this stays comfortable for ``n`` up to a few hundred.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.adversaries.base import Adversary
from repro.adversaries.greedy import Score, score_tree
from repro.adversaries.pool import CandidatePool, PoolConfig
from repro.core.state import BroadcastState
from repro.errors import AdversaryError
from repro.trees.rooted_tree import RootedTree


class BeamSearchAdversary(Adversary):
    """Lookahead-``depth`` beam search over the candidate pool.

    Parameters
    ----------
    n: number of processes.
    depth: how many rounds to look ahead (1 reduces to greedy).
    width: beam width per level.
    pool / config / seed: candidate pool, as for the greedy adversary.
    """

    def __init__(
        self,
        n: int,
        depth: int = 2,
        width: int = 6,
        pool: Optional[CandidatePool] = None,
        config: Optional[PoolConfig] = None,
        seed: int = 0,
        name: Optional[str] = None,
    ) -> None:
        if depth < 1:
            raise AdversaryError(f"depth must be >= 1, got {depth}")
        if width < 1:
            raise AdversaryError(f"width must be >= 1, got {width}")
        if pool is not None and config is not None:
            raise AdversaryError("pass either a pool or a config, not both")
        if pool is None:
            pool = CandidatePool(n, config or PoolConfig(seed=seed))
        self._pool = pool
        self._depth = depth
        self._width = width
        self._n = n
        self.name = name or f"Beam[d={depth},w={width}]"
        super().__init__()

    def next_tree(self, state: BroadcastState, round_index: int) -> RootedTree:
        # Beam entries: (accumulated score path, state, first move).
        # A state that finishes broadcast is pruned from further expansion
        # but remembered as a last resort (if every line finishes, the
        # adversary is cornered and must pick the least-bad losing move).
        first_moves = self._pool.candidates(state)
        if not first_moves:
            raise AdversaryError("candidate pool produced no trees")

        beam: List[Tuple[Tuple[Score, ...], BroadcastState, RootedTree]] = []
        cornered: List[Tuple[Score, RootedTree]] = []
        for tree in first_moves:
            s = score_tree(state, tree)
            nxt = state.apply_tree(tree)
            if nxt.is_broadcast_complete():
                cornered.append((s, tree))
            else:
                beam.append(((s,), nxt, tree))
        if not beam:
            cornered.sort(key=lambda pair: pair[0])
            return cornered[0][1]
        beam.sort(key=lambda entry: entry[0])
        beam = beam[: self._width]

        for _ in range(self._depth - 1):
            level: List[Tuple[Tuple[Score, ...], BroadcastState, RootedTree]] = []
            for acc, st, first in beam:
                for tree in self._pool.candidates(st):
                    s = score_tree(st, tree)
                    nxt = st.apply_tree(tree)
                    if nxt.is_broadcast_complete():
                        continue
                    level.append((acc + (s,), nxt, first))
            if not level:
                break  # every continuation finishes: current beam is final
            level.sort(key=lambda entry: entry[0])
            beam = level[: self._width]

        return beam[0][2]

    def reset(self) -> None:
        self._pool.reset()
