"""Nonsplit-graph adversaries (the related setting of [9] and [1]).

A directed graph is *nonsplit* if every pair of nodes has a common
in-neighbor.  Two facts from the related work frame our experiment E6:

* Charron-Bost, Függer, Nowak [1]: one round of a nonsplit graph can be
  simulated by ``n - 1`` rounds of rooted trees -- equivalently, the
  composition of any ``n - 1`` rooted trees (with self-loops) is nonsplit
  (Lemma N in DESIGN.md, property-tested in this repo);
* Függer, Nowak, Winkler [9]: broadcast over nonsplit graphs takes
  ``O(log log n)`` rounds, which via the simulation yields the previous
  ``O(n log log n)`` bound for rooted trees.

Because nonsplit round graphs are not trees, these adversaries do not
implement the tree :class:`~repro.adversaries.base.Adversary` interface;
they produce adjacency matrices and are driven by
:func:`broadcast_time_nonsplit`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core import matrix as M
from repro.core.product import is_nonsplit, split_pairs
from repro.core.state import BroadcastState
from repro.errors import AdversaryError, InvalidGraphError
from repro.types import validate_node_count


def cyclic_nonsplit_graph(n: int, window: Optional[int] = None) -> np.ndarray:
    """Deterministic nonsplit family: node ``y`` hears from a cyclic window.

    ``y``'s in-neighborhood is ``{y, y+1, ..., y+w} (mod n)`` with
    ``w = ⌈n/2⌉`` by default, so any two in-neighborhoods (size > n/2)
    intersect -- nonsplit by pigeonhole.
    """
    validate_node_count(n)
    w = window if window is not None else (n + 1) // 2
    if not n == 1 and not (n // 2 <= w <= n):
        # windows of size >= n/2 guarantee pairwise intersection
        raise InvalidGraphError(
            f"window {w} too small to guarantee nonsplit for n={n}"
        )
    a = np.zeros((n, n), dtype=np.bool_)
    for y in range(n):
        for d in range(w + 1):
            a[(y + d) % n, y] = True
    np.fill_diagonal(a, True)
    return a


def random_nonsplit_graph(
    n: int,
    in_degree: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Random reflexive nonsplit graph with roughly ``in_degree`` in-edges.

    Sampling: each node draws a random in-neighborhood of the requested
    size (default ``~2·√n``, where random sets intersect with constant
    probability); any surviving split pair is repaired by inserting a
    common in-neighbor.  The result is always nonsplit.
    """
    validate_node_count(n)
    rng = rng if rng is not None else np.random.default_rng()
    d = in_degree if in_degree is not None else max(1, int(2 * np.sqrt(n)))
    d = min(d, n)
    a = np.zeros((n, n), dtype=np.bool_)
    for y in range(n):
        ins = rng.choice(n, size=d, replace=False)
        a[ins, y] = True
    np.fill_diagonal(a, True)
    for (i, j) in split_pairs(a):
        z = int(rng.integers(n))
        a[z, i] = True
        a[z, j] = True
    if not is_nonsplit(a):  # pragma: no cover - repair is exhaustive
        raise InvalidGraphError("nonsplit repair failed")
    return a


class NonsplitAdversary:
    """Adversary over the nonsplit-graph pool.

    ``mode='cyclic'`` repeats the deterministic cyclic-window graph;
    ``mode='random'`` draws a fresh random nonsplit graph every round
    (seeded, reproducible); ``mode='rotating'`` rotates the cyclic window's
    labels each round so no single node stays well-heard.
    """

    def __init__(
        self,
        n: int,
        mode: str = "random",
        seed: int = 0,
        in_degree: Optional[int] = None,
    ) -> None:
        if mode not in ("cyclic", "random", "rotating"):
            raise AdversaryError(
                f"mode must be 'cyclic', 'random' or 'rotating', got {mode!r}"
            )
        self._n = n
        self._mode = mode
        self._seed = seed
        self._in_degree = in_degree
        self._rng = np.random.default_rng(seed)
        self.name = f"Nonsplit[{mode}]"

    def next_graph(self, state: BroadcastState, round_index: int) -> np.ndarray:
        """The adjacency matrix played in ``round_index`` (1-based)."""
        if self._mode == "cyclic":
            return cyclic_nonsplit_graph(self._n)
        if self._mode == "rotating":
            base = cyclic_nonsplit_graph(self._n)
            shift = (round_index - 1) % self._n
            perm = np.array([(v + shift) % self._n for v in range(self._n)])
            return M.permute_matrix(base, perm)
        return random_nonsplit_graph(self._n, self._in_degree, self._rng)

    def reset(self) -> None:
        """Restore the RNG for reproducible reruns."""
        self._rng = np.random.default_rng(self._seed)


def broadcast_time_nonsplit(
    adversary: NonsplitAdversary,
    n: int,
    max_rounds: Optional[int] = None,
) -> Tuple[int, BroadcastState]:
    """Drive a nonsplit adversary until broadcast completes.

    Returns ``(t_star, final_state)``.  Nonsplit graphs guarantee fast
    completion; the cap (default ``n + 2⌈log2 n⌉ + 10``) exists only to
    catch bugs and raises :class:`AdversaryError` when exceeded.
    """
    validate_node_count(n)
    adversary.reset()
    cap = max_rounds if max_rounds is not None else n + 2 * int(np.log2(max(n, 2))) + 10
    state = BroadcastState.initial(n)
    t = 0
    while not state.is_broadcast_complete():
        if t >= cap:
            raise AdversaryError(
                f"nonsplit adversary still unfinished after {cap} rounds; "
                "this contradicts the O(log log n) theory and indicates a bug"
            )
        t += 1
        g = adversary.next_graph(state, t)
        if not is_nonsplit(g):
            raise AdversaryError(f"adversary produced a split graph in round {t}")
        state = state.apply_graph(g)
    return t, state


def nonsplit_radius(a: np.ndarray) -> int:
    """Rounds for a broadcaster to appear when repeating graph ``a``.

    The quantity bounded by [9] (their "radius of nonsplit graphs").
    """
    a = M.validate_adjacency(a, require_reflexive=True)
    n = a.shape[0]
    state = BroadcastState.initial(n)
    t = 0
    while not state.is_broadcast_complete():
        state = state.apply_graph(a)
        t += 1
        if t > n * n:  # pragma: no cover - safety net
            raise AdversaryError("radius exceeded n^2; graph is not making progress")
    return t
