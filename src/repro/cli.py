"""Command-line interface: ``repro-broadcast``.

Subcommands
-----------
``bounds``    print every Figure 1 / Theorem 3.1 formula for given n
``figure1``   regenerate the Figure 1 comparison table over a range of n
``simulate``  run one adversary and report t* (optionally save a trace)
``sweep``     run the adversary portfolio over a range of n
``exact``     exhaustive game solve for small n
``lemmas``    spot-check the executable lemmas on random configurations
``experiment``run a registered experiment (E1..E8) through the task API
``serve``     start the simulation service (HTTP/JSON API over the executors)
``submit``    submit one declarative run spec to a running service
``task``      submit/inspect task graphs on a running service (submit | status)
``cache``     inspect or clear a persistent result cache (stats | clear)
``obs``       export or summarize span trace files (export | top)

Examples
--------
::

    repro-broadcast bounds -n 64
    repro-broadcast --backend bitset simulate -n 256 --adversary cyclic
    repro-broadcast figure1 --ns 8 16 32 64
    repro-broadcast simulate -n 12 --adversary cyclic --trace out.json
    repro-broadcast sweep --ns 6 8 10 12
    repro-broadcast sweep --ns 16 24 32 --workers 4
    repro-broadcast simulate -n 128 --adversary static-path --engine batch
    repro-broadcast sweep --ns 8 10 --engine sequential --out sweep.json
    repro-broadcast sweep --ns 8 10 12 --cache sweep-cache.jsonl
    repro-broadcast exact -n 4
    repro-broadcast experiment E2 --cache results.jsonl
    repro-broadcast experiment E5 --engine sharded --workers 4
    repro-broadcast serve --port 8642 --cache results.jsonl
    repro-broadcast submit --url http://127.0.0.1:8642 -n 64 \
        --adversary rotating-path --param shift=2 --wait
    repro-broadcast task submit --url http://127.0.0.1:8642 \
        --file graph.json --wait
    repro-broadcast task status job-000001 --url http://127.0.0.1:8642
    repro-broadcast cache stats --path results.jsonl
    repro-broadcast serve --trace spans.jsonl
    repro-broadcast obs export --chrome --path spans.jsonl --out trace.json
    repro-broadcast obs top --path spans.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro._version import __version__


def _adversary_factories() -> Dict[str, Callable[[int], object]]:
    """Name -> factory map for the ``simulate`` subcommand."""
    from repro.adversaries import (
        AlternatingPathAdversary,
        CyclicFamilyAdversary,
        GreedyDelayAdversary,
        RandomTreeAdversary,
        RunnerAdversary,
        SortedPathAdversary,
        StaticPathAdversary,
        ZeinerStyleAdversary,
    )

    return {
        "static-path": StaticPathAdversary,
        "alternating": lambda n: AlternatingPathAdversary(n, period=1),
        "sorted": lambda n: SortedPathAdversary(n),
        "zeiner-style": ZeinerStyleAdversary,
        "runner": RunnerAdversary,
        "cyclic": CyclicFamilyAdversary,
        "greedy": GreedyDelayAdversary,
        "random": lambda n: RandomTreeAdversary(n, seed=0),
    }


def _warn_ignored_workers(args: argparse.Namespace) -> None:
    """Tell the user when ``--workers`` has no effect on this engine."""
    if args.workers != 1 and args.engine != "sharded":
        print(
            f"warning: --workers {args.workers} is ignored with "
            f"--engine {args.engine} (only the sharded engine uses a "
            "worker pool)",
            file=sys.stderr,
        )


def cmd_bounds(args: argparse.Namespace) -> int:
    """Print all bound formulas at one ``n``."""
    from repro.analysis.tables import format_table
    from repro.core.bounds import all_bounds

    rows = [(name, value) for name, value in all_bounds(args.n, k=args.k).items()]
    print(format_table(["bound", "value"], rows, title=f"Bounds at n={args.n}"))
    return 0


def cmd_figure1(args: argparse.Namespace) -> int:
    """Regenerate the Figure 1 table over several ``n``."""
    from repro.analysis.tables import format_table
    from repro.core import bounds as B

    headers = [
        "n",
        "trivial n^2",
        "n log n [14]",
        "2n loglog n+2n [9]",
        "(1+sqrt2)n (new)",
        f"2kn k={args.k} leaves",
        f"2kn k={args.k} inner",
        "lower bound [14]",
    ]
    rows = []
    for n in args.ns:
        rows.append(
            (
                n,
                B.trivial_upper_bound(n),
                B.nlogn_upper_bound(n),
                B.fugger_nowak_winkler_upper_bound(n),
                B.upper_bound(n),
                B.k_leaves_upper_bound(n, args.k),
                B.k_inner_upper_bound(n, args.k),
                B.lower_bound(n),
            )
        )
    print(format_table(headers, rows, title="Figure 1: known and new bounds"))
    print(
        f"\ncrossover (new beats n log n): n >= {B.crossover_nlogn_vs_linear()}"
    )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run one adversary, print the sandwich report, optionally trace."""
    from repro.core.theorem import sandwich
    from repro.engine.executor import RunSpec, get_executor

    factories = _adversary_factories()
    if args.adversary not in factories:
        print(
            f"unknown adversary {args.adversary!r}; choose from "
            f"{sorted(factories)}",
            file=sys.stderr,
        )
        return 2
    _warn_ignored_workers(args)
    executor = get_executor(args.engine, workers=args.workers)
    # Full instrumentation on the sequential engine (and whenever a trace
    # was requested -- instrumented specs fall back to sequential inside
    # batch/sharded executors); the bare engines report t* only, riding
    # the compiled fast path where the adversary supports it.
    instrumentation = (
        "trace" if args.trace or args.engine == "sequential" else "none"
    )
    report = executor.run(
        RunSpec(
            adversary=factories[args.adversary],
            n=args.n,
            instrumentation=instrumentation,
        )
    )
    assert report.t_star is not None
    print(sandwich(args.n, report.t_star))
    if report.metrics is not None:
        print(f"tree shapes played: {report.metrics.shape_histogram}")
    else:
        print(
            f"engine: {executor.name}; compiled schedule: "
            f"{'yes' if report.compiled else 'no'}"
        )
    if args.trace:
        report.trace.save(args.trace)
        print(f"trace written to {args.trace}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Portfolio sweep over a range of ``n`` (any engine, optionally sharded)."""
    from repro.analysis.tables import format_table
    from repro.engine.executor import get_executor
    from repro.engine.shard import default_sweep_factories

    cache = None
    if args.cache:
        # Declarative handles mirror default_sweep_factories one-for-one;
        # they are what makes each grid cell content-addressable.
        from repro.service.cache import ResultCache, SweepCellCache
        from repro.service.specs import portfolio_handles

        factories = portfolio_handles(include_search=not args.fast)
        cache = SweepCellCache(ResultCache(path=args.cache))
    else:
        factories = default_sweep_factories(include_search=not args.fast)
    _warn_ignored_workers(args)
    executor = get_executor(args.engine, workers=args.workers)
    result = executor.sweep(factories, args.ns, cache=cache)
    best = result.best_per_n()
    rows = []
    for n in args.ns:
        point = best.get(n)
        if point is None:  # pragma: no cover - portfolio always completes
            continue
        # Re-instantiate the winner so the table shows its self-reported
        # name (e.g. "CyclicFamily[stride=2]"), not just the factory key.
        display = getattr(
            factories[point.adversary](n), "name", point.adversary
        )
        rows.append(
            (
                n,
                point.lower,
                point.t_star,
                point.upper,
                f"{point.normalized:.3f}",
                display,
            )
        )
    print(
        format_table(
            ["n", "LB formula", "best t*", "UB formula", "t*/n", "best adversary"],
            rows,
            title="Theorem 3.1 sandwich: measured vs formulas",
        )
    )
    if args.out:
        result.save(args.out)
        print(f"sweep results written to {args.out}")
    if cache is not None:
        stats = cache.cache.stats()
        print(
            f"cell cache {args.cache}: {stats['hits']} hits, "
            f"{stats['misses']} misses, {stats['entries']} entries"
        )
    if args.engine == "sharded" and args.workers != 1:
        print(f"(sweep sharded over {executor.workers} worker processes)")
    return 0


def cmd_exact(args: argparse.Namespace) -> int:
    """Exhaustive solve for small ``n``."""
    from repro.adversaries.exact import ExactGameSolver
    from repro.core.bounds import lower_bound, upper_bound

    solver = ExactGameSolver(args.n, max_states=args.max_states)
    result = solver.solve()
    print(
        f"t*(T_{args.n}) = {result.t_star} exactly "
        f"(formulas: LB={lower_bound(args.n)}, UB={upper_bound(args.n)})"
    )
    print(
        f"states explored: {result.states_explored}; trees per state: "
        f"{result.tree_count}; solve time: {result.elapsed_seconds:.2f}s"
    )
    if args.show_sequence:
        for i, tree in enumerate(solver.optimal_sequence(), start=1):
            print(f"round {i}: parents={list(tree.parents)}")
    return 0


def cmd_lemmas(args: argparse.Namespace) -> int:
    """Spot-check the executable lemmas on random configurations."""
    import numpy as np

    from repro.analysis.stalling import verify_lemmas_on_round
    from repro.core.state import BroadcastState
    from repro.trees.generators import random_tree

    rng = np.random.default_rng(args.seed)
    failures = 0
    for trial in range(args.trials):
        state = BroadcastState.initial(args.n)
        warmup = int(rng.integers(0, 2 * args.n))
        for _ in range(warmup):
            state.apply_tree_inplace(random_tree(args.n, rng))
        tree = random_tree(args.n, rng)
        r, s1, s2 = verify_lemmas_on_round(state, tree)
        if not (r and s1 and s2):
            failures += 1
            print(f"trial {trial}: lemma failure (R={r}, S={s1}/{s2})")
    print(
        f"{args.trials} random configurations checked, {failures} failures"
    )
    return 0 if failures == 0 else 1


def cmd_experiment(args: argparse.Namespace) -> int:
    """Run one registered experiment (or all) and print its table.

    Experiments execute through the task API (declarative unit grid +
    pure aggregation): ``--engine``/``--workers`` pick the executor the
    run tasks batch/shard through, ``--cache`` content-addresses every
    task so a warm rerun computes zero runs and reproduces the table
    byte-identically, and ``--legacy`` runs the pre-task-API inline path
    (the equivalence oracle).
    """
    from repro.experiments import get_experiment, list_experiments, run_experiment

    if args.id == "list":
        for spec in list_experiments():
            print(f"{spec.experiment_id}: {spec.title} ({spec.paper_artifact})")
        return 0

    executor = None
    cache = None
    if args.legacy:
        ignored = [
            flag
            for flag, is_set in (
                ("--engine", args.engine != "sequential"),
                ("--workers", args.workers != 1),
                ("--cache", bool(args.cache)),
            )
            if is_set
        ]
        if ignored:
            print(
                f"warning: {', '.join(ignored)} ignored with --legacy "
                "(the inline path bypasses the task API)",
                file=sys.stderr,
            )
    else:
        from repro.engine.executor import get_executor

        _warn_ignored_workers(args)
        executor = get_executor(args.engine, workers=args.workers)
        if args.cache:
            from repro.service.cache import ResultCache

            cache = ResultCache(path=args.cache)

    def run_one(spec) -> "object":
        if args.legacy:
            return spec.run_legacy()
        table, graph_run = run_experiment(
            spec.experiment_id, executor=executor, cache=cache
        )
        s = graph_run.stats
        print(
            f"[{spec.experiment_id}] task graph: {s['tasks']} tasks, "
            f"{s['cached']} cached, {s['computed']} computed, "
            f"runs computed: {s['runs_computed']}",
            file=sys.stderr,
        )
        return table

    if args.id == "all":
        ok = True
        for spec in list_experiments():
            table = run_one(spec)
            print(table.render())
            print()
            ok = ok and table.checks_passed
        return 0 if ok else 1
    try:
        spec = get_experiment(args.id)
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    table = run_one(spec)
    print(table.render())
    return 0 if table.checks_passed else 1


def _parse_param_pairs(pairs: Optional[Sequence[str]]) -> Dict[str, object]:
    """``key=value`` pairs -> params dict (values parsed as JSON literals)."""
    import json

    params: Dict[str, object] = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value  # bare strings need no quotes
    return params


def _build_auth(args: argparse.Namespace):
    """``(authenticator, per-tenant limits)`` from --auth-token/--auth-file."""
    from repro.service.tenancy import TenantLimits, TokenAuthenticator

    tokens: Dict[str, str] = {}
    limits: Dict[str, TenantLimits] = {}
    if args.auth_file:
        authenticator, limits = TokenAuthenticator.from_file(args.auth_file)
        tokens = authenticator.token_map()
    for pair in args.auth_token or []:
        token, sep, tenant = pair.partition(":")
        if not token:
            raise SystemExit(f"--auth-token expects TOKEN[:TENANT], got {pair!r}")
        tokens[token] = tenant if sep and tenant else "default"
    if not tokens:
        return None, limits
    return TokenAuthenticator(tokens), limits


def cmd_serve(args: argparse.Namespace) -> int:
    """Start the simulation service and block until interrupted."""
    import signal

    from repro.errors import ServiceError
    from repro.service.server import ServiceServer
    from repro.service.tenancy import TenantLimits, TenantRegistry

    if args.trace:
        # Enable before the server exists so startup work (recovery,
        # cache load) is traced too.  Profiling rides along: the span
        # file then carries per-kernel rows for ``repro obs top``.
        from repro.obs import profile as obs_profile
        from repro.obs import trace as obs_trace

        obs_trace.enable(args.trace)
        obs_profile.enable()
    try:
        auth, per_tenant = _build_auth(args)
        default_limits = TenantLimits(
            rate=args.rate_limit,
            burst=args.burst,
            max_bytes=args.tenant_max_bytes,
            max_jobs=args.tenant_max_jobs,
        )
        tenancy = None
        if auth is not None or per_tenant or not default_limits.unlimited:
            tenancy = TenantRegistry(
                default_limits=default_limits, per_tenant=per_tenant
            )
        server = ServiceServer(
            host=args.host,
            port=args.port,
            executor=args.engine,
            cache_path=args.cache,
            cache_capacity=args.cache_capacity,
            cache_max_bytes=args.cache_max_bytes,
            scheduler_workers=args.jobs,
            journal=args.journal,
            auth=auth,
            tenancy=tenancy,
            max_queue_depth=args.max_queue_depth,
            request_timeout=args.request_timeout,
            access_log=not args.no_access_log,
            fleet=args.fleet,
            lease_ttl=args.lease_ttl,
            claim_deadline=args.claim_deadline,
        )
    except ServiceError as exc:  # bad auth file / limit values
        print(str(exc), file=sys.stderr)
        return 2
    except OSError as exc:  # bind failure: port in use, bad host, ...
        print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    print(f"repro simulation service listening on {server.url}")
    if auth is not None:
        print(
            f"bearer-token auth enabled ({len(auth.tenants)} tenant(s)); "
            "requests without a valid token get 401"
        )
    print(
        "endpoints: POST /v1/runs, POST /v1/runs:batch, POST /v1/sweeps, "
        "POST /v1/tasks, GET /v1/runs/<id>, GET /v1/tasks/<id>, "
        "GET /v1/specs, GET /healthz, GET /metrics, POST /v1/shutdown"
    )
    if args.fleet:
        print(
            f"worker fleet enabled: lease TTL {args.lease_ttl}s, local "
            f"fallback after {args.claim_deadline}s; attach workers with "
            f"'repro-broadcast worker --url {server.url}'"
        )
    if args.cache:
        print(f"result cache persisted to {args.cache}")
    if args.trace:
        print(
            f"tracing enabled: spans appended to {args.trace} "
            f"(view with 'repro-broadcast obs export --chrome --path {args.trace}')"
        )
    if args.journal:
        # Recover eagerly (idempotent -- start() would otherwise do it)
        # so the banner can report how much of the journal came back.
        recovered = server.scheduler.recover()
        print(f"job journal at {args.journal} ({recovered} jobs recovered)")
    # SIGTERM (systemd, CI, `kill`) stops as gracefully as Ctrl-C; SIGINT
    # keeps its KeyboardInterrupt default, which serve_forever handles.
    signal.signal(signal.SIGTERM, lambda signum, frame: server.stop_async())
    server.serve_forever()
    print("service stopped")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one declarative run spec to a running service."""
    from repro.errors import ServiceError
    from repro.service.client import ServiceClient

    spec: Dict[str, object] = {
        "adversary": args.adversary,
        "n": args.n,
        "seed": args.seed,
        "params": _parse_param_pairs(args.param),
    }
    if args.max_rounds is not None:
        spec["max_rounds"] = args.max_rounds
    if args.backend is not None:
        spec["backend"] = args.backend
    try:
        client = ServiceClient.from_url(
            args.url, token=args.token, retry_rate_limited=args.retry_rate_limited
        )
        doc = client.submit_run(spec)
        print(
            f"job {doc['job_id']}: status={doc['status']} "
            f"cached={doc['cached']} digest={doc['digest'][:16]}..."
        )
        if not args.wait:
            return 0
        doc = client.wait(doc["job_id"], timeout=args.timeout)
    except ServiceError as exc:  # unreachable server, rejected spec, timeout
        print(str(exc), file=sys.stderr)
        return 2
    if doc["status"] == "failed":
        print(f"job failed: {doc['error']}", file=sys.stderr)
        return 1
    result = doc["result"]
    if result["t_star"] is None:
        print(
            f"{result['adversary_name']}: truncated by max_rounds after "
            f"{result['rounds']} rounds (no broadcast at n = {result['n']})"
        )
        return 0
    print(
        f"{result['adversary_name']}: t* = {result['t_star']} at "
        f"n = {result['n']} (t*/n = {result['t_star'] / result['n']:.3f}, "
        f"executor = {result['executor']})"
    )
    return 0


def _print_task_job(doc: Dict[str, object]) -> None:
    """One-line envelope + per-node state counts for a task-graph job."""
    nodes = doc.get("tasks") or {}
    by_state: Dict[str, int] = {}
    for node in nodes.values():
        by_state[node["status"]] = by_state.get(node["status"], 0) + 1
    states = ", ".join(f"{k}={v}" for k, v in sorted(by_state.items()))
    print(
        f"job {doc['job_id']}: status={doc['status']} cached={doc['cached']} "
        f"digest={str(doc['digest'])[:16]}... nodes[{states or 'none'}]"
    )
    if doc.get("error"):
        print(f"error: {doc['error']}", file=sys.stderr)


def _print_task_outputs(doc: Dict[str, object]) -> None:
    """Render each finished graph output through its kind's natural form."""
    from repro.experiments import table_from_doc

    result = doc.get("result") or {}
    nodes = doc.get("tasks") or {}
    stats = result.get("stats")
    if stats:
        print(
            f"stats: {stats['tasks']} tasks, {stats['cached']} cached, "
            f"{stats['computed']} computed, runs computed: "
            f"{stats['runs_computed']}"
        )
    for digest, out in (result.get("outputs") or {}).items():
        kind = nodes.get(digest, {}).get("kind", "?")
        if out is None:
            print(f"output {digest[:16]}... ({kind}): <not completed>")
        elif kind == "experiment":
            print(table_from_doc(out).render())
        elif kind == "run":
            print(f"output {digest[:16]}... (run): t* = {out['t_star']} at n = {out['n']}")
        elif kind == "sweep-agg":
            print(f"output {digest[:16]}... (sweep): {len(out['points'])} grid points")
        else:
            import json

            print(f"output {digest[:16]}... ({kind}): {json.dumps(out)}")


def cmd_task_submit(args: argparse.Namespace) -> int:
    """Submit a task-graph JSON document to a running service."""
    import json

    from repro.errors import ServiceError
    from repro.service.client import ServiceClient

    try:
        if args.file == "-":
            doc = json.load(sys.stdin)
        else:
            with open(args.file, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read task graph from {args.file!r}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(doc, dict):
        print("task graph document must be a JSON object", file=sys.stderr)
        return 2
    try:
        client = ServiceClient.from_url(args.url, token=args.token)
        envelope = client.submit_tasks(doc.get("tasks", []), outputs=doc.get("outputs"))
        if args.wait:
            envelope = client.wait(envelope["job_id"], timeout=args.timeout)
    except ServiceError as exc:  # unreachable server, rejected graph, timeout
        print(str(exc), file=sys.stderr)
        return 2
    _print_task_job(envelope)
    if envelope["status"] == "done":
        _print_task_outputs(envelope)
    return 1 if envelope["status"] == "failed" else 0


def cmd_task_status(args: argparse.Namespace) -> int:
    """Per-node status (and results when done) of a task-graph job.

    With ``--watch`` the command long-polls the service and reprints the
    status on every update (node transitions included) until the job is
    terminal -- push updates, not sampling.
    """
    from repro.errors import ServiceError
    from repro.service.client import ServiceClient

    client = ServiceClient.from_url(
        args.url, token=args.token, retry_connect=args.retry_connect
    )
    try:
        if args.watch:
            doc = None
            for doc in client.watch(args.job_id, timeout=args.timeout):
                _print_task_job(doc)
            assert doc is not None  # watch always yields at least once
        else:
            doc = client.task_job(args.job_id)
            _print_task_job(doc)
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if doc["status"] == "done":
        _print_task_outputs(doc)
    return 1 if doc["status"] == "failed" else 0


def cmd_worker(args: argparse.Namespace) -> int:
    """Run a pull-based fleet worker against a ``serve --fleet`` service.

    The worker long-polls ``/v1/work:claim``, executes each claimed batch
    through the ordinary executor stack, and pushes encoded reports back
    via ``/v1/work:complete``.  SIGINT/SIGTERM request a graceful stop:
    the in-flight batch finishes (or its lease expires and the server
    reclaims it) and the final per-worker stats are printed.
    """
    import signal

    from repro.service.client import ServiceClient
    from repro.service.worker import FleetWorker

    client = ServiceClient.from_url(args.url, token=args.token)
    worker = FleetWorker(
        client,
        name=args.name,
        procs=args.procs,
        batch=args.batch,
        engine=args.engine,
        poll=args.poll,
        delay=args.delay,
        max_batches=args.max_batches,
    )

    def _stop(signum: int, frame: object) -> None:
        worker.stop()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    print(f"worker {worker.name} pulling from {args.url} (Ctrl-C to stop)")
    worker.run()
    stats = ", ".join(f"{k}={v}" for k, v in sorted(worker.stats.items()))
    print(f"worker {worker.name} stopped: {stats}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect (``stats``), rewrite (``compact``), or truncate (``clear``)
    a persistent cache."""
    from repro.analysis.tables import format_table
    from repro.service.cache import ResultCache

    cache = ResultCache(path=args.path)
    if args.action == "clear":
        before = len(cache)
        cache.clear()
        print(f"cleared {before} entries from {args.path}")
        return 0
    if args.action == "compact":
        report = cache.compact()
        print(
            f"compacted {args.path}: {report['before_bytes']} -> "
            f"{report['after_bytes']} bytes ({report['entries']} live entries)"
        )
        return 0
    rows = sorted(cache.stats().items())
    print(format_table(["counter", "value"], rows, title=f"Cache {args.path}"))
    return 0


def cmd_obs_export(args: argparse.Namespace) -> int:
    """Export a span JSONL file as raw spans or Chrome trace-event JSON."""
    import json
    from pathlib import Path

    from repro.obs import trace as obs_trace

    spans = obs_trace.read_spans(args.path)
    if not spans:
        print(f"no spans in {args.path}", file=sys.stderr)
        return 1
    if args.chrome:
        doc = obs_trace.chrome_trace(spans)
    else:
        doc = {"spans": spans, "trees": obs_trace.span_trees(spans)}
    text = json.dumps(doc, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {len(spans)} spans to {args.out}")
    else:
        print(text)
    return 0


def cmd_obs_top(args: argparse.Namespace) -> int:
    """Summarize a span file: hottest kernels, per-executor phase split."""
    from repro.analysis.tables import format_table
    from repro.obs import trace as obs_trace
    from repro.obs.profile import n_bucket

    spans = obs_trace.read_spans(args.path)
    if not spans:
        print(f"no spans in {args.path}", file=sys.stderr)
        return 1

    kernels: Dict[str, List[float]] = {}
    phases: Dict[str, List[float]] = {}
    for span in spans:
        attrs = span.get("attrs", {})
        if span.get("name") == "kernel":
            bucket = n_bucket(int(attrs.get("n", 0)))
            key = f"{attrs.get('backend', '?')}/{attrs.get('kernel', '?')}/{bucket}"
            cell = kernels.setdefault(key, [0.0, 0.0])
            cell[0] += 1
            cell[1] += float(span.get("dur", 0.0))
        elif "decision_s" in attrs and "kernel_s" in attrs:
            executor = str(attrs.get("executor", "?"))
            cell = phases.setdefault(executor, [0.0, 0.0, 0.0])
            cell[0] += 1
            cell[1] += float(attrs["decision_s"])
            cell[2] += float(attrs["kernel_s"])

    if kernels:
        rows = sorted(
            (
                (key, int(calls), f"{seconds:.6f}")
                for key, (calls, seconds) in kernels.items()
            ),
            key=lambda row: -float(row[2]),
        )[: args.limit]
        print(
            format_table(
                ["backend/kernel/bucket", "calls", "seconds"],
                rows,
                title=f"Kernels ({args.path})",
            )
        )
    if phases:
        rows = [
            (
                executor,
                int(runs),
                f"{dec:.6f}",
                f"{ker:.6f}",
                f"{(dec / (dec + ker) * 100.0) if dec + ker > 0 else 0.0:.1f}%",
            )
            for executor, (runs, dec, ker) in sorted(phases.items())
        ]
        print(
            format_table(
                ["executor", "runs", "decision_s", "kernel_s", "decision_share"],
                rows,
                title="Executor phase split (adversary decisions vs matrix kernels)",
            )
        )
    if not kernels and not phases:
        print(
            "no kernel or phase spans found (was the server started with "
            "--trace, and did it serve any runs?)",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-broadcast",
        description=(
            "Broadcast in dynamic rooted trees (PODC 2022 reproduction)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--backend",
        choices=["dense", "bitset"],
        default=None,
        help=(
            "matrix backend for all kernels (default: $REPRO_BACKEND or "
            "'dense'; 'bitset' packs rows 64-to-a-word)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("bounds", help="print bound formulas at one n")
    p.add_argument("-n", type=int, required=True)
    p.add_argument("-k", type=int, default=3, help="k for restricted rows")
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser("figure1", help="regenerate the Figure 1 table")
    p.add_argument("--ns", type=int, nargs="+", default=[8, 16, 32, 64, 128])
    p.add_argument("-k", type=int, default=3)
    p.set_defaults(func=cmd_figure1)

    p = sub.add_parser("simulate", help="run one adversary")
    p.add_argument("-n", type=int, required=True)
    p.add_argument(
        "--adversary", default="cyclic", help="adversary name (see docs)"
    )
    p.add_argument("--trace", default=None, help="write a JSON trace here")
    p.add_argument(
        "--engine",
        choices=["sequential", "batch", "sharded"],
        default="sequential",
        help=(
            "execution engine (all are decision-equivalent; 'sequential' "
            "adds full trace/metrics instrumentation; default: sequential)"
        ),
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for --engine sharded (default: 1)",
    )
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("sweep", help="portfolio sweep over n")
    p.add_argument("--ns", type=int, nargs="+", default=[6, 8, 10, 12])
    p.add_argument(
        "--fast", action="store_true", help="skip slow search adversaries"
    )
    p.add_argument(
        "--engine",
        choices=["sequential", "batch", "sharded"],
        default="sharded",
        help=(
            "execution engine; results are identical across engines "
            "(default: sharded, which runs inline at --workers 1)"
        ),
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "shard the sweep grid over this many worker processes "
            "(results are bit-identical to --workers 1; default: 1)"
        ),
    )
    p.add_argument(
        "--out",
        default=None,
        help="write the sweep grid as JSON here (SweepResult.to_json)",
    )
    p.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help=(
            "opt-in content-addressed cell cache (JSONL): rerunning an "
            "enlarged grid only computes the new cells, bit-identical "
            "to a cold sweep"
        ),
    )
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("exact", help="exhaustive game solve (small n)")
    p.add_argument("-n", type=int, required=True)
    p.add_argument("--max-states", type=int, default=5_000_000)
    p.add_argument("--show-sequence", action="store_true")
    p.set_defaults(func=cmd_exact)

    p = sub.add_parser("lemmas", help="spot-check executable lemmas")
    p.add_argument("-n", type=int, default=8)
    p.add_argument("--trials", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_lemmas)

    p = sub.add_parser(
        "experiment",
        help="run a registered experiment (E1..E8, list, all) via the task API",
    )
    p.add_argument("id", help="experiment id, 'list', or 'all'")
    p.add_argument(
        "--engine",
        choices=["sequential", "batch", "sharded"],
        default="sequential",
        help=(
            "executor the experiment's run tasks dispatch through "
            "(results are identical across engines; default: sequential)"
        ),
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for --engine sharded (default: 1)",
    )
    p.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help=(
            "content-addressed task cache (JSONL): a warm rerun computes "
            "zero runs and reproduces the table byte-identically"
        ),
    )
    p.add_argument(
        "--legacy",
        action="store_true",
        help="run the pre-task-API inline implementation (equivalence oracle)",
    )
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser(
        "serve", help="start the simulation service (HTTP/JSON over the executors)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8642, help="bind port (0 = ephemeral)"
    )
    p.add_argument(
        "--engine",
        choices=["sequential", "batch", "sharded"],
        default="batch",
        help="executor the scheduler dispatches on (default: batch)",
    )
    p.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="persist the result cache to this JSONL file",
    )
    p.add_argument(
        "--cache-capacity",
        type=int,
        default=4096,
        help="in-memory LRU capacity (default: 4096 entries)",
    )
    p.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help=(
            "byte budget for the in-memory cache tier (LRU eviction past "
            "it; totals visible in /metrics under cache.bytes)"
        ),
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="scheduler worker threads (default: 1; batching is the lever)",
    )
    p.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help=(
            "persist a job journal to this JSONL file and recover from it "
            "on startup (pair with --cache so resumed task graphs "
            "recompute only never-finished nodes)"
        ),
    )
    p.add_argument(
        "--auth-token",
        action="append",
        metavar="TOKEN[:TENANT]",
        help=(
            "require bearer-token auth; repeatable.  Each flag adds one "
            "accepted token, optionally mapped to a tenant id (default "
            "tenant 'default').  Requests without a valid token get 401"
        ),
    )
    p.add_argument(
        "--auth-file",
        default=None,
        metavar="PATH",
        help=(
            "JSON file mapping tokens to tenant ids, or to objects "
            "{'tenant', 'rate', 'burst', 'max_bytes', 'max_jobs'} with "
            "per-tenant limit overrides"
        ),
    )
    p.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="REQ_PER_S",
        help=(
            "per-tenant token-bucket rate limit on submissions "
            "(429 + Retry-After past it; default: unlimited)"
        ),
    )
    p.add_argument(
        "--burst",
        type=int,
        default=None,
        help="token-bucket burst size (default: max(1, int(rate)))",
    )
    p.add_argument(
        "--tenant-max-bytes",
        type=int,
        default=None,
        help=(
            "per-tenant cache byte quota: a tenant whose charged cache "
            "bytes exceed this gets 429/quota on new submissions"
        ),
    )
    p.add_argument(
        "--tenant-max-jobs",
        type=int,
        default=None,
        help="per-tenant cap on concurrently active (queued/running) jobs",
    )
    p.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help=(
            "global backpressure: reject submissions with 429 while this "
            "many jobs are already queued (default: unlimited)"
        ),
    )
    p.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "per-connection socket timeout; a client that stalls "
            "mid-request gets 408 and is dropped (default: 30)"
        ),
    )
    p.add_argument(
        "--no-access-log",
        action="store_true",
        help="disable the structured JSON request log on stderr",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "append spans (JSONL) to this file and enable kernel/phase "
            "profiling; one HTTP request yields one span tree "
            "(request -> job -> node -> executor -> kernel).  Inspect "
            "with 'obs export' / 'obs top'"
        ),
    )
    p.add_argument(
        "--fleet",
        action="store_true",
        help=(
            "enable the pull-based worker fleet: jobs are queued as leased "
            "work items that remote 'worker' processes claim over HTTP; "
            "anything unclaimed past --claim-deadline runs locally"
        ),
    )
    p.add_argument(
        "--lease-ttl",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help=(
            "work lease time-to-live; a worker that stops heartbeating for "
            "this long has its items reclaimed (default: 15)"
        ),
    )
    p.add_argument(
        "--claim-deadline",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help=(
            "how long queued work waits for a worker claim before falling "
            "back to local execution (default: 2; only applies while "
            "workers look alive)"
        ),
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="pull-based fleet worker: claim, execute, and push work batches",
    )
    p.add_argument(
        "--url", default="http://127.0.0.1:8642", help="service base URL"
    )
    p.add_argument(
        "--token", default=None, help="bearer token sent as Authorization header"
    )
    p.add_argument(
        "--name",
        default=None,
        help="worker id reported to the server (default: worker-<host>-<pid>)",
    )
    p.add_argument(
        "--procs",
        type=int,
        default=1,
        help="local executor processes; >1 switches to the sharded executor",
    )
    p.add_argument(
        "--batch",
        type=int,
        default=4,
        help="max work items claimed per lease (default: 4)",
    )
    p.add_argument(
        "--engine",
        default=None,
        help="override the server's executor hint (e.g. batch, compiled)",
    )
    p.add_argument(
        "--poll",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="long-poll wait per claim request when the queue is idle",
    )
    p.add_argument(
        "--delay",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="artificial per-item execution delay (chaos/testing aid)",
    )
    p.add_argument(
        "--max-batches",
        type=int,
        default=None,
        help="exit after this many non-empty claims (default: run forever)",
    )
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "submit", help="submit one declarative run spec to a running service"
    )
    p.add_argument(
        "--url", default="http://127.0.0.1:8642", help="service base URL"
    )
    p.add_argument("-n", type=int, required=True)
    p.add_argument(
        "--adversary",
        default="cyclic",
        help="registered spec name (see GET /v1/specs)",
    )
    p.add_argument(
        "--param",
        action="append",
        metavar="KEY=VALUE",
        help="adversary param (repeatable; values parsed as JSON literals)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-rounds", type=int, default=None)
    p.add_argument(
        "--wait", action="store_true", help="poll until the job finishes"
    )
    p.add_argument(
        "--timeout", type=float, default=300.0, help="--wait deadline in seconds"
    )
    p.add_argument(
        "--token", default=None, help="bearer token sent as Authorization header"
    )
    p.add_argument(
        "--retry-rate-limited",
        type=int,
        default=0,
        metavar="N",
        help="retry up to N times on 429, honouring the server's Retry-After",
    )
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "task", help="submit or inspect task graphs on a running service"
    )
    tsub = p.add_subparsers(dest="task_cmd", required=True)
    ps = tsub.add_parser(
        "submit", help="submit a task-graph JSON document ({'tasks': [...]})"
    )
    ps.add_argument(
        "--url", default="http://127.0.0.1:8642", help="service base URL"
    )
    ps.add_argument(
        "--file",
        required=True,
        metavar="PATH",
        help="task-graph JSON document ('-' reads stdin)",
    )
    ps.add_argument(
        "--wait", action="store_true", help="poll until the graph finishes"
    )
    ps.add_argument(
        "--timeout", type=float, default=600.0, help="--wait deadline in seconds"
    )
    ps.add_argument(
        "--token", default=None, help="bearer token sent as Authorization header"
    )
    ps.set_defaults(func=cmd_task_submit)
    ps = tsub.add_parser(
        "status", help="per-node status of a task-graph job"
    )
    ps.add_argument("job_id", help="job id returned by task submit")
    ps.add_argument(
        "--url", default="http://127.0.0.1:8642", help="service base URL"
    )
    ps.add_argument(
        "--watch",
        action="store_true",
        help="long-poll and reprint on every update until the job finishes",
    )
    ps.add_argument(
        "--timeout", type=float, default=600.0, help="--watch deadline in seconds"
    )
    ps.add_argument(
        "--token", default=None, help="bearer token sent as Authorization header"
    )
    ps.add_argument(
        "--retry-connect",
        type=int,
        default=0,
        metavar="N",
        help=(
            "retry idempotent reads up to N times (with jittered backoff) "
            "when the service is unreachable, e.g. across a restart"
        ),
    )
    ps.set_defaults(func=cmd_task_status)

    p = sub.add_parser(
        "cache", help="inspect, compact, or clear a persistent result cache"
    )
    p.add_argument("action", choices=["stats", "compact", "clear"])
    p.add_argument("--path", required=True, help="JSONL cache file")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "obs", help="observability: export or summarize a span trace file"
    )
    osub = p.add_subparsers(dest="obs_command", required=True)
    pe = osub.add_parser(
        "export",
        help="export a span JSONL file (raw span tree or Chrome trace-event JSON)",
    )
    pe.add_argument(
        "--path",
        required=True,
        metavar="PATH",
        help="span JSONL file (written by 'serve --trace' or $REPRO_TRACE)",
    )
    pe.add_argument(
        "--chrome",
        action="store_true",
        help=(
            "emit Chrome trace-event JSON instead of raw spans "
            "(load in Perfetto or chrome://tracing)"
        ),
    )
    pe.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write to this file instead of stdout",
    )
    pe.set_defaults(func=cmd_obs_export)
    pt = osub.add_parser(
        "top",
        help="per-kernel and per-executor time summary aggregated from spans",
    )
    pt.add_argument(
        "--path",
        required=True,
        metavar="PATH",
        help="span JSONL file (written by 'serve --trace' or $REPRO_TRACE)",
    )
    pt.add_argument(
        "--limit", type=int, default=20, help="kernel rows to show (default: 20)"
    )
    pt.set_defaults(func=cmd_obs_top)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-broadcast`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.core.backend import get_backend, set_default_backend

    from repro.errors import BackendError

    if args.backend is not None:
        set_default_backend(args.backend)
    else:
        try:
            get_backend()  # fail fast on a bogus $REPRO_BACKEND
        except BackendError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
