"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch a single base class.  Specific subclasses communicate
which subsystem rejected the input:

* :class:`InvalidTreeError` -- a structure claimed to be a rooted tree is not.
* :class:`InvalidGraphError` -- a boolean adjacency matrix is malformed.
* :class:`DimensionMismatchError` -- two objects over different node counts
  were combined.
* :class:`BackendError` -- an unknown matrix backend was requested from the
  backend registry (see :mod:`repro.core.backend`).
* :class:`AdversaryError` -- an adversary produced an illegal move or was
  driven past its defined horizon.
* :class:`SearchBudgetExceeded` -- an exact/beam search hit its configured
  node or transition cap before completing.
* :class:`SimulationError` -- the round-based engine was misused (e.g. asked
  to step a finished simulation without permission).
* :class:`TraceError` -- a recorded trace failed validation or replay.
* :class:`SweepFormatError` -- a serialized sweep result failed validation.
* :class:`SpecError` -- a declarative simulation spec failed validation
  against the service registry (see :mod:`repro.service.specs`).
* :class:`TaskError` -- a task graph (task kinds, payloads, input wiring)
  failed validation (see :mod:`repro.service.tasks`); a subclass of
  :class:`SpecError` so spec-rejection handling covers both.
* :class:`CacheError` -- a result-cache store or entry was malformed or
  misused (see :mod:`repro.service.cache`).
* :class:`JournalError` -- the persistent job journal is malformed or
  unreadable (see :mod:`repro.service.journal`).
* :class:`ServiceError` -- the simulation service (scheduler / HTTP API /
  client) was misused or returned a failure.  The client raises typed
  subclasses carrying transport context: :class:`ServiceConnectionError`
  (the server was unreachable mid-request) and
  :class:`ServiceResponseError` (a non-2xx response; ``status`` and the
  server's JSON ``payload`` are attached), itself specialized into
  :class:`SpecRejectedError` (400), :class:`AuthenticationError` (401),
  :class:`PayloadTooLargeError` (413), :class:`UnknownResourceError`
  (404), :class:`LeaseExpiredError` (409, a work lease was reclaimed --
  see :mod:`repro.service.fleet`), :class:`RateLimitedError` (429,
  carries ``retry_after``), and :class:`QuotaExceededError` (429 for an
  exhausted per-tenant quota -- a :class:`RateLimitedError` subclass
  that bounded retry must *not* retry, because waiting does not
  replenish a quota).  The same classes are raised server-side by
  :mod:`repro.service.tenancy` and :mod:`repro.service.fleet` and
  mapped onto HTTP statuses by the request handler.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidTreeError(ReproError, ValueError):
    """A parent array / edge set does not describe a rooted tree."""


class InvalidGraphError(ReproError, ValueError):
    """A matrix is not a valid (square, boolean, reflexive) adjacency matrix."""


class DimensionMismatchError(ReproError, ValueError):
    """Objects defined over different numbers of nodes were combined."""


class BackendError(ReproError, ValueError):
    """An unknown or misused matrix backend was requested."""


class AdversaryError(ReproError, RuntimeError):
    """An adversary produced an illegal tree or was driven out of range."""


class SearchBudgetExceeded(ReproError, RuntimeError):
    """An exhaustive or beam search exceeded its configured budget.

    Attributes
    ----------
    states_explored:
        Number of distinct states explored before the cap was hit.
    """

    def __init__(self, message: str, states_explored: int = 0) -> None:
        super().__init__(message)
        self.states_explored = states_explored


class SimulationError(ReproError, RuntimeError):
    """The synchronous round engine was used incorrectly."""


class TraceError(ReproError, ValueError):
    """A serialized trace is malformed or fails replay validation."""


class SweepFormatError(ReproError, ValueError):
    """A serialized sweep result is malformed (see ``SweepResult.from_json``)."""


class SpecError(ReproError, ValueError):
    """A declarative simulation spec failed registry validation."""


class TaskError(SpecError):
    """A task graph failed validation (unknown kind, bad payload/inputs)."""


class CacheError(ReproError, ValueError):
    """A result-cache entry or store is malformed or was misused."""


class JournalError(ReproError, ValueError):
    """The persistent job journal is malformed or could not be replayed."""


class ServiceError(ReproError, RuntimeError):
    """The simulation service (scheduler/HTTP/client) failed or was misused."""


class ServiceConnectionError(ServiceError):
    """The service could not be reached (refused, reset, timed out)."""


class ServiceResponseError(ServiceError):
    """The service answered with a non-2xx status.

    Attributes
    ----------
    status:
        The HTTP status code of the response.
    payload:
        The decoded JSON error document the server returned (the
        ``error`` field becomes the exception message).
    """

    def __init__(
        self, message: str, status: int, payload: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.payload: Dict[str, Any] = dict(payload or {})


class SpecRejectedError(ServiceResponseError):
    """The service rejected a submitted spec or task graph (HTTP 400)."""


class AuthenticationError(ServiceResponseError):
    """The request carried a missing or invalid bearer token (HTTP 401)."""

    def __init__(
        self, message: str, status: int = 401, payload: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(message, status=status, payload=payload)


class RateLimitedError(ServiceResponseError):
    """The service applied backpressure (HTTP 429).

    Attributes
    ----------
    retry_after:
        Seconds after which the request is expected to be admitted
        (the ``Retry-After`` header / ``retry_after`` payload field),
        or ``None`` when the server did not say.
    """

    def __init__(
        self,
        message: str,
        status: int = 429,
        payload: Optional[Dict[str, Any]] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message, status=status, payload=payload)
        self.retry_after: Optional[float] = (
            None if retry_after is None else float(retry_after)
        )


class QuotaExceededError(RateLimitedError):
    """A per-tenant quota (bytes or jobs) is exhausted (HTTP 429).

    Subclasses :class:`RateLimitedError` so blanket 429 handling covers
    both, but bounded retry skips it: waiting replenishes a token
    bucket, not a quota.
    """


class LeaseExpiredError(ServiceResponseError):
    """A work lease is unknown or already expired (HTTP 409).

    Raised server-side by :class:`repro.service.fleet.WorkQueue` when a
    worker heartbeats a lease that has been reclaimed, and client-side
    for 409 responses.  A worker receiving it must abandon the batch:
    the tasks have re-entered the ready set and another worker (or the
    server's local fallback) owns them now.
    """

    def __init__(
        self, message: str, status: int = 409, payload: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(message, status=status, payload=payload)


class PayloadTooLargeError(ServiceResponseError):
    """The request body exceeded the server's configured cap (HTTP 413)."""


class UnknownResourceError(ServiceResponseError):
    """The requested job/path does not exist on the service (HTTP 404)."""
