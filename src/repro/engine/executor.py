"""Unified execution layer: one ``RunSpec`` in, one ``RunReport`` out.

Before this module the repository had four divergent ways to drive a
broadcast run (``core.broadcast.run_adversary``, the instrumented
``engine.runner.run_engine``, the batched ``engine.runner``/``engine.batch``
path, and the sharded ``engine.shard`` pool), each with its own loop,
round-cap policy, and result shape.  They are now all facades over this
layer:

* :class:`RunSpec` -- the full description of one run: adversary (instance
  or ``n -> adversary`` factory), ``n``, seed, ``max_rounds``, backend, and
  instrumentation level;
* :class:`Executor` -- the protocol: ``run(spec)``, ``run_many(specs)``,
  and ``sweep(factories, ns)``, all returning :class:`RunReport` /
  :class:`~repro.analysis.sweep.SweepResult`;
* :class:`SequentialExecutor` -- one run at a time, supports every
  instrumentation level (history snapshots, replayable traces + metrics);
* :class:`BatchExecutor` -- groups compatible specs and advances them in
  lockstep through one :class:`~repro.engine.batch.BatchRunner` per group
  (vectorized compose + completion checks);
* :class:`ShardedExecutor` -- partitions the spec list across a
  ``multiprocessing`` pool, each worker running a :class:`BatchExecutor`
  shard; results merge back in spec order.

All three are decision-equivalent by construction: every run observes only
the state its own moves produced, and the round-cap policy is resolved in
exactly one place (:func:`repro.core.bounds.resolve_round_cap`).

Compiled-schedule fast path
---------------------------
Oblivious adversaries (fixed sequences, static/rotating/alternating paths,
round-robins) implement
:meth:`~repro.adversaries.base.Adversary.compile_schedule`: the whole run
as one packed ``(rounds, n)`` parent array, memoized by canonical tree
form in :mod:`repro.trees.compile`.  Executors then drive the backend
compose kernels / :meth:`~repro.engine.batch.BatchRunner.step_parents`
directly, skipping per-round :class:`RootedTree` construction and
validation in the hot loop -- bit-identical to the uncompiled path (the
schedule rows *are* the trees' parent arrays) and ~10x faster for
schedules that would otherwise rebuild a tree every round.  Horizons grow
by doubling up to the round cap, so an ``n²`` cap never materializes an
``n²``-row array for a run that finishes in ``O(n)`` rounds.

This layer is where future async/GPU executors plug in: implement
``run_many`` against :class:`RunSpec`/:class:`RunReport` and every sweep,
benchmark, and CLI entry point picks it up through
:func:`get_executor`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.backend import BackendLike, get_backend
from repro.core.bounds import resolve_round_cap
from repro.core.broadcast import BroadcastResult, RoundSnapshot
from repro.core.kernels import static_completion_search
from repro.core.state import BroadcastState
from repro.engine.batch import BatchRunner
from repro.engine.events import RoundRecord
from repro.engine.metrics import MetricsCollector, RunMetrics
from repro.engine.trace import Trace, TraceRecorder
from repro.errors import AdversaryError, SimulationError
from repro.obs import profile as _profile
from repro.obs import trace as _obs_trace
from repro.trees.rooted_tree import RootedTree
from repro.types import AdversaryProtocol, validate_node_count

if TYPE_CHECKING:  # runtime import stays lazy (analysis.sweep imports us back)
    from repro.analysis.sweep import SweepResult

#: Accepted ``RunSpec.instrumentation`` levels, cheapest first.
INSTRUMENTATION_LEVELS = ("none", "history", "trace")

#: Names :func:`get_executor` resolves, in registry order.
EXECUTOR_NAMES = ("sequential", "batch", "sharded")

#: An adversary instance, or a picklable ``n -> adversary`` factory.
AdversarySpec = Union[AdversaryProtocol, Callable[[int], AdversaryProtocol]]


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one broadcast run.

    Attributes
    ----------
    adversary:
        An adversary instance (reset before the run) or a callable
        ``factory(n) -> adversary`` (required for sharded execution,
        where the spec crosses a process boundary).
    n:
        Number of processes.
    seed:
        Metadata recorded into traces/reports; the adversary's own RNG
        seeding is the factory's job.
    max_rounds:
        Explicit round cap: truncates quietly (``t_star=None``).  ``None``
        means the trivial ``n²`` bound, where exceeding it *raises*
        (see :func:`repro.core.bounds.resolve_round_cap`).
    backend:
        Matrix backend name or instance (``None`` = process default).
    instrumentation:
        ``"none"`` (fastest, compiled fast path eligible), ``"history"``
        (per-round :class:`RoundSnapshot` list), or ``"trace"``
        (replayable :class:`Trace` + :class:`RunMetrics`).
    keep_trees:
        Record the played trees on the report (forces the uncompiled
        loop).
    name:
        Display name for sweep tables; defaults to the adversary's own.
    """

    adversary: AdversarySpec
    n: int
    seed: Optional[int] = None
    max_rounds: Optional[int] = None
    backend: BackendLike = None
    instrumentation: str = "none"
    keep_trees: bool = False
    name: Optional[str] = None

    def __post_init__(self) -> None:
        validate_node_count(self.n)
        if self.instrumentation not in INSTRUMENTATION_LEVELS:
            raise SimulationError(
                f"instrumentation must be one of {INSTRUMENTATION_LEVELS}, "
                f"got {self.instrumentation!r}"
            )

    def make_adversary(self) -> AdversaryProtocol:
        """Instantiate (factories) or reset (instances) the adversary."""
        adv = self.adversary
        if isinstance(adv, type) or not hasattr(adv, "next_tree"):
            adv = adv(self.n)
        adv.reset()
        return adv

    def round_cap(self) -> Tuple[int, bool]:
        """The shared ``(cap, explicit)`` round-cap policy for this run."""
        return resolve_round_cap(self.n, self.max_rounds)

    def display_name(self, adversary: Optional[AdversaryProtocol] = None) -> str:
        """Label for tables/traces: explicit ``name``, else the adversary's."""
        if self.name is not None:
            return self.name
        target = adversary if adversary is not None else self.adversary
        return getattr(target, "name", type(target).__name__)


@dataclass
class RunReport:
    """The uniform outcome every executor returns.

    ``history``/``trees`` are populated per the spec's instrumentation
    level and ``keep_trees`` flag; ``trace``/``metrics`` only at the
    ``"trace"`` level.  ``compiled`` is True when the compiled
    parent-schedule fast path drove the entire run.

    ``timings`` is populated only while :mod:`repro.obs.profile` is
    enabled: ``{"decision_s", "kernel_s"}`` -- adversary think time vs
    backend compose time (batched executors attribute the group totals
    to every report in the group).  It is deliberately *not* part of the
    cached document (:func:`repro.service.cache.report_to_doc`): cache
    hits must stay byte-identical to fresh recomputation, and wall-clock
    is not content.
    """

    t_star: Optional[int]
    n: int
    rounds: int
    adversary_name: str
    broadcasters: Tuple[int, ...]
    final_state: BroadcastState
    seed: Optional[int] = None
    history: List[RoundSnapshot] = field(default_factory=list)
    trees: List[RootedTree] = field(default_factory=list)
    trace: Optional[Trace] = None
    metrics: Optional[RunMetrics] = None
    compiled: bool = False
    executor: str = "sequential"
    timings: Optional[Dict[str, float]] = None

    @property
    def completed(self) -> bool:
        """True iff broadcast finished within the allotted rounds."""
        return self.t_star is not None

    def normalized_time(self) -> Optional[float]:
        """``t*/n`` -- the constant the paper's bounds are about."""
        if self.t_star is None:
            return None
        return self.t_star / self.n

    def to_broadcast_result(self) -> BroadcastResult:
        """Down-convert to the legacy :class:`BroadcastResult` shape."""
        return BroadcastResult(
            t_star=self.t_star,
            n=self.n,
            broadcasters=self.broadcasters,
            final_state=self.final_state,
            history=self.history,
            trees=self.trees,
        )


def _validated_tree(tree: object, n: int) -> RootedTree:
    """The adversary-output checks every uncompiled loop shares."""
    if not isinstance(tree, RootedTree):
        raise AdversaryError(
            f"adversary returned {type(tree).__name__}, expected RootedTree"
        )
    if tree.n != n:
        raise AdversaryError(
            f"adversary returned a tree over {tree.n} nodes in a game over {n}"
        )
    return tree


def _validated_row(row: np.ndarray, n: int) -> np.ndarray:
    """Shape-check a parent row produced by a ``next_parents`` override."""
    row = np.asarray(row, dtype=np.int64)
    if row.shape != (n,):
        raise AdversaryError(
            f"adversary returned a parent row of shape {row.shape}, "
            f"expected ({n},)"
        )
    return row


def _parents_hook(adv: AdversaryProtocol):
    """``adv.next_parents`` when genuinely overridden, else ``None``.

    The base-class implementation just routes through ``next_tree``, so
    engines prefer the validated tree path unless the adversary supplies
    a real row-producing override (the streaming analog of
    ``compile_schedule`` for adaptive strategies).
    """
    from repro.adversaries.base import Adversary

    fn = getattr(type(adv), "next_parents", None)
    if fn is None or fn is Adversary.next_parents:
        return None
    return adv.next_parents


def _static_parent_row(adv: AdversaryProtocol, n: int) -> Optional[np.ndarray]:
    """The adversary's static-schedule parent row, shape-checked, or ``None``."""
    fn = getattr(adv, "compile_static_row", None)
    if fn is None:
        return None
    row = fn(n)
    if row is None:
        return None
    row = np.asarray(row, dtype=np.int64)
    if row.shape != (n,):
        return None
    return row


def _static_report(
    spec: RunSpec,
    name: str,
    row: np.ndarray,
    n: int,
    cap: int,
    explicit: bool,
    executor_name: str,
) -> RunReport:
    """One static-schedule run via the repeated-squaring t* search.

    Byte-identical to the round-by-round loop (the search composes the
    exact same parent row) with identical cap semantics: a non-explicit
    cap raises, an explicit one truncates with the state after exactly
    ``cap`` rounds.
    """
    backend = get_backend(spec.backend)
    t_star, mat, rounds = static_completion_search(backend, row, n, cap)
    if t_star is None and not explicit:
        raise _cap_error([name], cap)
    state = BroadcastState._wrap(mat, n, rounds, backend)
    return RunReport(
        t_star=t_star,
        n=n,
        rounds=rounds,
        adversary_name=name,
        broadcasters=state.broadcasters() if t_star is not None else (),
        final_state=state,
        seed=spec.seed,
        compiled=True,
        executor=executor_name,
    )


def _cap_error(names: Sequence[str], cap: int) -> AdversaryError:
    label = repr(list(names) if len(names) != 1 else names[0])
    return AdversaryError(
        f"adversary {label} did not allow broadcast within the trivial bound "
        f"n² = {cap}; rooted trees guarantee termination, so the adversary "
        "produced illegal round graphs"
    )


class _ScheduleCursor:
    """Serve compiled parent rows, growing the horizon by doubling.

    ``row(t)`` returns the round-``t`` row, recompiling at a doubled
    horizon when ``t`` runs past the current one (memoized schedules make
    that cheap), or ``None`` if the adversary stops compiling -- the
    executor then falls back to ``next_tree`` mid-run, which is sound
    because :meth:`~repro.adversaries.base.Adversary.compile_schedule`'s
    contract restricts it to round-index-pure strategies.
    """

    __slots__ = ("_adv", "_n", "_cap", "_horizon", "_rows")

    #: Smallest initial horizon; real runs of legal adversaries at small
    #: ``n`` finish within ``2n + 2`` rounds only rarely, but doubling
    #: keeps the total compile work within 2x of the final horizon anyway.
    MIN_HORIZON = 16

    def __init__(self, adv: AdversaryProtocol, n: int, cap: int, horizon: int, rows: np.ndarray) -> None:
        self._adv = adv
        self._n = n
        self._cap = cap
        self._horizon = horizon
        self._rows = rows

    @classmethod
    def try_compile(
        cls, adv: AdversaryProtocol, n: int, cap: int
    ) -> Optional["_ScheduleCursor"]:
        """A cursor over ``adv``'s compiled schedule, or ``None``."""
        compile_fn = getattr(adv, "compile_schedule", None)
        if compile_fn is None:
            return None
        horizon = min(cap, max(2 * n + 2, cls.MIN_HORIZON))
        rows = compile_fn(n, horizon)
        if rows is None:
            return None
        rows = np.asarray(rows)
        if rows.shape != (horizon, n):
            return None
        return cls(adv, n, cap, horizon, rows)

    def row(self, t: int) -> Optional[np.ndarray]:
        """Parent row for 1-based round ``t`` (``None`` = fall back)."""
        while t > self._horizon:
            if self._horizon >= self._cap:
                return None
            horizon = min(self._cap, self._horizon * 2)
            rows = self._adv.compile_schedule(self._n, horizon)
            if rows is None:
                return None
            rows = np.asarray(rows)
            if rows.shape != (horizon, self._n):
                return None
            self._horizon = horizon
            self._rows = rows
        return self._rows[t - 1]


class Executor:
    """Protocol every execution engine implements.

    ``run`` executes one spec, ``run_many`` a list (results in spec
    order), ``sweep`` measures a ``{name: factory} x ns`` grid into a
    :class:`~repro.analysis.sweep.SweepResult`.  Implementations must be
    decision-equivalent: identical ``t_star`` / broadcaster results for
    identical specs.
    """

    #: Registry name used by :func:`get_executor` and the CLI ``--engine``.
    name: str = "abstract"

    def run(self, spec: RunSpec) -> RunReport:
        """Execute one run."""
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence[RunSpec]) -> List[RunReport]:
        """Execute many runs; reports are returned in spec order."""
        raise NotImplementedError

    def run_many_settled(
        self, specs: Sequence[RunSpec]
    ) -> List[Union[RunReport, Exception]]:
        """``run_many`` with per-spec failure isolation.

        The whole list is dispatched through :meth:`run_many` first (one
        batched/sharded call -- the fast path); if that raises, each spec
        is retried individually so exactly the offending specs settle to
        their exception while the rest still produce reports.  Results
        are in spec order; callers dispatching independent work units
        (the service scheduler, task-graph execution) use this so one bad
        adversary cannot fail its batch neighbours.
        """
        with _obs_trace.span("executor", executor=self.name, specs=len(specs)):
            try:
                return list(self.run_many(specs))
            except Exception:
                settled: List[Union[RunReport, Exception]] = []
                for spec in specs:
                    try:
                        settled.append(self.run(spec))
                    except Exception as exc:
                        settled.append(exc)
                return settled

    def sweep(
        self,
        adversary_factories: Dict[str, Callable[[int], AdversaryProtocol]],
        ns: Sequence[int],
        max_rounds: Optional[int] = None,
        backend: BackendLike = None,
        cache: Optional[object] = None,
    ) -> "SweepResult":
        """Measure ``t*`` for every (factory, n) grid point, ``n``-major.

        Points truncated by an explicit ``max_rounds`` are dropped, same
        as :func:`repro.analysis.sweep.sweep_adversaries`.

        ``cache`` (opt-in) is a cell-cache adapter -- typically
        :class:`repro.service.cache.SweepCellCache` -- with three duck
        hooks: ``key_for(run_spec)`` (``None`` = cell not addressable),
        ``lookup(key) -> (hit, t_star)``, and ``store(key, t_star)``.
        Cached cells skip execution entirely; only the missing cells run,
        and the merged result is bit-identical to a cold sweep (the
        cached value *is* the cold value, and point order is grid order
        either way).  Cells whose factories carry no declarative spec
        (plain callables) bypass the cache and always compute.
        """
        from repro.analysis.sweep import SweepResult, make_sweep_point

        specs = [
            RunSpec(
                adversary=factory,
                n=n,
                max_rounds=max_rounds,
                backend=backend,
                name=name,
            )
            for n in ns
            for name, factory in adversary_factories.items()
        ]
        t_stars: List[Optional[int]] = [None] * len(specs)
        if cache is None:
            missing = list(range(len(specs)))
            keys: List[Optional[str]] = [None] * len(specs)
        else:
            missing = []
            keys = [cache.key_for(spec) for spec in specs]
            for i, key in enumerate(keys):
                hit, value = cache.lookup(key) if key is not None else (False, None)
                if hit:
                    t_stars[i] = value
                else:
                    missing.append(i)
        if missing:
            reports = self.run_many([specs[i] for i in missing])
            for i, report in zip(missing, reports):
                t_stars[i] = report.t_star
                if cache is not None and keys[i] is not None:
                    cache.store(keys[i], report.t_star)
        points = [
            make_sweep_point(spec.name, spec.n, t_star)
            for spec, t_star in zip(specs, t_stars)
        ]
        return SweepResult(points=[p for p in points if p is not None])

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SequentialExecutor(Executor):
    """One run at a time; the only executor with full instrumentation.

    ``use_compiled=False`` disables the compiled-schedule fast path
    (ablation benchmarks and the bit-identity tests use this to pin the
    two paths against each other).  ``use_squaring`` (default: follows
    ``use_compiled``) separately gates the repeated-squaring t* search
    for static schedules, so benchmarks can pin squaring against the
    compiled round-by-round loop.
    """

    name = "sequential"

    def __init__(
        self, use_compiled: bool = True, use_squaring: Optional[bool] = None
    ) -> None:
        self._use_compiled = use_compiled
        self._use_squaring = use_compiled if use_squaring is None else use_squaring

    def run_many(self, specs: Sequence[RunSpec]) -> List[RunReport]:
        return [self.run(spec) for spec in specs]

    def run(self, spec: RunSpec) -> RunReport:
        with _obs_trace.span("run", executor=self.name, n=spec.n) as sp:
            report = self._run(spec)
            sp.set_attrs(
                adversary=report.adversary_name,
                t_star=report.t_star,
                rounds=report.rounds,
                compiled=report.compiled,
            )
            if report.timings is not None:
                sp.set_attrs(
                    decision_s=round(report.timings["decision_s"], 6),
                    kernel_s=round(report.timings["kernel_s"], 6),
                )
            return report

    def _run(self, spec: RunSpec) -> RunReport:
        adv = spec.make_adversary()
        n = spec.n
        cap, explicit = spec.round_cap()
        name = spec.display_name(adv)
        level = spec.instrumentation
        want_stats = level in ("history", "trace")
        if level == "none" and not spec.keep_trees and self._use_squaring:
            row = _static_parent_row(adv, n)
            if row is not None:
                # Squaring is one long kernel call; its time shows up as
                # the "squaring" kernel row, not a decision/kernel split.
                return _static_report(spec, name, row, n, cap, explicit, self.name)
        recorder = TraceRecorder(n, name, seed=spec.seed) if level == "trace" else None
        collector = MetricsCollector(n) if level == "trace" else None
        history: List[RoundSnapshot] = []
        played: List[RootedTree] = []
        state = BroadcastState.initial(n, backend=spec.backend)
        cursor = None
        parents_fn = None
        if level == "none" and not spec.keep_trees:
            if self._use_compiled:
                cursor = _ScheduleCursor.try_compile(adv, n, cap)
            parents_fn = _parents_hook(adv)
        compiled = cursor is not None
        # Phase split (profiling only): decision = adversary / schedule
        # calls, kernel = backend composes.  The `if measure` guards keep
        # the disabled loop clock-free.
        measure = _profile.enabled()
        now = time.perf_counter
        dec_s = 0.0
        ker_s = 0.0
        t = 0
        while not state.is_broadcast_complete():
            if t >= cap:
                if explicit:
                    break
                raise _cap_error([name], cap)
            t += 1
            if cursor is not None:
                p0 = now() if measure else 0.0
                row = cursor.row(t)
                if measure:
                    dec_s += now() - p0
                if row is not None:
                    p0 = now() if measure else 0.0
                    state.apply_parents_inplace(row)
                    if measure:
                        ker_s += now() - p0
                    continue
                # Horizon stopped compiling; finish on the generic loop.
                cursor = None
                compiled = False
            if parents_fn is not None:
                p0 = now() if measure else 0.0
                row = _validated_row(parents_fn(state, t), n)
                if measure:
                    dec_s += now() - p0
                    p0 = now()
                state.apply_parents_inplace(row)
                if measure:
                    ker_s += now() - p0
                continue
            p0 = now() if measure else 0.0
            tree = _validated_tree(adv.next_tree(state, t), n)
            if measure:
                dec_s += now() - p0
            before_edges = state.edge_count() if want_stats else 0
            p0 = now() if measure else 0.0
            state.apply_tree_inplace(tree)
            if measure:
                ker_s += now() - p0
            if spec.keep_trees:
                played.append(tree)
            if want_stats:
                sizes = state.reach_sizes()
                stats = dict(
                    round_index=t,
                    new_edges=state.edge_count() - before_edges,
                    max_reach=int(sizes.max()),
                    min_reach=int(sizes.min()),
                    broadcaster_count=len(state.broadcasters()),
                )
                if level == "history":
                    history.append(RoundSnapshot(tree=tree, **stats))
                else:
                    record = RoundRecord(parents=tree.parents, **stats)
                    recorder.record_round(record)
                    collector.observe_round(record, tree)
        t_star = t if state.is_broadcast_complete() else None
        timings = None
        if measure:
            timings = {"decision_s": dec_s, "kernel_s": ker_s}
            _profile.record_phases(self.name, dec_s, ker_s)
        return RunReport(
            t_star=t_star,
            n=n,
            rounds=state.round_index,
            adversary_name=name,
            broadcasters=state.broadcasters() if t_star is not None else (),
            final_state=state,
            seed=spec.seed,
            history=history,
            trees=played,
            trace=recorder.finish(t_star) if recorder is not None else None,
            metrics=collector.finish(t_star) if collector is not None else None,
            compiled=compiled,
            executor=self.name,
            timings=timings,
        )


class BatchExecutor(Executor):
    """Advance compatible specs in lockstep through one batched tensor.

    Specs are grouped by ``(n, backend, max_rounds)`` (order within the
    result list is preserved regardless); each group becomes one
    :class:`~repro.engine.batch.BatchRunner` whose per-round composition
    and completion checks run as single vectorized kernels.  Element-wise
    decision-equivalent to :class:`SequentialExecutor`: every adversary
    observes a zero-copy view of exactly the state its own moves
    produced, and is never queried once its run has a broadcaster.

    Specs requesting instrumentation (or ``keep_trees``) fall back to a
    :class:`SequentialExecutor` run -- per-round statistics are inherently
    per-run work, and correctness beats batching for the handful of
    instrumented runs.
    """

    name = "batch"

    def __init__(
        self, use_compiled: bool = True, use_squaring: Optional[bool] = None
    ) -> None:
        self._use_compiled = use_compiled
        self._use_squaring = use_compiled if use_squaring is None else use_squaring
        self._sequential = SequentialExecutor(
            use_compiled=use_compiled, use_squaring=use_squaring
        )

    def run_many(self, specs: Sequence[RunSpec]) -> List[RunReport]:
        reports: List[Optional[RunReport]] = [None] * len(specs)
        groups: Dict[Tuple, List[int]] = {}
        for i, spec in enumerate(specs):
            if spec.instrumentation != "none" or spec.keep_trees:
                reports[i] = self._sequential.run(spec)
                continue
            backend = get_backend(spec.backend)
            groups.setdefault((spec.n, id(backend), spec.max_rounds), []).append(i)
        for indices in groups.values():
            for i, report in zip(indices, self._run_group([specs[i] for i in indices])):
                reports[i] = report
        return reports  # every index was filled by a group or the fallback

    def _run_group(self, group: Sequence[RunSpec]) -> List[RunReport]:
        n = group[0].n
        backend = get_backend(group[0].backend)
        cap, explicit = group[0].round_cap()
        all_advs = [spec.make_adversary() for spec in group]
        all_names = [spec.display_name(adv) for spec, adv in zip(group, all_advs)]
        results: List[Optional[RunReport]] = [None] * len(group)
        live: List[int] = []
        for idx, adv in enumerate(all_advs):
            row = _static_parent_row(adv, n) if self._use_squaring else None
            if row is not None:
                # Static schedules skip the lockstep loop entirely: the
                # squaring search finishes in O(log t*) compositions.
                results[idx] = _static_report(
                    group[idx], all_names[idx], row, n, cap, explicit, self.name
                )
            else:
                live.append(idx)
        if not live:
            return results
        group = [group[i] for i in live]
        advs = [all_advs[i] for i in live]
        names = [all_names[i] for i in live]
        cursors: List[Optional[_ScheduleCursor]] = [
            _ScheduleCursor.try_compile(adv, n, cap) if self._use_compiled else None
            for adv in advs
        ]
        hooks = [_parents_hook(adv) for adv in advs]
        compiled = [cursor is not None for cursor in cursors]
        runner = BatchRunner(n, len(group), backend=backend)
        noop = np.arange(n, dtype=np.int64)
        parents = np.empty((len(group), n), dtype=np.int64)
        # Phase split (profiling only): decision = the per-run adversary
        # loop, kernel = the batched lockstep compose.  The group totals
        # are attributed to every report in the group -- the batch shares
        # one kernel call per round, so a per-run split does not exist.
        measure = _profile.enabled()
        now = time.perf_counter
        dec_s = 0.0
        ker_s = 0.0
        with _obs_trace.span(
            "run_group", executor=self.name, n=n, runs=len(group)
        ) as sp:
            while not runner.all_complete:
                if runner.round_index >= cap:
                    if explicit:
                        break
                    stuck = [
                        name
                        for b, name in enumerate(names)
                        if runner.t_star(b) is None
                    ]
                    raise AdversaryError(
                        f"adversaries {stuck!r} exceeded the trivial n² cap ({cap})"
                    )
                t = runner.round_index + 1
                p0 = now() if measure else 0.0
                for b, adv in enumerate(advs):
                    if runner.t_star(b) is not None:
                        parents[b] = noop
                        continue
                    cursor = cursors[b]
                    if cursor is not None:
                        row = cursor.row(t)
                        if row is not None:
                            parents[b] = row
                            continue
                        cursors[b] = None
                        compiled[b] = False
                    if hooks[b] is not None:
                        parents[b] = _validated_row(
                            hooks[b](runner.state_view(b), t), n
                        )
                        continue
                    tree = _validated_tree(adv.next_tree(runner.state_view(b), t), n)
                    parents[b] = tree.parent_array_numpy()
                if measure:
                    dec_s += now() - p0
                    p0 = now()
                runner.step_parents(parents)
                if measure:
                    ker_s += now() - p0
            sp.set_attrs(rounds=runner.round_index)
            if measure:
                sp.set_attrs(
                    decision_s=round(dec_s, 6), kernel_s=round(ker_s, 6)
                )
        timings = None
        if measure:
            timings = {"decision_s": dec_s, "kernel_s": ker_s}
            _profile.record_phases(self.name, dec_s, ker_s)
        for b, (idx, spec) in enumerate(zip(live, group)):
            t_star = runner.t_star(b)
            final = runner.state(b, round_index=t_star)
            results[idx] = RunReport(
                t_star=t_star,
                n=n,
                rounds=final.round_index,
                adversary_name=names[b],
                broadcasters=runner.broadcasters(b) if t_star is not None else (),
                final_state=final,
                seed=spec.seed,
                compiled=compiled[b],
                executor=self.name,
                timings=timings,
            )
        return results


def _spec_shard_worker(payload: Tuple) -> List[Tuple[int, RunReport]]:
    """Run one shard of specs through a fresh :class:`BatchExecutor`.

    The payload is ``(indices, specs)`` or ``(indices, specs, obs_doc)``;
    the optional third element re-establishes observability in the spawn
    worker (sink path, profiling flag, and the parent's trace context, so
    the shard's spans join the caller's trace tree).
    """
    indices, specs = payload[0], payload[1]
    ctx = None
    if len(payload) > 2 and payload[2] is not None:
        obs_doc = payload[2]
        sink = obs_doc.get("sink")
        if sink and not _obs_trace.enabled():
            _obs_trace.enable(sink)
        if obs_doc.get("profile") and not _profile.enabled():
            _profile.enable()
        ctx = _obs_trace.TraceContext.from_doc(obs_doc.get("ctx"))
    with _obs_trace.context(ctx):
        with _obs_trace.span("shard", specs=len(specs)):
            return list(zip(indices, BatchExecutor().run_many(specs)))


class ShardedExecutor(Executor):
    """Partition spec lists across a ``multiprocessing`` worker pool.

    Sharding follows :class:`repro.engine.shard.ShardedSweepRunner`'s
    determinism recipe: contiguous balanced shards, backends resolved to
    *names* before crossing the ``spawn`` boundary, outputs merged back by
    spec index -- so results are element-wise identical to
    :class:`BatchExecutor` (hence :class:`SequentialExecutor`) for any
    worker count.  Specs must be picklable for ``workers > 1``: use
    factories (module-level callables / classes / ``functools.partial``)
    rather than closures, exactly as sharded sweeps require.

    ``workers=1`` runs everything inline through one
    :class:`BatchExecutor` (no pool, no pickling requirement).
    """

    name = "sharded"

    def __init__(
        self,
        workers: Optional[int] = None,
        backend: BackendLike = None,
        mp_context: str = "spawn",
    ) -> None:
        from repro.engine.shard import resolve_pool_config

        self._workers, self._mp_context = resolve_pool_config(workers, mp_context)
        self._backend = backend

    @property
    def workers(self) -> int:
        """Maximum number of worker processes."""
        return self._workers

    def _prepare(self, spec: RunSpec) -> RunSpec:
        """Resolve the spec's backend to a spawn-safe *name*."""
        backend = spec.backend if spec.backend is not None else self._backend
        return replace(spec, backend=get_backend(backend).name)

    def run_many(self, specs: Sequence[RunSpec]) -> List[RunReport]:
        from repro.engine.shard import pool_map, split_shards

        if not specs:
            return []
        indexed = list(enumerate(self._prepare(spec) for spec in specs))
        # Observability crosses the spawn boundary explicitly: workers get
        # the sink path + profiling flag + current trace context in the
        # payload (env inheritance also works, but programmatic enable()
        # -- e.g. `serve --trace` -- never touches the environment).
        ctx = _obs_trace.current_context()
        obs_doc = None
        if ctx is not None or _obs_trace.enabled() or _profile.enabled():
            obs_doc = {
                "ctx": ctx.to_doc() if ctx is not None else None,
                "sink": _obs_trace.sink_path(),
                "profile": _profile.enabled(),
            }
        payloads = []
        for shard in split_shards(indexed, self._workers):
            shard_payload = ([i for i, _ in shard], [s for _, s in shard])
            if obs_doc is not None:
                shard_payload = shard_payload + (obs_doc,)
            payloads.append(shard_payload)
        merged: List[Tuple[int, RunReport]] = []
        for shard_out in pool_map(
            _spec_shard_worker, payloads, self._workers, self._mp_context
        ):
            merged.extend(shard_out)
        merged.sort(key=lambda pair: pair[0])
        return [report for _, report in merged]

    def sweep(
        self,
        adversary_factories: Dict[str, Callable[[int], AdversaryProtocol]],
        ns: Sequence[int],
        max_rounds: Optional[int] = None,
        backend: BackendLike = None,
        cache: Optional[object] = None,
    ) -> "SweepResult":
        """Sharded sweep via :class:`~repro.engine.shard.ShardedSweepRunner`.

        Delegates to the proven bit-identical merge path (the runner's
        workers drive :class:`BatchExecutor` through
        :func:`repro.engine.runner.run_adversaries_batch`).  With a
        ``cache``, the generic cache-aware grid path runs instead (cells
        still execute through this executor's sharded ``run_many``, so
        the result stays bit-identical for any worker count) -- cache
        lookups and stores must happen in the parent process.
        """
        if cache is not None:
            return Executor.sweep(
                self,
                adversary_factories,
                ns,
                max_rounds=max_rounds,
                backend=backend,
                cache=cache,
            )
        from repro.engine.shard import ShardedSweepRunner

        runner = ShardedSweepRunner(
            workers=self._workers,
            backend=backend if backend is not None else self._backend,
            mp_context=self._mp_context,
        )
        return runner.sweep_adversaries(adversary_factories, ns, max_rounds=max_rounds)


def get_executor(
    spec: Union[str, Executor, None] = None,
    workers: Optional[int] = None,
    backend: BackendLike = None,
    mp_context: str = "spawn",
) -> Executor:
    """Resolve an executor from a name (``--engine``) or pass one through.

    ``workers``/``backend``/``mp_context`` only apply when constructing a
    :class:`ShardedExecutor`; ``None`` defaults to ``"sequential"``.
    """
    if isinstance(spec, Executor):
        return spec
    name = spec if spec is not None else "sequential"
    if name == "sequential":
        return SequentialExecutor()
    if name == "batch":
        return BatchExecutor()
    if name == "sharded":
        return ShardedExecutor(workers=workers, backend=backend, mp_context=mp_context)
    raise SimulationError(
        f"unknown executor {name!r}; available: {EXECUTOR_NAMES}"
    )


__all__ = [
    "EXECUTOR_NAMES",
    "INSTRUMENTATION_LEVELS",
    "RunSpec",
    "RunReport",
    "Executor",
    "SequentialExecutor",
    "BatchExecutor",
    "ShardedExecutor",
    "get_executor",
]
