"""Process-level synchronous round engine.

The matrix engine (:mod:`repro.core`) implements the paper's
adjacency-matrix view.  This package implements the *same model a second,
independent way* -- as message-passing processes in the heard-of style
(Charron-Bost & Schiper [2]): each process holds the set of process ids it
has heard of; in each round every process sends its set along its outgoing
tree edges (to its children) and keeps its own (self-loop).

Equivalence of the two engines over arbitrary tree sequences is one of the
repository's core property tests.  The package also provides trace
recording/replay and per-round metrics collection.
"""

from repro.engine.simulator import HeardOfSimulator, Process
from repro.engine.events import RoundRecord, TraceEvent
from repro.engine.trace import Trace, TraceRecorder, replay_trace
from repro.engine.batch import BatchRunner, run_sequences_batch, score_candidates
from repro.engine.executor import (
    BatchExecutor,
    Executor,
    RunReport,
    RunSpec,
    SequentialExecutor,
    ShardedExecutor,
    get_executor,
)
from repro.engine.runner import (
    compare_engines,
    run_adversaries_batch,
    run_engine,
    run_multi_seed,
)
from repro.engine.metrics import MetricsCollector, RunMetrics
from repro.engine.rng import derive_rng, spawn_seeds
from repro.engine.shard import ShardedSweepRunner, default_sweep_factories

__all__ = [
    "HeardOfSimulator",
    "Process",
    "RoundRecord",
    "TraceEvent",
    "Trace",
    "TraceRecorder",
    "replay_trace",
    "BatchRunner",
    "run_sequences_batch",
    "score_candidates",
    "RunSpec",
    "RunReport",
    "Executor",
    "SequentialExecutor",
    "BatchExecutor",
    "ShardedExecutor",
    "get_executor",
    "run_engine",
    "run_adversaries_batch",
    "run_multi_seed",
    "compare_engines",
    "MetricsCollector",
    "RunMetrics",
    "ShardedSweepRunner",
    "default_sweep_factories",
    "derive_rng",
    "spawn_seeds",
]
