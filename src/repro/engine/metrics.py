"""Per-run metrics aggregation.

:class:`MetricsCollector` folds :class:`~repro.engine.events.RoundRecord`
streams into :class:`RunMetrics`: the aggregate numbers sweeps and
benchmark tables report (broadcast time, edge-growth profile, tree-shape
usage histogram).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.events import RoundRecord
from repro.trees.canonical import classify_shape
from repro.trees.rooted_tree import RootedTree


@dataclass
class RunMetrics:
    """Aggregates over one run.

    Attributes
    ----------
    n: number of processes.
    t_star: broadcast time (None if truncated).
    rounds: rounds executed.
    total_new_edges: product-graph edges added over the run.
    min_new_edges_per_round: smallest per-round edge gain (the paper's
        Section 2 invariant says this is >= 1).
    max_reach_trajectory: per-round leader size (how fast a leader grew).
    shape_histogram: tree-family usage counts (path/star/broom/...).
    normalized_time: ``t*/n`` when finished.
    """

    n: int
    t_star: Optional[int] = None
    rounds: int = 0
    total_new_edges: int = 0
    min_new_edges_per_round: Optional[int] = None
    max_reach_trajectory: List[int] = field(default_factory=list)
    shape_histogram: Dict[str, int] = field(default_factory=dict)

    @property
    def normalized_time(self) -> Optional[float]:
        """``t*/n``, the constant Theorem 3.1 brackets in [1.5, 2.414]."""
        if self.t_star is None:
            return None
        return self.t_star / self.n


class MetricsCollector:
    """Streaming builder for :class:`RunMetrics`."""

    def __init__(self, n: int) -> None:
        self._metrics = RunMetrics(n=n)

    def observe_round(self, record: RoundRecord, tree: RootedTree) -> None:
        """Fold one round into the aggregates."""
        m = self._metrics
        m.rounds += 1
        m.total_new_edges += record.new_edges
        if (
            m.min_new_edges_per_round is None
            or record.new_edges < m.min_new_edges_per_round
        ):
            m.min_new_edges_per_round = record.new_edges
        m.max_reach_trajectory.append(record.max_reach)
        shape = classify_shape(tree)
        m.shape_histogram[shape] = m.shape_histogram.get(shape, 0) + 1

    def finish(self, t_star: Optional[int]) -> RunMetrics:
        """Seal and return the metrics."""
        self._metrics.t_star = t_star
        return self._metrics
