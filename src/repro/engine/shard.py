"""Sharded multiprocess sweep engine.

:class:`ShardedSweepRunner` scales the batched sweep drivers
(:func:`repro.analysis.sweep.sweep_adversaries`,
:func:`repro.engine.runner.run_multi_seed`) across a ``multiprocessing``
worker pool.  The sweep grid is partitioned into contiguous per-process
shards; each worker advances its shard's runs in lockstep through one
:class:`~repro.engine.batch.BatchRunner` per node count, and the parent
merges the shard outputs back into grid order.

Determinism
-----------
Results are **bit-identical to the sequential path regardless of worker
count**, by construction:

* every grid point is an independent run -- its adversary observes only
  the state its own moves produced, whether it shares a batch with 0 or
  100 neighbours, so shard composition cannot influence any outcome;
* per-point RNG comes from the point's own factory argument (its seed /
  node count), never from shared pool state;
* the backend is resolved to a *name* in the parent and re-resolved
  inside each worker, so ``use_backend(...)`` / ``--backend`` selections
  survive the ``spawn`` boundary (child processes do not inherit
  in-process defaults);
* shard outputs carry their grid indices and are merged by index, so the
  merged order equals the sequential enumeration order.

Spawn safety
------------
The default ``mp_context`` is ``"spawn"`` -- the strictest start method
(and the only one on Windows/macOS): workers import everything fresh, so
all shard payloads (factories included) must be picklable.  Plain
functions, classes used as factories, and :func:`functools.partial` over
them are; closures and lambdas are not -- :func:`default_sweep_factories`
provides a picklable portfolio for the common case.  ``workers=1`` runs
the shard inline (no pool, no pickling requirement), which is also the
fallback when the grid has a single shard's worth of work.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.sweep import SweepPoint, SweepResult, make_sweep_point
from repro.core.backend import BackendLike, get_backend
from repro.core.broadcast import BroadcastResult
from repro.errors import SimulationError
from repro.types import AdversaryProtocol

#: Start methods accepted by :class:`ShardedSweepRunner`.
MP_CONTEXTS = ("spawn", "fork", "forkserver")


def usable_cpus() -> int:
    """CPUs this process may actually run on.

    Respects CPU affinity / cgroup pinning where the platform exposes it
    (``os.cpu_count()`` reports the host's cores even inside a container
    pinned to a few of them, which would oversubscribe the pool).
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


@dataclass(frozen=True)
class SweepTask:
    """One grid point: run ``factories[name](n)`` and measure ``t*``."""

    index: int
    name: str
    n: int


def split_shards(items: Sequence, shards: int) -> List[List]:
    """Partition ``items`` into ``shards`` contiguous, balanced chunks.

    The first ``len(items) % shards`` chunks get one extra item
    (``np.array_split`` semantics); empty chunks are dropped.  Contiguity
    keeps same-``n`` grid points together so workers can batch them.
    Shared by :class:`ShardedSweepRunner` and
    :class:`repro.engine.executor.ShardedExecutor`.
    """
    items = list(items)
    shards = max(1, min(shards, len(items)))
    base, extra = divmod(len(items), shards)
    out, start = [], 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        if size:
            out.append(items[start : start + size])
        start += size
    return out


#: Backwards-compatible alias (pre-executor name).
_split_shards = split_shards


def resolve_pool_config(
    workers: Optional[int], mp_context: str
) -> Tuple[int, str]:
    """Validate the worker-pool configuration both sharded engines share.

    ``None`` workers defaults to :func:`usable_cpus` (affinity-aware);
    the returned pair is what :class:`ShardedSweepRunner` and
    :class:`repro.engine.executor.ShardedExecutor` store, so the two
    engines cannot drift in what they accept.
    """
    if workers is None:
        workers = usable_cpus()
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    if mp_context not in MP_CONTEXTS:
        raise SimulationError(
            f"mp_context must be one of {MP_CONTEXTS}, got {mp_context!r}"
        )
    return int(workers), mp_context


def pool_map(
    worker: Callable, payloads: List[Tuple], workers: int, mp_context: str
) -> List[List]:
    """Run ``worker`` over shard payloads, pooled when it pays off.

    Inline (no pool, no pickling requirement) when ``workers == 1`` or
    there is at most one payload; otherwise every payload is
    pickle-checked up front so a non-picklable factory fails with a
    actionable message instead of a deep pool traceback.
    """
    if workers == 1 or len(payloads) <= 1:
        return [worker(p) for p in payloads]
    for payload in payloads:
        try:
            pickle.dumps(payload)
        except Exception as exc:
            raise SimulationError(
                "shard payloads must be picklable for workers > 1 "
                "(factories must be module-level callables, classes, or "
                "functools.partial over them -- not lambdas/closures); "
                f"pickling failed with: {exc}"
            ) from exc
    import multiprocessing as mp

    ctx = mp.get_context(mp_context)
    with ctx.Pool(processes=min(workers, len(payloads))) as pool:
        return pool.map(worker, payloads)


def _sweep_shard_worker(payload: Tuple) -> List[Tuple[int, Optional[SweepPoint]]]:
    """Run one sweep shard; returns ``(grid index, point-or-None)`` pairs.

    Consecutive tasks sharing a node count advance in lockstep through a
    single :class:`~repro.engine.batch.BatchRunner` (via
    :func:`~repro.engine.runner.run_adversaries_batch`); ``None`` marks a
    point truncated by an explicit ``max_rounds`` cap, which the merge
    step drops exactly like the sequential sweep does.
    """
    from repro.engine.runner import run_adversaries_batch

    tasks, factories, backend_name, max_rounds = payload
    backend = get_backend(backend_name)
    out: List[Tuple[int, Optional[SweepPoint]]] = []
    i = 0
    while i < len(tasks):
        j = i
        while j < len(tasks) and tasks[j].n == tasks[i].n:
            j += 1
        group = tasks[i:j]
        n = group[0].n
        results = run_adversaries_batch(
            [factories[task.name](n) for task in group],
            n,
            max_rounds=max_rounds,
            backend=backend,
        )
        for task, result in zip(group, results):
            out.append((task.index, make_sweep_point(task.name, n, result.t_star)))
        i = j
    return out


def _multi_seed_shard_worker(payload: Tuple) -> List[Tuple[int, BroadcastResult]]:
    """Run one multi-seed shard; returns ``(seed index, result)`` pairs."""
    from repro.engine.runner import run_multi_seed

    indices, seeds, factory, n, backend_name, max_rounds = payload
    results = run_multi_seed(
        factory,
        n,
        seeds,
        max_rounds=max_rounds,
        backend=get_backend(backend_name),
    )
    return list(zip(indices, results))


class ShardedSweepRunner:
    """Partition sweep grids across a multiprocessing worker pool.

    Parameters
    ----------
    workers:
        Process count; ``None`` uses :func:`usable_cpus` (affinity-aware).
        ``1`` runs every shard inline in this process (no pool, no
        pickling requirement).
    backend:
        Matrix backend for all shards (name or instance); defaults to the
        process-wide default *at call time*, so ``use_backend(...)``
        blocks work as expected.
    mp_context:
        Start method for worker processes (default ``"spawn"``).

    Every public method is element-wise bit-identical to its sequential
    counterpart for any worker count (see the module docstring for why).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        backend: BackendLike = None,
        mp_context: str = "spawn",
    ) -> None:
        self._workers, self._mp_context = resolve_pool_config(workers, mp_context)
        self._backend = backend

    @property
    def workers(self) -> int:
        """Maximum number of worker processes."""
        return self._workers

    def _backend_name(self) -> str:
        """The backend name shipped to (and re-resolved by) workers."""
        return get_backend(self._backend).name

    def _map_shards(self, worker: Callable, payloads: List[Tuple]) -> List[List]:
        """Run ``worker`` over shard payloads via the shared pool helper."""
        return pool_map(worker, payloads, self._workers, self._mp_context)

    # ------------------------------------------------------------------
    # Sweep grids
    # ------------------------------------------------------------------

    def sweep_adversaries(
        self,
        adversary_factories: Dict[str, Callable[[int], AdversaryProtocol]],
        ns: Sequence[int],
        max_rounds: Optional[int] = None,
    ) -> SweepResult:
        """Sharded :func:`repro.analysis.sweep.sweep_adversaries`.

        The grid is enumerated ``n``-major exactly like the sequential
        sweep; shard outputs are merged back into that order, so the
        returned :class:`SweepResult` compares equal to the sequential
        one for every worker count.
        """
        tasks = [
            SweepTask(index=i, name=name, n=n)
            for i, (n, name) in enumerate(
                (n, name) for n in ns for name in adversary_factories
            )
        ]
        if not tasks:
            return SweepResult()
        backend_name = self._backend_name()
        payloads = [
            (shard, dict(adversary_factories), backend_name, max_rounds)
            for shard in _split_shards(tasks, self._workers)
        ]
        merged: List[Tuple[int, Optional[SweepPoint]]] = []
        for shard_out in self._map_shards(_sweep_shard_worker, payloads):
            merged.extend(shard_out)
        merged.sort(key=lambda pair: pair[0])
        return SweepResult(
            points=[point for _, point in merged if point is not None]
        )

    def sweep_n(
        self,
        factory: Callable[[int], AdversaryProtocol],
        ns: Sequence[int],
        name: str = "adversary",
        max_rounds: Optional[int] = None,
    ) -> SweepResult:
        """Sharded :func:`repro.analysis.sweep.sweep_n`."""
        return self.sweep_adversaries({name: factory}, ns, max_rounds=max_rounds)

    # ------------------------------------------------------------------
    # Multi-seed runs
    # ------------------------------------------------------------------

    def run_multi_seed(
        self,
        factory: Callable[[int], AdversaryProtocol],
        n: int,
        seeds: Sequence[int],
        max_rounds: Optional[int] = None,
    ) -> List[BroadcastResult]:
        """Sharded :func:`repro.engine.runner.run_multi_seed`.

        Returns full :class:`BroadcastResult` objects in seed order,
        element-wise equal (``t*``, broadcasters, final state) to the
        sequential call.
        """
        indexed = list(enumerate(int(s) for s in seeds))
        if not indexed:
            return []
        backend_name = self._backend_name()
        payloads = []
        for shard in _split_shards(indexed, self._workers):
            idxs = [i for i, _ in shard]
            shard_seeds = [s for _, s in shard]
            payloads.append(
                (idxs, shard_seeds, factory, n, backend_name, max_rounds)
            )
        merged: List[Tuple[int, BroadcastResult]] = []
        for shard_out in self._map_shards(_multi_seed_shard_worker, payloads):
            merged.extend(shard_out)
        merged.sort(key=lambda pair: pair[0])
        return [result for _, result in merged]


def default_sweep_factories(
    include_search: bool = True, seed: int = 0
) -> Dict[str, Callable[[int], AdversaryProtocol]]:
    """The standard portfolio as spawn-safe (picklable) factories.

    Mirrors :func:`repro.adversaries.zeiner.portfolio` -- same adversaries
    in the same order -- but as a name -> ``n -> adversary`` map built
    from classes and :func:`functools.partial` so it can cross a
    ``spawn`` process boundary.
    """
    from repro.adversaries.beam import BeamSearchAdversary
    from repro.adversaries.greedy import GreedyDelayAdversary
    from repro.adversaries.oblivious import RandomTreeAdversary
    from repro.adversaries.paths import (
        AlternatingPathAdversary,
        RotatingPathAdversary,
        SortedPathAdversary,
        StaticPathAdversary,
        TwoPhaseFlipAdversary,
    )
    from repro.adversaries.zeiner import (
        CyclicFamilyAdversary,
        RunnerAdversary,
        ZeinerStyleAdversary,
    )

    factories: Dict[str, Callable[[int], AdversaryProtocol]] = {
        "StaticPath": StaticPathAdversary,
        "AlternatingPath": partial(AlternatingPathAdversary, period=1),
        "RotatingPath": partial(RotatingPathAdversary, shift=1),
        "SortedPath[asc]": partial(SortedPathAdversary, ascending=True),
        "SortedPath[desc]": partial(SortedPathAdversary, ascending=False),
        "TwoPhaseFlip": partial(TwoPhaseFlipAdversary, alpha=0.5),
        "ZeinerStyle": ZeinerStyleAdversary,
        "Runner": RunnerAdversary,
        "CyclicFamily": CyclicFamilyAdversary,
        "RandomTree": partial(RandomTreeAdversary, seed=seed),
    }
    if include_search:
        factories["GreedyDelay"] = partial(GreedyDelayAdversary, seed=seed)
        factories["BeamSearch"] = partial(
            BeamSearchAdversary, depth=2, width=6, seed=seed
        )
    return factories


__all__ = [
    "MP_CONTEXTS",
    "ShardedSweepRunner",
    "SweepTask",
    "default_sweep_factories",
    "pool_map",
    "resolve_pool_config",
    "split_shards",
    "usable_cpus",
]
