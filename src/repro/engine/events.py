"""Event records produced by instrumented runs.

Traces are sequences of :class:`RoundRecord`; each captures the tree
played and progress statistics.  :class:`TraceEvent` is the generic tagged
record used for non-round events (run start/end, adversary notes).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class RoundRecord:
    """One round of an instrumented run.

    Attributes
    ----------
    round_index: 1-based round number.
    parents: the played tree's parent array (root points to itself).
    new_edges: product-graph edges added this round (>= 1 while running).
    max_reach / min_reach: extremes of the reach-set sizes after the round.
    broadcaster_count: number of full rows after the round.
    """

    round_index: int
    parents: Tuple[int, ...]
    new_edges: int
    max_reach: int
    min_reach: int
    broadcaster_count: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dictionary."""
        d = asdict(self)
        d["parents"] = list(self.parents)
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RoundRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            round_index=int(d["round_index"]),
            parents=tuple(int(p) for p in d["parents"]),
            new_edges=int(d["new_edges"]),
            max_reach=int(d["max_reach"]),
            min_reach=int(d["min_reach"]),
            broadcaster_count=int(d["broadcaster_count"]),
        )


@dataclass(frozen=True)
class TraceEvent:
    """A generic tagged event (non-round metadata in a trace)."""

    kind: str
    round_index: int
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dictionary."""
        return {
            "kind": self.kind,
            "round_index": self.round_index,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=str(d["kind"]),
            round_index=int(d["round_index"]),
            payload=dict(d.get("payload", {})),
        )
