"""Trace recording, JSON serialization, and replay validation.

A :class:`Trace` is the complete, replayable record of one run: ``n``, the
adversary's name, every round's tree and statistics, and the final
broadcast time.  :func:`replay_trace` re-executes the recorded trees
through the matrix engine and verifies every recorded statistic --
regression protection for both engines and the serialization itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.broadcast import run_sequence
from repro.engine.events import RoundRecord
from repro.errors import TraceError
from repro.trees.rooted_tree import RootedTree

#: Format version written into every serialized trace.
TRACE_FORMAT_VERSION = 1


@dataclass
class Trace:
    """A replayable run record."""

    n: int
    adversary_name: str
    rounds: List[RoundRecord] = field(default_factory=list)
    t_star: Optional[int] = None
    seed: Optional[int] = None

    def trees(self) -> List[RootedTree]:
        """Reconstruct the played trees."""
        return [RootedTree(r.parents) for r in self.rounds]

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to a JSON string."""
        doc = {
            "format_version": TRACE_FORMAT_VERSION,
            "n": self.n,
            "adversary_name": self.adversary_name,
            "t_star": self.t_star,
            "seed": self.seed,
            "rounds": [r.to_dict() for r in self.rounds],
        }
        return json.dumps(doc, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Parse a trace from JSON; validates the format version."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceError(f"trace is not valid JSON: {exc}") from exc
        version = doc.get("format_version")
        if version != TRACE_FORMAT_VERSION:
            raise TraceError(
                f"unsupported trace format version {version!r} "
                f"(expected {TRACE_FORMAT_VERSION})"
            )
        for key in ("n", "adversary_name", "rounds"):
            if key not in doc:
                raise TraceError(f"trace is missing required key {key!r}")
        return cls(
            n=int(doc["n"]),
            adversary_name=str(doc["adversary_name"]),
            rounds=[RoundRecord.from_dict(r) for r in doc["rounds"]],
            t_star=doc.get("t_star"),
            seed=doc.get("seed"),
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace to ``path`` as indented JSON."""
        Path(path).write_text(self.to_json(indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())


class TraceRecorder:
    """Build a :class:`Trace` from an instrumented run.

    Use with :func:`repro.engine.runner.run_engine` or feed it round
    records manually.
    """

    def __init__(self, n: int, adversary_name: str, seed: Optional[int] = None) -> None:
        self._trace = Trace(n=n, adversary_name=adversary_name, seed=seed)

    def record_round(self, record: RoundRecord) -> None:
        """Append one round record (rounds must arrive in order)."""
        expected = len(self._trace.rounds) + 1
        if record.round_index != expected:
            raise TraceError(
                f"round records out of order: got {record.round_index}, "
                f"expected {expected}"
            )
        self._trace.rounds.append(record)

    def finish(self, t_star: Optional[int]) -> Trace:
        """Seal the trace with the final broadcast time."""
        self._trace.t_star = t_star
        return self._trace


def replay_trace(trace: Trace) -> bool:
    """Re-execute a trace and verify every recorded statistic.

    Returns True on success; raises :class:`TraceError` on the first
    mismatch (with a message naming the round and the field).
    """
    trees = trace.trees()
    result = run_sequence(
        trees, n=trace.n, keep_history=True, stop_at_broadcast=False
    )
    if result.t_star != trace.t_star:
        raise TraceError(
            f"replay t*={result.t_star} does not match recorded {trace.t_star}"
        )
    if len(result.history) != len(trace.rounds):
        raise TraceError(
            f"replay produced {len(result.history)} rounds, "
            f"trace has {len(trace.rounds)}"
        )
    for snap, rec in zip(result.history, trace.rounds):
        for name, got, want in (
            ("new_edges", snap.new_edges, rec.new_edges),
            ("max_reach", snap.max_reach, rec.max_reach),
            ("min_reach", snap.min_reach, rec.min_reach),
            ("broadcaster_count", snap.broadcaster_count, rec.broadcaster_count),
        ):
            if got != want:
                raise TraceError(
                    f"round {rec.round_index}: {name} mismatch "
                    f"(replay {got}, recorded {want})"
                )
    return True
