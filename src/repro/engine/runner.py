"""Run drivers tying adversaries, engines, traces, and metrics together.

:func:`run_engine` is the instrumented counterpart of
:func:`repro.core.broadcast.run_adversary`: it drives an adversary, records
a full :class:`~repro.engine.trace.Trace`, and collects
:class:`~repro.engine.metrics.RunMetrics`.

:func:`compare_engines` executes one tree sequence through both the matrix
engine and the process-level heard-of simulator and checks they agree --
the executable form of "the two implementations define the same model".

:func:`run_adversaries_batch` / :func:`run_multi_seed` drive MANY runs in
lockstep through one :class:`~repro.engine.batch.BatchRunner`: each run's
adversary picks its tree against a zero-copy view of its own slice, then
all compositions and completion checks execute as one vectorized step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.backend import BackendLike
from repro.core.broadcast import BroadcastResult, run_sequence
from repro.core.state import BroadcastState
from repro.engine.executor import BatchExecutor, RunSpec, SequentialExecutor
from repro.engine.metrics import RunMetrics
from repro.engine.simulator import HeardOfSimulator
from repro.engine.trace import Trace
from repro.errors import SimulationError
from repro.trees.rooted_tree import RootedTree
from repro.types import AdversaryProtocol, validate_node_count


@dataclass
class EngineRun:
    """Everything an instrumented run produces."""

    t_star: Optional[int]
    trace: Trace
    metrics: RunMetrics
    final_state: BroadcastState


def run_engine(
    adversary: AdversaryProtocol,
    n: int,
    max_rounds: Optional[int] = None,
    seed: Optional[int] = None,
    backend: BackendLike = None,
) -> EngineRun:
    """Drive ``adversary`` with full instrumentation.

    Unlike the bare :func:`~repro.core.broadcast.run_adversary`, this
    records a replayable trace and per-round metrics -- it is the
    ``instrumentation="trace"`` facade over
    :class:`~repro.engine.executor.SequentialExecutor`.  The round-cap
    policy is the shared one (:func:`repro.core.bounds.resolve_round_cap`):
    trivial ``n²`` default that raises when exceeded, explicit
    ``max_rounds`` that truncates quietly.
    """
    report = SequentialExecutor().run(
        RunSpec(
            adversary=adversary,
            n=n,
            seed=seed,
            max_rounds=max_rounds,
            backend=backend,
            instrumentation="trace",
        )
    )
    return EngineRun(
        t_star=report.t_star,
        trace=report.trace,
        metrics=report.metrics,
        final_state=report.final_state,
    )


def run_adversaries_batch(
    adversaries: Sequence[AdversaryProtocol],
    n: int,
    max_rounds: Optional[int] = None,
    backend: BackendLike = None,
) -> List[BroadcastResult]:
    """Drive several adversaries over the same ``n``, batched per round.

    A facade over :class:`~repro.engine.executor.BatchExecutor`:
    element-wise equivalent to
    ``[run_adversary(adv, n) for adv in adversaries]`` -- each adversary
    observes exactly the state its own moves produced (via a zero-copy
    slice of the stacked tensor) and is never queried once its run has a
    broadcaster; only the per-round composition and completion checks are
    shared, as one vectorized step over all still-active runs.  Oblivious
    adversaries ride the compiled parent-schedule fast path.

    The cap semantics are the shared policy: exceeding the trivial ``n²``
    bound raises :class:`AdversaryError` unless an explicit smaller
    ``max_rounds`` was given, in which case unfinished runs report
    ``t_star=None``.
    """
    validate_node_count(n)
    if not adversaries:
        return []
    specs = [
        RunSpec(adversary=adv, n=n, max_rounds=max_rounds, backend=backend)
        for adv in adversaries
    ]
    return [report.to_broadcast_result() for report in BatchExecutor().run_many(specs)]


def run_multi_seed(
    factory: Callable[[int], AdversaryProtocol],
    n: int,
    seeds: Sequence[int],
    max_rounds: Optional[int] = None,
    backend: BackendLike = None,
) -> List[BroadcastResult]:
    """Batched multi-seed sweep: one adversary instance per seed.

    ``factory(seed)`` builds each run's adversary; all runs advance in
    lockstep through a single :class:`~repro.engine.batch.BatchRunner`.
    """
    return run_adversaries_batch(
        [factory(int(seed)) for seed in seeds],
        n,
        max_rounds=max_rounds,
        backend=backend,
    )


def compare_engines(
    trees: Sequence[RootedTree], n: Optional[int] = None
) -> Tuple[Optional[int], Optional[int]]:
    """Run a sequence through both engines; raise on any disagreement.

    Returns the (identical) broadcast times as a pair.  Checks, after the
    full sequence:

    * identical broadcast times,
    * the matrix engine's rows equal the simulator's reach sets,
    * the matrix engine's columns equal the simulator's heard-of sets.
    """
    if n is None:
        if not trees:
            raise SimulationError("cannot infer n from an empty sequence")
        n = trees[0].n
    matrix_result = run_sequence(trees, n=n, stop_at_broadcast=False)
    sim = HeardOfSimulator(n)
    sim_t = sim.run(trees, stop_at_broadcast=False)
    if matrix_result.t_star != sim_t:
        raise SimulationError(
            f"engines disagree on t*: matrix={matrix_result.t_star}, "
            f"simulator={sim_t}"
        )
    final = matrix_result.final_state
    for x in range(n):
        if final.reach_set(x) != sim.reach_of(x):
            raise SimulationError(
                f"engines disagree on reach set of node {x}: "
                f"matrix={sorted(final.reach_set(x))}, "
                f"simulator={sorted(sim.reach_of(x))}"
            )
        if final.heard_of_set(x) != sim.heard_of(x):
            raise SimulationError(
                f"engines disagree on heard-of set of node {x}: "
                f"matrix={sorted(final.heard_of_set(x))}, "
                f"simulator={sorted(sim.heard_of(x))}"
            )
    return matrix_result.t_star, sim_t
