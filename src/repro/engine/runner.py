"""Run drivers tying adversaries, engines, traces, and metrics together.

:func:`run_engine` is the instrumented counterpart of
:func:`repro.core.broadcast.run_adversary`: it drives an adversary, records
a full :class:`~repro.engine.trace.Trace`, and collects
:class:`~repro.engine.metrics.RunMetrics`.

:func:`compare_engines` executes one tree sequence through both the matrix
engine and the process-level heard-of simulator and checks they agree --
the executable form of "the two implementations define the same model".

:func:`run_adversaries_batch` / :func:`run_multi_seed` drive MANY runs in
lockstep through one :class:`~repro.engine.batch.BatchRunner`: each run's
adversary picks its tree against a zero-copy view of its own slice, then
all compositions and completion checks execute as one vectorized step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.backend import BackendLike
from repro.core.bounds import trivial_upper_bound
from repro.core.broadcast import BroadcastResult, run_sequence
from repro.core.state import BroadcastState
from repro.engine.batch import BatchRunner
from repro.engine.events import RoundRecord
from repro.engine.metrics import MetricsCollector, RunMetrics
from repro.engine.simulator import HeardOfSimulator
from repro.engine.trace import Trace, TraceRecorder
from repro.errors import AdversaryError, SimulationError
from repro.trees.rooted_tree import RootedTree
from repro.types import AdversaryProtocol, validate_node_count


@dataclass
class EngineRun:
    """Everything an instrumented run produces."""

    t_star: Optional[int]
    trace: Trace
    metrics: RunMetrics
    final_state: BroadcastState


def run_engine(
    adversary: AdversaryProtocol,
    n: int,
    max_rounds: Optional[int] = None,
    seed: Optional[int] = None,
) -> EngineRun:
    """Drive ``adversary`` with full instrumentation.

    Unlike the bare :func:`~repro.core.broadcast.run_adversary`, this
    records a replayable trace and per-round metrics.  The default round
    cap is the trivial ``n²`` bound; exceeding it raises
    :class:`AdversaryError` (a legal adversary cannot survive that long).
    """
    validate_node_count(n)
    cap = max_rounds if max_rounds is not None else trivial_upper_bound(n)
    adversary.reset()
    name = getattr(adversary, "name", type(adversary).__name__)
    recorder = TraceRecorder(n, name, seed=seed)
    collector = MetricsCollector(n)
    state = BroadcastState.initial(n)
    t = 0
    while not state.is_broadcast_complete():
        if t >= cap:
            if max_rounds is not None:
                break
            raise AdversaryError(
                f"adversary {name!r} exceeded the trivial n² cap ({cap})"
            )
        t += 1
        tree = adversary.next_tree(state, t)
        before_edges = state.edge_count()
        state.apply_tree_inplace(tree)
        sizes = state.reach_sizes()
        record = RoundRecord(
            round_index=t,
            parents=tree.parents,
            new_edges=state.edge_count() - before_edges,
            max_reach=int(sizes.max()),
            min_reach=int(sizes.min()),
            broadcaster_count=len(state.broadcasters()),
        )
        recorder.record_round(record)
        collector.observe_round(record, tree)
    t_star = t if state.is_broadcast_complete() else None
    return EngineRun(
        t_star=t_star,
        trace=recorder.finish(t_star),
        metrics=collector.finish(t_star),
        final_state=state,
    )


def run_adversaries_batch(
    adversaries: Sequence[AdversaryProtocol],
    n: int,
    max_rounds: Optional[int] = None,
    backend: BackendLike = None,
) -> List[BroadcastResult]:
    """Drive several adversaries over the same ``n``, batched per round.

    Element-wise equivalent to
    ``[run_adversary(adv, n) for adv in adversaries]``: each adversary
    observes exactly the state its own moves produced (via a zero-copy
    slice of the stacked tensor) and is never queried once its run has a
    broadcaster.  Only the per-round composition and completion checks
    are shared, as one vectorized step over all still-active runs.

    The cap semantics mirror :func:`repro.core.broadcast.run_adversary`:
    exceeding the trivial ``n²`` bound raises :class:`AdversaryError`
    unless an explicit smaller ``max_rounds`` was given, in which case
    unfinished runs report ``t_star=None``.
    """
    validate_node_count(n)
    if not adversaries:
        return []
    cap = max_rounds if max_rounds is not None else trivial_upper_bound(n)
    explicit_cap = max_rounds is not None
    for adv in adversaries:
        adv.reset()
    runner = BatchRunner(n, len(adversaries), backend=backend)
    while not runner.all_complete:
        if runner.round_index >= cap:
            if explicit_cap:
                break
            stuck = [
                getattr(adv, "name", type(adv).__name__)
                for b, adv in enumerate(adversaries)
                if runner.t_star(b) is None
            ]
            raise AdversaryError(
                f"adversaries {stuck!r} exceeded the trivial n² cap ({cap})"
            )
        t = runner.round_index + 1
        trees = []
        for b, adv in enumerate(adversaries):
            if runner.t_star(b) is not None:
                trees.append(None)
                continue
            tree = adv.next_tree(runner.state_view(b), t)
            if not isinstance(tree, RootedTree):
                raise AdversaryError(
                    f"adversary returned {type(tree).__name__}, expected RootedTree"
                )
            if tree.n != n:
                raise AdversaryError(
                    f"adversary returned a tree over {tree.n} nodes in a game over {n}"
                )
            trees.append(tree)
        runner.step(trees)
    results = []
    for b in range(len(adversaries)):
        t = runner.t_star(b)
        results.append(
            BroadcastResult(
                t_star=t,
                n=n,
                broadcasters=runner.broadcasters(b) if t is not None else (),
                final_state=runner.state(b, round_index=t),
            )
        )
    return results


def run_multi_seed(
    factory: Callable[[int], AdversaryProtocol],
    n: int,
    seeds: Sequence[int],
    max_rounds: Optional[int] = None,
    backend: BackendLike = None,
) -> List[BroadcastResult]:
    """Batched multi-seed sweep: one adversary instance per seed.

    ``factory(seed)`` builds each run's adversary; all runs advance in
    lockstep through a single :class:`~repro.engine.batch.BatchRunner`.
    """
    return run_adversaries_batch(
        [factory(int(seed)) for seed in seeds],
        n,
        max_rounds=max_rounds,
        backend=backend,
    )


def compare_engines(
    trees: Sequence[RootedTree], n: Optional[int] = None
) -> Tuple[Optional[int], Optional[int]]:
    """Run a sequence through both engines; raise on any disagreement.

    Returns the (identical) broadcast times as a pair.  Checks, after the
    full sequence:

    * identical broadcast times,
    * the matrix engine's rows equal the simulator's reach sets,
    * the matrix engine's columns equal the simulator's heard-of sets.
    """
    if n is None:
        if not trees:
            raise SimulationError("cannot infer n from an empty sequence")
        n = trees[0].n
    matrix_result = run_sequence(trees, n=n, stop_at_broadcast=False)
    sim = HeardOfSimulator(n)
    sim_t = sim.run(trees, stop_at_broadcast=False)
    if matrix_result.t_star != sim_t:
        raise SimulationError(
            f"engines disagree on t*: matrix={matrix_result.t_star}, "
            f"simulator={sim_t}"
        )
    final = matrix_result.final_state
    for x in range(n):
        if final.reach_set(x) != sim.reach_of(x):
            raise SimulationError(
                f"engines disagree on reach set of node {x}: "
                f"matrix={sorted(final.reach_set(x))}, "
                f"simulator={sorted(sim.reach_of(x))}"
            )
        if final.heard_of_set(x) != sim.heard_of(x):
            raise SimulationError(
                f"engines disagree on heard-of set of node {x}: "
                f"matrix={sorted(final.heard_of_set(x))}, "
                f"simulator={sorted(sim.heard_of(x))}"
            )
    return matrix_result.t_star, sim_t
