"""Deterministic randomness plumbing.

All stochastic components of the library accept ``numpy.random.Generator``
instances; these helpers derive independent, reproducible generators for
sweeps (one seed per configuration) without global state.
"""

from __future__ import annotations

from typing import List

import numpy as np


def derive_rng(seed: int, *labels: int) -> np.random.Generator:
    """A generator deterministically derived from ``seed`` and labels.

    Uses numpy's ``SeedSequence`` spawning so ``derive_rng(s, i)`` and
    ``derive_rng(s, j)`` are statistically independent for ``i != j``.
    """
    ss = np.random.SeedSequence([seed, *labels])
    return np.random.default_rng(ss)


def spawn_seeds(seed: int, count: int) -> List[int]:
    """``count`` reproducible child seeds of ``seed`` (for sweep grids)."""
    ss = np.random.SeedSequence(seed)
    return [int(child.generate_state(1)[0]) for child in ss.spawn(count)]
