"""Heard-of-style process-level simulator.

Processes are explicit objects exchanging id-sets along tree edges.  This
engine is intentionally implemented *without* the adjacency-matrix
shortcut: rounds deliver messages parent -> child, each process unions
what it receives.  Its per-process "heard of" sets must equal the
*columns* of the matrix engine's product graph (and the "reached" sets,
tracked on the sender side, the rows); the equivalence is property-tested.

The simulator is slower than the matrix engine (that is fine -- it exists
for validation and for process-level instrumentation, e.g. message
counts), but still comfortably handles thousands of processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import DimensionMismatchError, SimulationError
from repro.trees.rooted_tree import RootedTree
from repro.types import validate_node_count


@dataclass
class Process:
    """One process in the heard-of simulation.

    Attributes
    ----------
    pid: the process id (``0 .. n-1``).
    heard: ids this process has heard of (always contains ``pid``).
    messages_received: total messages delivered to this process.
    """

    pid: int
    heard: Set[int] = field(default_factory=set)
    messages_received: int = 0

    def __post_init__(self) -> None:
        self.heard.add(self.pid)

    def deliver(self, payload: Set[int]) -> None:
        """Receive a heard-of set from an in-neighbor."""
        self.heard |= payload
        self.messages_received += 1


class HeardOfSimulator:
    """Synchronous round simulator over explicit processes.

    Each round (:meth:`step`): every process composes its current heard-of
    set as a message; messages travel along the round tree's parent->child
    edges and are delivered simultaneously (the snapshot semantics of
    synchronous rounds -- a process forwards what it knew at the *start*
    of the round).  Self-loops are implicit: processes keep their state.

    Broadcast completes when some process id is in everyone's heard-of set
    (that process has reached all -- the transpose view of the matrix
    engine's full row).
    """

    def __init__(self, n: int) -> None:
        self._n = validate_node_count(n)
        self._processes: List[Process] = [Process(pid) for pid in range(n)]
        self._round = 0
        self._messages_total = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of processes."""
        return self._n

    @property
    def round_index(self) -> int:
        """Rounds executed so far."""
        return self._round

    @property
    def messages_total(self) -> int:
        """Messages delivered across all rounds (excluding self-loops)."""
        return self._messages_total

    def process(self, pid: int) -> Process:
        """The process object with id ``pid``."""
        return self._processes[pid]

    def heard_of(self, pid: int) -> FrozenSet[int]:
        """Who ``pid`` has heard of."""
        return frozenset(self._processes[pid].heard)

    def reach_of(self, pid: int) -> FrozenSet[int]:
        """Everyone that has heard of ``pid`` (the row view)."""
        return frozenset(
            q.pid for q in self._processes if pid in q.heard
        )

    def broadcasters(self) -> Tuple[int, ...]:
        """Ids that everyone has heard of."""
        common = set(range(self._n))
        for p in self._processes:
            common &= p.heard
            if not common:
                break
        return tuple(sorted(common))

    def is_broadcast_complete(self) -> bool:
        """True iff some id reached everyone (Definition 2.2)."""
        return bool(self.broadcasters())

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def step(self, tree: RootedTree) -> None:
        """Execute one synchronous round along ``tree``."""
        if tree.n != self._n:
            raise DimensionMismatchError(
                f"tree over {tree.n} nodes in a simulation over {self._n}"
            )
        # Snapshot: messages carry the start-of-round heard-of sets.
        snapshots: Dict[int, Set[int]] = {
            p.pid: set(p.heard) for p in self._processes
        }
        for parent, child in tree.edges():
            self._processes[child].deliver(snapshots[parent])
            self._messages_total += 1
        self._round += 1

    def run(
        self,
        trees: Sequence[RootedTree],
        stop_at_broadcast: bool = True,
    ) -> Optional[int]:
        """Run a sequence of rounds; return ``t*`` if broadcast completed."""
        t_star: Optional[int] = None
        for tree in trees:
            self.step(tree)
            if t_star is None and self.is_broadcast_complete():
                t_star = self._round
                if stop_at_broadcast:
                    break
        return t_star

    def heard_matrix(self) -> List[List[bool]]:
        """``m[x][y]`` = x has heard of y (transpose of the reach matrix)."""
        return [
            [y in self._processes[x].heard for y in range(self._n)]
            for x in range(self._n)
        ]

    def state_summary(self) -> str:
        """One-line progress summary."""
        sizes = sorted(len(p.heard) for p in self._processes)
        return (
            f"round={self._round} heard sizes min={sizes[0]} "
            f"median={sizes[len(sizes) // 2]} max={sizes[-1]} "
            f"messages={self._messages_total}"
        )

    def reset(self) -> None:
        """Return to the initial state (everyone knows only itself)."""
        self._processes = [Process(pid) for pid in range(self._n)]
        self._round = 0
        self._messages_total = 0
