"""Batched broadcast engine: advance B independent runs in one step.

Two workloads dominate this repo's compute, and both are embarrassingly
batchable:

* **multi-run sweeps** -- many seeds / many tree sequences over the same
  ``n`` (benchmarks, falsification sweeps).  :class:`BatchRunner` stacks
  the runs' matrices along a leading axis (``(B, n, n)`` dense,
  ``(B, n, words)`` bitset) and performs one vectorized
  compose + completion check per round for all runs at once.
* **candidate scoring** -- greedy/beam adversaries evaluate every tree in
  a pool against the *same* state each round.  :func:`score_candidates`
  composes all ``C`` candidates in a single batched kernel and returns
  the same lexicographic score tuples as
  :func:`repro.adversaries.greedy.score_tree`, in candidate order.

Both route through the backend batch kernels
(:meth:`~repro.core.backend.MatrixBackend.batch_compose_inplace` and
friends), so they speed up further under ``REPRO_BACKEND=bitset``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernels as _kernels
from repro.core.backend import BackendLike, get_backend
from repro.core.state import BroadcastState
from repro.errors import DimensionMismatchError, SimulationError
from repro.trees.rooted_tree import RootedTree
from repro.types import validate_node_count

#: Greedy score tuple, identical to :data:`repro.adversaries.greedy.Score`.
ScoreTuple = Tuple[int, int, int, int, int]

#: Quadratic-potential score tuple, identical to
#: :func:`repro.adversaries.zeiner.quadratic_potential_score`.
QuadraticScore = Tuple[int, int, int]


class BatchRunner:
    """``B`` independent broadcast runs advanced by vectorized steps.

    Every run starts at the identity ``G(0)``.  :meth:`step` applies one
    round graph per run in a single batched composition; completion
    rounds are tracked per run (``t*`` semantics match
    :func:`repro.core.broadcast.run_sequence`: the first round index at
    which the run has a broadcaster, 0 if ``n == 1`` and the run is
    complete before any round).

    Runs that are already complete may keep receiving trees (composition
    is monotone, the recorded ``t*`` never changes) or be padded with
    ``None`` -- a self-loops-only no-op round.
    """

    def __init__(self, n: int, batch_size: int, backend: BackendLike = None) -> None:
        validate_node_count(n)
        if batch_size < 1:
            raise SimulationError(f"batch_size must be >= 1, got {batch_size}")
        self._n = n
        self._batch = batch_size
        self._backend = get_backend(backend)
        self._bmat = self._backend.identity_batch(batch_size, n)
        self._round = 0
        self._completed_at = np.full(batch_size, -1, dtype=np.int64)
        self._noop = np.arange(n, dtype=np.int64)
        self._mark_completions()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of processes per run."""
        return self._n

    @property
    def batch_size(self) -> int:
        """Number of stacked runs."""
        return self._batch

    @property
    def round_index(self) -> int:
        """Rounds applied so far (every run advances in lockstep)."""
        return self._round

    @property
    def backend(self):
        """The matrix backend the stacked tensor lives in."""
        return self._backend

    def completed(self) -> np.ndarray:
        """Boolean ``(B,)`` mask of runs that have a broadcaster."""
        return self._completed_at >= 0

    @property
    def all_complete(self) -> bool:
        """True iff every run has completed broadcast."""
        return bool((self._completed_at >= 0).all())

    def t_star(self, b: int) -> Optional[int]:
        """Broadcast time of run ``b`` (``None`` if not complete yet)."""
        v = int(self._completed_at[b])
        return v if v >= 0 else None

    def t_stars(self) -> List[Optional[int]]:
        """Broadcast time of every run, in run order."""
        return [self.t_star(b) for b in range(self._batch)]

    def reach_sizes(self) -> np.ndarray:
        """``(B, n)`` reach-set sizes for every run."""
        return self._backend.batch_reach_sizes(self._bmat)

    def broadcasters(self, b: int) -> Tuple[int, ...]:
        """Full-row nodes of run ``b``."""
        return self._backend.broadcasters(self._backend.slice_run(self._bmat, b))

    def state(self, b: int, round_index: Optional[int] = None) -> BroadcastState:
        """Independent :class:`BroadcastState` copy of run ``b``.

        ``round_index`` overrides the recorded round counter -- used when a
        run finished earlier than the batch (its matrix is frozen by no-op
        padding, but the lockstep counter kept advancing).
        """
        mat = self._backend.copy(self._backend.slice_run(self._bmat, b))
        rounds = self._round if round_index is None else round_index
        return BroadcastState._wrap(mat, self._n, rounds, self._backend)

    def state_view(self, b: int) -> BroadcastState:
        """Zero-copy state over run ``b``'s live storage.

        Valid until the next :meth:`step`; adversaries may read it to pick
        their next move but must not hold or mutate it.
        """
        return BroadcastState._wrap(
            self._backend.slice_run(self._bmat, b),
            self._n,
            self._round,
            self._backend,
        )

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def _mark_completions(self) -> None:
        newly = (self._completed_at < 0) & self._backend.batch_has_broadcaster(
            self._bmat
        )
        self._completed_at[newly] = self._round

    def _parents_matrix(
        self, trees: Sequence[Optional[RootedTree]]
    ) -> np.ndarray:
        parents = np.empty((self._batch, self._n), dtype=np.int64)
        for b, tree in enumerate(trees):
            if tree is None:
                parents[b] = self._noop
                continue
            if tree.n != self._n:
                raise DimensionMismatchError(
                    f"tree over {tree.n} nodes in a batch over {self._n}"
                )
            parents[b] = tree.parent_array_numpy()
        return parents

    def step(self, trees: Sequence[Optional[RootedTree]]) -> "BatchRunner":
        """Advance every run by one round in a single vectorized kernel.

        ``trees[b]`` is run ``b``'s round graph; ``None`` plays the
        self-loops-only no-op (used to pad ragged batches).
        """
        if len(trees) != self._batch:
            raise DimensionMismatchError(
                f"step needs {self._batch} trees, got {len(trees)}"
            )
        self.step_parents(self._parents_matrix(trees))
        return self

    def step_parents(self, parents: np.ndarray) -> "BatchRunner":
        """Advance with a prebuilt ``(B, n)`` int64 parent matrix."""
        parents = np.asarray(parents, dtype=np.int64)
        if parents.shape != (self._batch, self._n):
            raise DimensionMismatchError(
                f"parent matrix must be {(self._batch, self._n)}, got {parents.shape}"
            )
        # Observability seam: one "batch-compose" row/span covers the
        # whole batch's round (observer is None unless tracing/profiling).
        observer = _kernels._compose_observer
        if observer is None:
            self._backend.batch_compose_inplace(self._bmat, parents)
        else:
            observer(
                getattr(self._backend, "kernel_namespace", self._backend.name),
                "batch-compose",
                self._n,
                lambda: self._backend.batch_compose_inplace(self._bmat, parents),
            )
        self._round += 1
        self._mark_completions()
        return self


def run_sequences_batch(
    sequences: Sequence[Sequence[RootedTree]],
    n: Optional[int] = None,
    backend: BackendLike = None,
) -> List[Optional[int]]:
    """``t*`` of many explicit tree sequences, computed batched.

    Element-wise equivalent to
    ``[broadcast_time_sequence(seq, n) for seq in sequences]`` but the
    per-round composition runs once over the whole stack.  Ragged
    sequences are padded with no-op rounds (which cannot change ``t*``).
    """
    if not sequences:
        return []
    if n is None:
        for seq in sequences:
            if seq:
                n = seq[0].n
                break
        else:
            raise SimulationError("cannot infer n from empty sequences")
    runner = BatchRunner(n, len(sequences), backend=backend)
    rounds = max(len(seq) for seq in sequences)
    for i in range(rounds):
        if runner.all_complete:
            break
        runner.step([seq[i] if i < len(seq) else None for seq in sequences])
    # No-op padding never creates a broadcaster, so a recorded t* >= 1 is
    # always within the run's own sequence.  t* == 0 only happens for
    # n == 1 (identity already complete); run_sequence reports that as
    # round 1 when at least one tree is applied, None otherwise.
    out: List[Optional[int]] = []
    for b, seq in enumerate(sequences):
        t = runner.t_star(b)
        if t == 0:
            t = 1 if len(seq) >= 1 else None
        out.append(t)
    return out


def score_candidates(
    state: BroadcastState, candidates: Sequence[RootedTree]
) -> List[ScoreTuple]:
    """Greedy scores of all candidate trees in one batched composition.

    Returns, in candidate order, exactly the tuples
    :func:`repro.adversaries.greedy.score_tree` would produce:
    ``(new broadcasters, max reach, near-finishers, new edges, gainers)``,
    lexicographically lower = better for the adversary.
    """
    if not candidates:
        return []
    n = state.n
    backend = state.backend
    parents = np.stack([t.parent_array_numpy() for t in candidates])
    if parents.shape[1] != n:
        raise DimensionMismatchError(
            f"candidate trees over {parents.shape[1]} nodes scored on n={n}"
        )
    successors = backend.batch_compose_from(state.backend_matrix(), parents)
    new_rows = backend.batch_reach_sizes(successors)  # (C, n)
    old_rows = state.reach_sizes()  # (n,)
    old_full = int((old_rows == n).sum())
    old_total = int(old_rows.sum())
    finished = (new_rows == n).sum(axis=1) - old_full
    max_reach = new_rows.max(axis=1)
    near = (new_rows == n - 1).sum(axis=1)
    new_edges = new_rows.sum(axis=1) - old_total
    gainers = (new_rows > old_rows[None, :]).sum(axis=1)
    return [
        (
            int(finished[c]),
            int(max_reach[c]),
            int(near[c]),
            int(new_edges[c]),
            int(gainers[c]),
        )
        for c in range(len(candidates))
    ]


def score_parents_quadratic(
    state: BroadcastState,
    parents: np.ndarray,
    chunk: Optional[int] = None,
) -> List[QuadraticScore]:
    """Quadratic-potential scores of ``(C, n)`` candidate parent arrays.

    Returns, in candidate order, exactly the tuples
    :func:`repro.adversaries.zeiner.quadratic_potential_score` would
    produce -- ``(broadcasters after, sum of squared reach sizes, max
    reach)`` -- but composes whole blocks of candidates against the state
    in one batched kernel instead of one dense pass per candidate.
    Blocks are sized so a block's successor stack stays around 32 MiB of
    dense-equivalent storage (the cyclic family at n = 256 has ~33k
    candidates; materializing all of them at once would not fit).
    """
    parents = np.asarray(parents, dtype=np.int64)
    if parents.size == 0:
        return []
    n = state.n
    if parents.ndim != 2 or parents.shape[1] != n:
        raise DimensionMismatchError(
            f"candidate parent matrix must be (C, {n}), got {parents.shape}"
        )
    backend = state.backend
    mat = state.backend_matrix()
    if chunk is None:
        # ~4 MiB of dense-equivalent successors per block: large enough to
        # amortize kernel dispatch, small enough to stay cache-friendly
        # (measured 1.4x faster than 32 MiB blocks at n = 256).
        chunk = max(1, (1 << 22) // max(1, n * n))
    scores: List[QuadraticScore] = []
    for start in range(0, parents.shape[0], chunk):
        successors = backend.batch_compose_from(mat, parents[start : start + chunk])
        rows = backend.batch_reach_sizes(successors)  # (c, n) int64
        scores.extend(
            zip(
                (rows == n).sum(axis=1).tolist(),
                (rows * rows).sum(axis=1).tolist(),
                rows.max(axis=1).tolist(),
            )
        )
    return scores


__all__ = [
    "BatchRunner",
    "QuadraticScore",
    "ScoreTuple",
    "run_sequences_batch",
    "score_candidates",
    "score_parents_quadratic",
]
