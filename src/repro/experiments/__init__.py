"""Programmatic experiment registry.

Each experiment of DESIGN.md's per-experiment index (E1..E8) is runnable
three ways: via the benchmark harness (``pytest benchmarks/ -m table``),
via the CLI (``repro-broadcast experiment E2``), and programmatically
through this package:

>>> from repro.experiments import get_experiment, list_experiments
>>> table = get_experiment("E2").run()        # doctest: +SKIP
>>> print(table.render())                     # doctest: +SKIP

The registry's run functions use CLI-friendly (smaller) parameter grids
than the benchmark harnesses; the benchmarks remain the authoritative
regeneration path recorded in EXPERIMENTS.md.
"""

from repro.experiments.registry import (
    ExperimentSpec,
    ExperimentTable,
    experiment_graph,
    get_experiment,
    known_experiment_ids,
    list_experiments,
    run_all,
    run_experiment,
    table_from_doc,
    table_to_doc,
)

__all__ = [
    "ExperimentSpec",
    "ExperimentTable",
    "experiment_graph",
    "get_experiment",
    "known_experiment_ids",
    "list_experiments",
    "run_all",
    "run_experiment",
    "table_from_doc",
    "table_to_doc",
]
