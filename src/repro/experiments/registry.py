"""Experiment definitions and the registry mapping E-ids to run functions.

Every run function returns an :class:`ExperimentTable` -- headers, rows,
and the assertions-passed flag -- so callers (CLI, notebooks, tests) get
structured data rather than printed text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.tables import format_table


@dataclass
class ExperimentTable:
    """Structured result of one experiment run."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[Sequence]
    notes: List[str] = field(default_factory=list)
    checks_passed: bool = True

    def render(self) -> str:
        """The table plus notes, formatted for a terminal."""
        parts = [
            format_table(
                self.headers, self.rows, title=f"{self.experiment_id}: {self.title}"
            )
        ]
        parts.extend(self.notes)
        parts.append(
            "checks: PASSED" if self.checks_passed else "checks: FAILED"
        )
        return "\n".join(parts)


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry: id, description, paper artifact, run function."""

    experiment_id: str
    title: str
    paper_artifact: str
    run: Callable[[], ExperimentTable]


def _e1_figure1() -> ExperimentTable:
    from repro.core import bounds as B

    ns = [8, 16, 32, 64, 128]
    rows = []
    ok = True
    for n in ns:
        new = B.upper_bound(n)
        nlogn = B.nlogn_upper_bound(n)
        loglog = B.fugger_nowak_winkler_upper_bound(n)
        rows.append(
            (n, B.trivial_upper_bound(n), nlogn, loglog, new, B.lower_bound(n))
        )
        ok = ok and new < nlogn and new < loglog
    return ExperimentTable(
        "E1",
        "Figure 1 bounds overview",
        ["n", "trivial n^2", "n log n", "2n loglog n + 2n", "(1+sqrt2)n", "LB"],
        rows,
        notes=[
            f"crossover vs n log n at n = {B.crossover_nlogn_vs_linear()}"
        ],
        checks_passed=ok,
    )


def _e2_sandwich() -> ExperimentTable:
    from repro.adversaries.zeiner import CyclicFamilyAdversary
    from repro.core.bounds import lower_bound, upper_bound
    from repro.core.broadcast import run_adversary

    ns = [4, 6, 8, 10, 12]
    rows = []
    ok = True
    for n in ns:
        t = run_adversary(CyclicFamilyAdversary(n), n).t_star
        rows.append((n, lower_bound(n), t, upper_bound(n), f"{t / n:.3f}"))
        ok = ok and lower_bound(n) <= t <= upper_bound(n)
    return ExperimentTable(
        "E2",
        "Theorem 3.1 sandwich (cyclic chain-fan witness)",
        ["n", "LB formula", "measured t*", "UB formula", "t*/n"],
        rows,
        checks_passed=ok,
    )


def _e3_exact() -> ExperimentTable:
    from repro.adversaries.exact import ExactGameSolver
    from repro.core.bounds import lower_bound, upper_bound

    rows = []
    ok = True
    for n in (2, 3, 4, 5):
        result = ExactGameSolver(n).solve()
        rows.append(
            (n, lower_bound(n), result.t_star, upper_bound(n), result.states_explored)
        )
        ok = ok and result.t_star == lower_bound(n)
    return ExperimentTable(
        "E3",
        "exact game values (LB formula tight for n <= 5 in-run; 6 recorded)",
        ["n", "LB formula", "exact t*", "UB formula", "states"],
        rows,
        notes=["n=6: exact t*=7 (recorded; ~27 min, 112620 states)"],
        checks_passed=ok,
    )


def _e4_baselines() -> ExperimentTable:
    from repro.core.broadcast import run_sequence
    from repro.trees.generators import path, star

    ns = [8, 16, 32, 64]
    rows = []
    ok = True
    for n in ns:
        pt = run_sequence([path(n)] * (n - 1), n).t_star
        st = run_sequence([star(n)], n).t_star
        rows.append((n, pt, n - 1, st))
        ok = ok and pt == n - 1 and st == 1
    return ExperimentTable(
        "E4",
        "Section 2 baselines (static path n-1; star 1)",
        ["n", "static path t*", "paper n-1", "static star t*"],
        rows,
        checks_passed=ok,
    )


def _e5_restricted() -> ExperimentTable:
    from repro.adversaries.restricted import KInnerAdversary, KLeafAdversary
    from repro.analysis.stats import linear_fit
    from repro.core.broadcast import run_adversary

    ns = [6, 9, 12, 15, 18]
    rows = []
    ok = True
    for k in (2, 3):
        for name, factory in (("leaves", KLeafAdversary), ("inner", KInnerAdversary)):
            ts = [run_adversary(factory(n, k), n).t_star for n in ns]
            fit = linear_fit(ns, ts)
            rows.append((f"k={k} {name}", *ts, f"{fit.slope:.2f}", f"{fit.r_squared:.3f}"))
            ok = ok and fit.r_squared > 0.9
    return ExperimentTable(
        "E5",
        "restricted adversaries stay linear (O(kn))",
        ["family", *[f"n={n}" for n in ns], "slope", "R^2"],
        rows,
        checks_passed=ok,
    )


def _e6_nonsplit() -> ExperimentTable:
    import numpy as np

    from repro.adversaries.nonsplit import (
        NonsplitAdversary,
        broadcast_time_nonsplit,
        cyclic_nonsplit_graph,
        nonsplit_radius,
    )
    from repro.gossip.consensus import blocks_are_nonsplit
    from repro.trees.generators import random_tree

    ns = [8, 16, 32, 64]
    rows = []
    ok = True
    rng = np.random.default_rng(0)
    for n in ns:
        radius = nonsplit_radius(cyclic_nonsplit_graph(n))
        t, _ = broadcast_time_nonsplit(NonsplitAdversary(n, seed=1), n)
        trees = [random_tree(n, rng) for _ in range(n - 1)]
        lemma_n = blocks_are_nonsplit(trees, n)
        rows.append((n, radius, t, "yes" if lemma_n else "NO"))
        ok = ok and radius <= 6 and t <= 8 and lemma_n
    return ExperimentTable(
        "E6",
        "nonsplit bridge ([1], [9])",
        ["n", "cyclic radius", "random nonsplit t*", "n-1 rounds nonsplit"],
        rows,
        checks_passed=ok,
    )


def _e7_gossip() -> ExperimentTable:
    from repro.adversaries.oblivious import RandomTreeAdversary, StaticTreeAdversary
    from repro.gossip.gossip import gossip_time_adversary
    from repro.trees.generators import path

    ns = [6, 8, 12, 16]
    rows = []
    ok = True
    for n in ns:
        adv = gossip_time_adversary(StaticTreeAdversary(path(n)), n, max_rounds=4 * n)
        rnd = gossip_time_adversary(RandomTreeAdversary(n, seed=0), n)
        rows.append(
            (
                n,
                "never" if adv.gossip_time is None else adv.gossip_time,
                rnd.broadcast_time,
                rnd.gossip_time,
            )
        )
        ok = ok and adv.gossip_time is None and rnd.gossip_time is not None
    return ExperimentTable(
        "E7",
        "gossip: unbounded adversarially, cheap under random trees",
        ["n", "adversarial gossip", "random broadcast t*", "random gossip"],
        rows,
        checks_passed=ok,
    )


def _e8_ablation() -> ExperimentTable:
    from repro.adversaries.annealing import anneal_sequence
    from repro.adversaries.interval_game import arc_game_value
    from repro.adversaries.paths import StaticPathAdversary
    from repro.adversaries.zeiner import CyclicFamilyAdversary
    from repro.core.bounds import lower_bound
    from repro.core.broadcast import run_adversary

    n = 8
    static = run_adversary(StaticPathAdversary(n), n).t_star
    arcs = arc_game_value(n) if n <= 6 else n - 1  # proved n-1; solver for small n
    annealed = anneal_sequence(n, iterations=400, seed=0).best_t_star
    cyclic = run_adversary(CyclicFamilyAdversary(n), n).t_star
    rows = [
        ("static path", static),
        ("rotated paths only (arc game)", arcs),
        ("simulated annealing (400 it)", annealed),
        ("cyclic chain-fan family", cyclic),
        ("-- LB formula --", lower_bound(n)),
    ]
    ok = cyclic == lower_bound(n) and arcs <= static + 1
    return ExperimentTable(
        "E8",
        f"search ablation at n={n}",
        ["strategy", "t*"],
        rows,
        notes=["only the chain-fan family reaches the formula"],
        checks_passed=ok,
    )


_REGISTRY: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in [
        ExperimentSpec("E1", "Figure 1 bounds overview", "Figure 1", _e1_figure1),
        ExperimentSpec("E2", "Theorem 3.1 sandwich", "Theorem 3.1", _e2_sandwich),
        ExperimentSpec("E3", "Exact game values", "Theorem 3.1 / Section 5", _e3_exact),
        ExperimentSpec("E4", "Section 2 baselines", "Section 2", _e4_baselines),
        ExperimentSpec("E5", "Restricted adversaries", "Figure 1 / Section 4", _e5_restricted),
        ExperimentSpec("E6", "Nonsplit bridge", "Section 4", _e6_nonsplit),
        ExperimentSpec("E7", "Gossip extension", "Section 5", _e7_gossip),
        ExperimentSpec("E8", "Design ablations", "(this repo)", _e8_ablation),
    ]
}


def list_experiments() -> List[ExperimentSpec]:
    """All registered experiments in id order."""
    return [spec for _, spec in sorted(_REGISTRY.items())]


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id (``"E1"`` .. ``"E8"``).

    Raises
    ------
    KeyError
        With the list of known ids, if the id is unknown.
    """
    key = experiment_id.upper()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return _REGISTRY[key]


def run_all() -> List[ExperimentTable]:
    """Run every registered experiment (several minutes)."""
    return [spec.run() for spec in list_experiments()]
