"""Experiment definitions and the registry mapping E-ids to task graphs.

Every experiment E1..E8 is *declarative*: an :class:`ExperimentSpec`
carries

* ``units()`` -- the experiment's work grid as a list of task documents
  (:mod:`repro.service.tasks` kinds: ``run`` cells for everything the
  executor stack can batch/shard, plus typed compute kinds like
  ``exact-solve`` or ``gossip``), and
* ``aggregate(input_docs)`` -- a *pure* fold of the unit results into the
  :class:`ExperimentTable` the paper artifact is compared against.

:meth:`ExperimentSpec.run` assembles the two into a content-addressed
task graph and executes it (:func:`run_experiment`), which is what makes
experiments cacheable (a warm rerun computes zero runs and reproduces the
table byte-identically), resumable, and shardable through any executor.
The pre-task-API inline implementations are retained as
:meth:`ExperimentSpec.run_legacy`; the equivalence suite pins the two
paths against each other and against golden fixtures.

Every run function returns an :class:`ExperimentTable` -- headers, rows,
and the assertions-passed flag -- so callers (CLI, notebooks, tests, the
HTTP task API) get structured data rather than printed text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table

if TYPE_CHECKING:  # runtime imports stay lazy (service.tasks imports us back)
    from repro.service.cache import ResultCache
    from repro.service.tasks import GraphRun, TaskGraph


@dataclass
class ExperimentTable:
    """Structured result of one experiment run."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[Sequence]
    notes: List[str] = field(default_factory=list)
    checks_passed: bool = True

    def render(self) -> str:
        """The table plus notes, formatted for a terminal."""
        parts = [
            format_table(
                self.headers, self.rows, title=f"{self.experiment_id}: {self.title}"
            )
        ]
        parts.extend(self.notes)
        parts.append(
            "checks: PASSED" if self.checks_passed else "checks: FAILED"
        )
        return "\n".join(parts)


def table_to_doc(table: ExperimentTable) -> Dict[str, Any]:
    """The JSON document form of a table (the ``experiment-table`` codec)."""
    return {
        "experiment_id": table.experiment_id,
        "title": table.title,
        "headers": list(table.headers),
        "rows": [list(row) for row in table.rows],
        "notes": list(table.notes),
        "checks_passed": bool(table.checks_passed),
    }


def table_from_doc(doc: Dict[str, Any]) -> ExperimentTable:
    """Rebuild a table from :func:`table_to_doc` (renders identically)."""
    try:
        return ExperimentTable(
            experiment_id=str(doc["experiment_id"]),
            title=str(doc["title"]),
            headers=list(doc["headers"]),
            rows=[list(row) for row in doc["rows"]],
            notes=list(doc.get("notes", [])),
            checks_passed=bool(doc["checks_passed"]),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed experiment-table document: {exc!r}") from exc


# ----------------------------------------------------------------------
# E1: Figure 1 bounds overview
# ----------------------------------------------------------------------

_E1_NS = [8, 16, 32, 64, 128]


def _e1_units() -> List[Dict[str, Any]]:
    return [{"kind": "bounds", "payload": {"n": n}} for n in _E1_NS]


def _e1_aggregate(inputs: List[Dict[str, Any]]) -> ExperimentTable:
    from repro.core import bounds as B

    rows = []
    ok = True
    for doc in inputs:
        rows.append(
            (
                doc["n"],
                doc["trivial"],
                doc["nlogn"],
                doc["loglog"],
                doc["new"],
                doc["lower"],
            )
        )
        ok = ok and doc["new"] < doc["nlogn"] and doc["new"] < doc["loglog"]
    return ExperimentTable(
        "E1",
        "Figure 1 bounds overview",
        ["n", "trivial n^2", "n log n", "2n loglog n + 2n", "(1+sqrt2)n", "LB"],
        rows,
        notes=[
            f"crossover vs n log n at n = {B.crossover_nlogn_vs_linear()}"
        ],
        checks_passed=ok,
    )


def _e1_legacy() -> ExperimentTable:
    from repro.core import bounds as B

    rows = []
    ok = True
    for n in _E1_NS:
        new = B.upper_bound(n)
        nlogn = B.nlogn_upper_bound(n)
        loglog = B.fugger_nowak_winkler_upper_bound(n)
        rows.append(
            (n, B.trivial_upper_bound(n), nlogn, loglog, new, B.lower_bound(n))
        )
        ok = ok and new < nlogn and new < loglog
    return ExperimentTable(
        "E1",
        "Figure 1 bounds overview",
        ["n", "trivial n^2", "n log n", "2n loglog n + 2n", "(1+sqrt2)n", "LB"],
        rows,
        notes=[
            f"crossover vs n log n at n = {B.crossover_nlogn_vs_linear()}"
        ],
        checks_passed=ok,
    )


# ----------------------------------------------------------------------
# E2: Theorem 3.1 sandwich
# ----------------------------------------------------------------------

_E2_NS = [4, 6, 8, 10, 12]


def _e2_units() -> List[Dict[str, Any]]:
    return [
        {"kind": "run", "payload": {"adversary": "cyclic", "n": n}} for n in _E2_NS
    ]


def _e2_aggregate(inputs: List[Dict[str, Any]]) -> ExperimentTable:
    from repro.core.bounds import lower_bound, upper_bound

    rows = []
    ok = True
    for doc in inputs:
        n, t = doc["n"], doc["t_star"]
        rows.append((n, lower_bound(n), t, upper_bound(n), f"{t / n:.3f}"))
        ok = ok and lower_bound(n) <= t <= upper_bound(n)
    return ExperimentTable(
        "E2",
        "Theorem 3.1 sandwich (cyclic chain-fan witness)",
        ["n", "LB formula", "measured t*", "UB formula", "t*/n"],
        rows,
        checks_passed=ok,
    )


def _e2_legacy() -> ExperimentTable:
    from repro.adversaries.zeiner import CyclicFamilyAdversary
    from repro.core.bounds import lower_bound, upper_bound
    from repro.core.broadcast import run_adversary

    rows = []
    ok = True
    for n in _E2_NS:
        t = run_adversary(CyclicFamilyAdversary(n), n).t_star
        rows.append((n, lower_bound(n), t, upper_bound(n), f"{t / n:.3f}"))
        ok = ok and lower_bound(n) <= t <= upper_bound(n)
    return ExperimentTable(
        "E2",
        "Theorem 3.1 sandwich (cyclic chain-fan witness)",
        ["n", "LB formula", "measured t*", "UB formula", "t*/n"],
        rows,
        checks_passed=ok,
    )


# ----------------------------------------------------------------------
# E3: exact game values
# ----------------------------------------------------------------------

_E3_NS = [2, 3, 4, 5]
_E3_NOTES = ["n=6: exact t*=7 (recorded; ~27 min, 112620 states)"]


def _e3_units() -> List[Dict[str, Any]]:
    return [{"kind": "exact-solve", "payload": {"n": n}} for n in _E3_NS]


def _e3_aggregate(inputs: List[Dict[str, Any]]) -> ExperimentTable:
    from repro.core.bounds import lower_bound, upper_bound

    rows = []
    ok = True
    for doc in inputs:
        n = doc["n"]
        rows.append(
            (n, lower_bound(n), doc["t_star"], upper_bound(n), doc["states_explored"])
        )
        ok = ok and doc["t_star"] == lower_bound(n)
    return ExperimentTable(
        "E3",
        "exact game values (LB formula tight for n <= 5 in-run; 6 recorded)",
        ["n", "LB formula", "exact t*", "UB formula", "states"],
        rows,
        notes=list(_E3_NOTES),
        checks_passed=ok,
    )


def _e3_legacy() -> ExperimentTable:
    from repro.adversaries.exact import ExactGameSolver
    from repro.core.bounds import lower_bound, upper_bound

    rows = []
    ok = True
    for n in _E3_NS:
        result = ExactGameSolver(n).solve()
        rows.append(
            (n, lower_bound(n), result.t_star, upper_bound(n), result.states_explored)
        )
        ok = ok and result.t_star == lower_bound(n)
    return ExperimentTable(
        "E3",
        "exact game values (LB formula tight for n <= 5 in-run; 6 recorded)",
        ["n", "LB formula", "exact t*", "UB formula", "states"],
        rows,
        notes=list(_E3_NOTES),
        checks_passed=ok,
    )


# ----------------------------------------------------------------------
# E4: Section 2 baselines
# ----------------------------------------------------------------------

_E4_NS = [8, 16, 32, 64]


def _e4_units() -> List[Dict[str, Any]]:
    units: List[Dict[str, Any]] = []
    for n in _E4_NS:
        units.append({"kind": "run", "payload": {"adversary": "static-path", "n": n}})
        units.append({"kind": "run", "payload": {"adversary": "static-star", "n": n}})
    return units


def _e4_aggregate(inputs: List[Dict[str, Any]]) -> ExperimentTable:
    rows = []
    ok = True
    for path_doc, star_doc in zip(inputs[0::2], inputs[1::2]):
        n = path_doc["n"]
        pt, st = path_doc["t_star"], star_doc["t_star"]
        rows.append((n, pt, n - 1, st))
        ok = ok and pt == n - 1 and st == 1
    return ExperimentTable(
        "E4",
        "Section 2 baselines (static path n-1; star 1)",
        ["n", "static path t*", "paper n-1", "static star t*"],
        rows,
        checks_passed=ok,
    )


def _e4_legacy() -> ExperimentTable:
    from repro.core.broadcast import run_sequence
    from repro.trees.generators import path, star

    rows = []
    ok = True
    for n in _E4_NS:
        pt = run_sequence([path(n)] * (n - 1), n).t_star
        st = run_sequence([star(n)], n).t_star
        rows.append((n, pt, n - 1, st))
        ok = ok and pt == n - 1 and st == 1
    return ExperimentTable(
        "E4",
        "Section 2 baselines (static path n-1; star 1)",
        ["n", "static path t*", "paper n-1", "static star t*"],
        rows,
        checks_passed=ok,
    )


# ----------------------------------------------------------------------
# E5: restricted adversaries stay linear
# ----------------------------------------------------------------------

_E5_NS = [6, 9, 12, 15, 18]
_E5_FAMILIES: List[Tuple[int, str, str]] = [
    (k, label, adversary)
    for k in (2, 3)
    for label, adversary in (("leaves", "k-leaf"), ("inner", "k-inner"))
]


def _e5_units() -> List[Dict[str, Any]]:
    return [
        {
            "kind": "run",
            "payload": {"adversary": adversary, "params": {"k": k}, "n": n},
        }
        for k, _, adversary in _E5_FAMILIES
        for n in _E5_NS
    ]


def _e5_aggregate(inputs: List[Dict[str, Any]]) -> ExperimentTable:
    from repro.analysis.stats import linear_fit

    rows = []
    ok = True
    per_family = len(_E5_NS)
    for i, (k, label, _) in enumerate(_E5_FAMILIES):
        docs = inputs[i * per_family : (i + 1) * per_family]
        ts = [doc["t_star"] for doc in docs]
        fit = linear_fit(_E5_NS, ts)
        rows.append((f"k={k} {label}", *ts, f"{fit.slope:.2f}", f"{fit.r_squared:.3f}"))
        ok = ok and fit.r_squared > 0.9
    return ExperimentTable(
        "E5",
        "restricted adversaries stay linear (O(kn))",
        ["family", *[f"n={n}" for n in _E5_NS], "slope", "R^2"],
        rows,
        checks_passed=ok,
    )


def _e5_legacy() -> ExperimentTable:
    from repro.adversaries.restricted import KInnerAdversary, KLeafAdversary
    from repro.analysis.stats import linear_fit
    from repro.core.broadcast import run_adversary

    rows = []
    ok = True
    for k in (2, 3):
        for name, factory in (("leaves", KLeafAdversary), ("inner", KInnerAdversary)):
            ts = [run_adversary(factory(n, k), n).t_star for n in _E5_NS]
            fit = linear_fit(_E5_NS, ts)
            rows.append((f"k={k} {name}", *ts, f"{fit.slope:.2f}", f"{fit.r_squared:.3f}"))
            ok = ok and fit.r_squared > 0.9
    return ExperimentTable(
        "E5",
        "restricted adversaries stay linear (O(kn))",
        ["family", *[f"n={n}" for n in _E5_NS], "slope", "R^2"],
        rows,
        checks_passed=ok,
    )


# ----------------------------------------------------------------------
# E6: nonsplit bridge
# ----------------------------------------------------------------------

_E6_NS = [8, 16, 32, 64]


def _e6_units() -> List[Dict[str, Any]]:
    # A single task: the witness trees for all ns are drawn from one
    # shared RNG stream, so the grid is not decomposable per n without
    # changing the experiment's exact outputs.
    return [
        {
            "kind": "nonsplit-bridge",
            "payload": {"ns": _E6_NS, "graph_seed": 1, "rng_seed": 0},
        }
    ]


def _e6_aggregate(inputs: List[Dict[str, Any]]) -> ExperimentTable:
    rows = []
    ok = True
    for doc in inputs[0]["rows"]:
        lemma_n = doc["lemma_nonsplit"]
        rows.append(
            (doc["n"], doc["radius"], doc["t_star"], "yes" if lemma_n else "NO")
        )
        ok = ok and doc["radius"] <= 6 and doc["t_star"] <= 8 and lemma_n
    return ExperimentTable(
        "E6",
        "nonsplit bridge ([1], [9])",
        ["n", "cyclic radius", "random nonsplit t*", "n-1 rounds nonsplit"],
        rows,
        checks_passed=ok,
    )


def _e6_legacy() -> ExperimentTable:
    import numpy as np

    from repro.adversaries.nonsplit import (
        NonsplitAdversary,
        broadcast_time_nonsplit,
        cyclic_nonsplit_graph,
        nonsplit_radius,
    )
    from repro.gossip.consensus import blocks_are_nonsplit
    from repro.trees.generators import random_tree

    rows = []
    ok = True
    rng = np.random.default_rng(0)
    for n in _E6_NS:
        radius = nonsplit_radius(cyclic_nonsplit_graph(n))
        t, _ = broadcast_time_nonsplit(NonsplitAdversary(n, seed=1), n)
        trees = [random_tree(n, rng) for _ in range(n - 1)]
        lemma_n = blocks_are_nonsplit(trees, n)
        rows.append((n, radius, t, "yes" if lemma_n else "NO"))
        ok = ok and radius <= 6 and t <= 8 and lemma_n
    return ExperimentTable(
        "E6",
        "nonsplit bridge ([1], [9])",
        ["n", "cyclic radius", "random nonsplit t*", "n-1 rounds nonsplit"],
        rows,
        checks_passed=ok,
    )


# ----------------------------------------------------------------------
# E7: gossip extension
# ----------------------------------------------------------------------

_E7_NS = [6, 8, 12, 16]


def _e7_units() -> List[Dict[str, Any]]:
    units: List[Dict[str, Any]] = []
    for n in _E7_NS:
        units.append(
            {
                "kind": "gossip",
                "payload": {"n": n, "family": "adversarial-path", "max_rounds": 4 * n},
            }
        )
        units.append(
            {"kind": "gossip", "payload": {"n": n, "family": "random-tree", "seed": 0}}
        )
    return units


def _e7_aggregate(inputs: List[Dict[str, Any]]) -> ExperimentTable:
    rows = []
    ok = True
    for adv_doc, rnd_doc in zip(inputs[0::2], inputs[1::2]):
        rows.append(
            (
                adv_doc["n"],
                "never" if adv_doc["gossip_time"] is None else adv_doc["gossip_time"],
                rnd_doc["broadcast_time"],
                rnd_doc["gossip_time"],
            )
        )
        ok = ok and adv_doc["gossip_time"] is None and rnd_doc["gossip_time"] is not None
    return ExperimentTable(
        "E7",
        "gossip: unbounded adversarially, cheap under random trees",
        ["n", "adversarial gossip", "random broadcast t*", "random gossip"],
        rows,
        checks_passed=ok,
    )


def _e7_legacy() -> ExperimentTable:
    from repro.adversaries.oblivious import RandomTreeAdversary, StaticTreeAdversary
    from repro.gossip.gossip import gossip_time_adversary
    from repro.trees.generators import path

    rows = []
    ok = True
    for n in _E7_NS:
        adv = gossip_time_adversary(StaticTreeAdversary(path(n)), n, max_rounds=4 * n)
        rnd = gossip_time_adversary(RandomTreeAdversary(n, seed=0), n)
        rows.append(
            (
                n,
                "never" if adv.gossip_time is None else adv.gossip_time,
                rnd.broadcast_time,
                rnd.gossip_time,
            )
        )
        ok = ok and adv.gossip_time is None and rnd.gossip_time is not None
    return ExperimentTable(
        "E7",
        "gossip: unbounded adversarially, cheap under random trees",
        ["n", "adversarial gossip", "random broadcast t*", "random gossip"],
        rows,
        checks_passed=ok,
    )


# ----------------------------------------------------------------------
# E8: design ablations
# ----------------------------------------------------------------------

_E8_N = 8


def _e8_units() -> List[Dict[str, Any]]:
    return [
        {"kind": "run", "payload": {"adversary": "static-path", "n": _E8_N}},
        {"kind": "run", "payload": {"adversary": "cyclic", "n": _E8_N}},
        {"kind": "arc-game", "payload": {"n": _E8_N}},
        {"kind": "anneal", "payload": {"n": _E8_N, "iterations": 400, "seed": 0}},
    ]


def _e8_aggregate(inputs: List[Dict[str, Any]]) -> ExperimentTable:
    from repro.core.bounds import lower_bound

    static = inputs[0]["t_star"]
    cyclic = inputs[1]["t_star"]
    arcs = inputs[2]["value"]
    annealed = inputs[3]["best_t_star"]
    rows = [
        ("static path", static),
        ("rotated paths only (arc game)", arcs),
        ("simulated annealing (400 it)", annealed),
        ("cyclic chain-fan family", cyclic),
        ("-- LB formula --", lower_bound(_E8_N)),
    ]
    ok = cyclic == lower_bound(_E8_N) and arcs <= static + 1
    return ExperimentTable(
        "E8",
        f"search ablation at n={_E8_N}",
        ["strategy", "t*"],
        rows,
        notes=["only the chain-fan family reaches the formula"],
        checks_passed=ok,
    )


def _e8_legacy() -> ExperimentTable:
    from repro.adversaries.annealing import anneal_sequence
    from repro.adversaries.interval_game import arc_game_value
    from repro.adversaries.paths import StaticPathAdversary
    from repro.adversaries.zeiner import CyclicFamilyAdversary
    from repro.core.bounds import lower_bound
    from repro.core.broadcast import run_adversary

    n = _E8_N
    static = run_adversary(StaticPathAdversary(n), n).t_star
    arcs = arc_game_value(n) if n <= 6 else n - 1  # proved n-1; solver for small n
    annealed = anneal_sequence(n, iterations=400, seed=0).best_t_star
    cyclic = run_adversary(CyclicFamilyAdversary(n), n).t_star
    rows = [
        ("static path", static),
        ("rotated paths only (arc game)", arcs),
        ("simulated annealing (400 it)", annealed),
        ("cyclic chain-fan family", cyclic),
        ("-- LB formula --", lower_bound(n)),
    ]
    ok = cyclic == lower_bound(n) and arcs <= static + 1
    return ExperimentTable(
        "E8",
        f"search ablation at n={n}",
        ["strategy", "t*"],
        rows,
        notes=["only the chain-fan family reaches the formula"],
        checks_passed=ok,
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry: id, description, paper artifact, declarative plan.

    ``units`` produces the experiment's task documents (no-input grid
    cells); ``aggregate`` purely folds their result documents -- in
    ``units`` order -- into the table.  ``legacy`` is the pre-task-API
    inline implementation, kept for equivalence testing.
    """

    experiment_id: str
    title: str
    paper_artifact: str
    units: Callable[[], List[Dict[str, Any]]]
    aggregate: Callable[[List[Dict[str, Any]]], ExperimentTable]
    legacy: Callable[[], ExperimentTable]

    def graph(self) -> Tuple["TaskGraph", str]:
        """The experiment as ``(task graph, output digest)``."""
        return experiment_graph(self.experiment_id)

    def run(
        self, executor: Any = None, cache: Optional["ResultCache"] = None
    ) -> ExperimentTable:
        """Run through the task API (the default path everywhere)."""
        table, _ = run_experiment(self.experiment_id, executor=executor, cache=cache)
        return table

    def run_legacy(self) -> ExperimentTable:
        """Run the original inline implementation (equivalence oracle)."""
        return self.legacy()


_REGISTRY: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in [
        ExperimentSpec(
            "E1", "Figure 1 bounds overview", "Figure 1",
            _e1_units, _e1_aggregate, _e1_legacy,
        ),
        ExperimentSpec(
            "E2", "Theorem 3.1 sandwich", "Theorem 3.1",
            _e2_units, _e2_aggregate, _e2_legacy,
        ),
        ExperimentSpec(
            "E3", "Exact game values", "Theorem 3.1 / Section 5",
            _e3_units, _e3_aggregate, _e3_legacy,
        ),
        ExperimentSpec(
            "E4", "Section 2 baselines", "Section 2",
            _e4_units, _e4_aggregate, _e4_legacy,
        ),
        ExperimentSpec(
            "E5", "Restricted adversaries", "Figure 1 / Section 4",
            _e5_units, _e5_aggregate, _e5_legacy,
        ),
        ExperimentSpec(
            "E6", "Nonsplit bridge", "Section 4",
            _e6_units, _e6_aggregate, _e6_legacy,
        ),
        ExperimentSpec(
            "E7", "Gossip extension", "Section 5",
            _e7_units, _e7_aggregate, _e7_legacy,
        ),
        ExperimentSpec(
            "E8", "Design ablations", "(this repo)",
            _e8_units, _e8_aggregate, _e8_legacy,
        ),
    ]
}


def known_experiment_ids() -> Tuple[str, ...]:
    """All registered experiment ids, sorted (``E1`` .. ``E8``)."""
    return tuple(sorted(_REGISTRY))


def list_experiments() -> List[ExperimentSpec]:
    """All registered experiments in id order."""
    return [spec for _, spec in sorted(_REGISTRY.items())]


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id (``"E1"`` .. ``"E8"``).

    Raises
    ------
    KeyError
        With the list of known ids, if the id is unknown.
    """
    key = experiment_id.upper()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return _REGISTRY[key]


def experiment_graph(experiment_id: str) -> Tuple["TaskGraph", str]:
    """Assemble one experiment's content-addressed task graph.

    The graph is the experiment's unit tasks plus one ``experiment``
    aggregation task consuming them in declaration order; the returned
    digest addresses the aggregation (= the table).
    """
    from repro.service.tasks import TaskGraph

    spec = get_experiment(experiment_id)
    graph = TaskGraph()
    inputs = [graph.add(unit) for unit in spec.units()]
    output = graph.add(
        {
            "kind": "experiment",
            "payload": {"experiment": spec.experiment_id},
            "inputs": inputs,
        }
    )
    return graph, output


def run_experiment(
    experiment_id: str,
    executor: Any = None,
    cache: Optional["ResultCache"] = None,
) -> Tuple[ExperimentTable, "GraphRun"]:
    """Execute one experiment through the task API.

    Returns ``(table, graph_run)`` -- the graph run carries per-task
    statuses and the ``runs_computed``/``cached`` counters (a warm-cache
    rerun reports zero computed runs).  Raises
    :class:`~repro.errors.TaskError` if the output task did not complete.
    """
    from repro.service.tasks import TaskGraphRunner

    graph, output = experiment_graph(experiment_id)
    run = TaskGraphRunner(executor=executor, cache=cache).run(graph)
    return run.decoded(graph, output), run


def run_all(legacy: bool = False) -> List[ExperimentTable]:
    """Run every registered experiment (facade over the task path)."""
    return [
        spec.run_legacy() if legacy else spec.run() for spec in list_experiments()
    ]
