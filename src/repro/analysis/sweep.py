"""Parameter sweeps: broadcast time across ``n`` and adversaries.

The benchmark harnesses are thin wrappers over these functions, so the
same sweeps are available programmatically (and in the CLI).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

from repro.core.bounds import lower_bound, upper_bound
from repro.errors import SweepFormatError
from repro.types import AdversaryProtocol

if TYPE_CHECKING:  # runtime import stays lazy (engine imports this module)
    from repro.engine.executor import Executor

#: Format version written into every serialized sweep result.
SWEEP_FORMAT_VERSION = 1


@dataclass
class SweepPoint:
    """One (adversary, n) measurement."""

    adversary: str
    n: int
    t_star: int
    lower: int
    upper: int

    @property
    def normalized(self) -> float:
        """``t*/n``."""
        return self.t_star / self.n

    @property
    def within_bounds(self) -> bool:
        """Theorem 3.1 upper bound respected (must always hold)."""
        return self.t_star <= self.upper


@dataclass
class SweepResult:
    """A grid of measurements with helpers for tabulation."""

    points: List[SweepPoint] = field(default_factory=list)

    def by_adversary(self) -> Dict[str, List[SweepPoint]]:
        """Group points by adversary name (insertion-ordered)."""
        groups: Dict[str, List[SweepPoint]] = {}
        for p in self.points:
            groups.setdefault(p.adversary, []).append(p)
        return groups

    def ns(self) -> List[int]:
        """Sorted distinct ``n`` values."""
        return sorted({p.n for p in self.points})

    def all_within_bounds(self) -> bool:
        """True iff no measurement violates the Theorem 3.1 upper bound."""
        return all(p.within_bounds for p in self.points)

    def best_per_n(self) -> Dict[int, SweepPoint]:
        """The strongest adversary measurement for each ``n``."""
        best: Dict[int, SweepPoint] = {}
        for p in self.points:
            if p.n not in best or p.t_star > best[p.n].t_star:
                best[p.n] = p
        return best

    # ------------------------------------------------------------------
    # Serialization (CLI ``sweep --out`` / cross-engine comparisons)
    # ------------------------------------------------------------------

    def to_doc(self) -> Dict[str, object]:
        """The JSON-ready document form of the grid (what codecs store).

        The point order is preserved, so two sweeps of the same grid by
        different executors (or through the task-graph path) produce
        identical documents.
        """
        return {
            "format_version": SWEEP_FORMAT_VERSION,
            "points": [
                {
                    "adversary": p.adversary,
                    "n": p.n,
                    "t_star": p.t_star,
                    "lower": p.lower,
                    "upper": p.upper,
                }
                for p in self.points
            ],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize the full grid to a JSON string.

        The point order is preserved, so two sweeps of the same grid by
        different executors serialize to byte-identical documents -- the
        CI executor-equivalence job diffs these files directly.
        """
        return json.dumps(self.to_doc(), indent=indent)

    @classmethod
    def from_doc(cls, doc: object) -> "SweepResult":
        """Rebuild a result from its :meth:`to_doc` document.

        Raises :class:`~repro.errors.SweepFormatError` on malformed input
        (wrong version, missing point fields).
        """
        version = doc.get("format_version") if isinstance(doc, dict) else None
        if version != SWEEP_FORMAT_VERSION:
            raise SweepFormatError(
                f"unsupported sweep format version {version!r} "
                f"(expected {SWEEP_FORMAT_VERSION})"
            )
        if not isinstance(doc.get("points"), list):
            raise SweepFormatError("sweep result is missing the 'points' list")
        points = []
        for i, raw in enumerate(doc["points"]):
            try:
                points.append(
                    SweepPoint(
                        adversary=str(raw["adversary"]),
                        n=int(raw["n"]),
                        t_star=int(raw["t_star"]),
                        lower=int(raw["lower"]),
                        upper=int(raw["upper"]),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise SweepFormatError(f"malformed sweep point {i}: {exc!r}") from exc
        return cls(points=points)

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        """Parse a result previously produced by :meth:`to_json`.

        Raises :class:`~repro.errors.SweepFormatError` on malformed input
        (bad JSON, wrong version, missing point fields).
        """
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SweepFormatError(f"sweep result is not valid JSON: {exc}") from exc
        return cls.from_doc(doc)

    def save(self, path: Union[str, Path]) -> None:
        """Write the result to ``path`` as indented JSON."""
        Path(path).write_text(self.to_json(indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepResult":
        """Read a result previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())


def make_sweep_point(adversary: str, n: int, t_star: Optional[int]) -> Optional[SweepPoint]:
    """The canonical measurement record for one completed grid point.

    Returns ``None`` for runs truncated by an explicit cap (``t_star``
    ``None``) -- such points are dropped from sweep results.  Both the
    sequential loop below and the sharded workers
    (:mod:`repro.engine.shard`) build their points here, which is what
    keeps the two paths bit-identical by construction.
    """
    if t_star is None:
        return None
    return SweepPoint(
        adversary=adversary,
        n=n,
        t_star=t_star,
        lower=lower_bound(n),
        upper=upper_bound(n),
    )


def sweep_adversaries(
    adversary_factories: Dict[str, Callable[[int], AdversaryProtocol]],
    ns: Sequence[int],
    max_rounds: Optional[int] = None,
    workers: Optional[int] = None,
    executor: Union[str, "Executor", None] = None,
    cache: Optional[object] = None,
) -> SweepResult:
    """Measure ``t*`` for every (factory, n) pair, ``n``-major.

    ``adversary_factories`` maps a display name to ``n -> adversary``.
    The grid runs on an executor from the unified execution layer
    (:mod:`repro.engine.executor`); all executors are decision-equivalent,
    so the result is identical whichever is chosen:

    * ``executor`` -- a name (``"sequential"``/``"batch"``/``"sharded"``)
      or an :class:`~repro.engine.executor.Executor` instance;
    * ``workers`` (``> 1``, when ``executor`` is unset) -- backwards
      compatible shorthand for the sharded executor; factories must then
      be picklable;
    * neither -- the sequential executor.

    ``cache`` (opt-in) is a cell-cache adapter, typically
    :class:`repro.service.cache.SweepCellCache` over declarative
    :class:`~repro.service.specs.SpecHandle` factories: already-measured
    grid cells become O(1) lookups and only new cells compute, with the
    merged result bit-identical to a cold sweep.
    """
    from repro.engine.executor import get_executor

    if executor is None:
        executor = "sharded" if workers is not None and workers != 1 else "sequential"
    return get_executor(executor, workers=workers).sweep(
        adversary_factories, ns, max_rounds=max_rounds, cache=cache
    )


def sweep_n(
    factory: Callable[[int], AdversaryProtocol],
    ns: Sequence[int],
    name: str = "adversary",
    workers: Optional[int] = None,
    executor: Union[str, "Executor", None] = None,
) -> SweepResult:
    """Sweep one adversary family over ``n`` (optionally sharded)."""
    return sweep_adversaries(
        {name: factory}, ns, workers=workers, executor=executor
    )
