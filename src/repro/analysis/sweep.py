"""Parameter sweeps: broadcast time across ``n`` and adversaries.

The benchmark harnesses are thin wrappers over these functions, so the
same sweeps are available programmatically (and in the CLI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.bounds import lower_bound, upper_bound
from repro.core.broadcast import run_adversary
from repro.types import AdversaryProtocol


@dataclass
class SweepPoint:
    """One (adversary, n) measurement."""

    adversary: str
    n: int
    t_star: int
    lower: int
    upper: int

    @property
    def normalized(self) -> float:
        """``t*/n``."""
        return self.t_star / self.n

    @property
    def within_bounds(self) -> bool:
        """Theorem 3.1 upper bound respected (must always hold)."""
        return self.t_star <= self.upper


@dataclass
class SweepResult:
    """A grid of measurements with helpers for tabulation."""

    points: List[SweepPoint] = field(default_factory=list)

    def by_adversary(self) -> Dict[str, List[SweepPoint]]:
        """Group points by adversary name (insertion-ordered)."""
        groups: Dict[str, List[SweepPoint]] = {}
        for p in self.points:
            groups.setdefault(p.adversary, []).append(p)
        return groups

    def ns(self) -> List[int]:
        """Sorted distinct ``n`` values."""
        return sorted({p.n for p in self.points})

    def all_within_bounds(self) -> bool:
        """True iff no measurement violates the Theorem 3.1 upper bound."""
        return all(p.within_bounds for p in self.points)

    def best_per_n(self) -> Dict[int, SweepPoint]:
        """The strongest adversary measurement for each ``n``."""
        best: Dict[int, SweepPoint] = {}
        for p in self.points:
            if p.n not in best or p.t_star > best[p.n].t_star:
                best[p.n] = p
        return best


def sweep_adversaries(
    adversary_factories: Dict[str, Callable[[int], AdversaryProtocol]],
    ns: Sequence[int],
    max_rounds: Optional[int] = None,
) -> SweepResult:
    """Measure ``t*`` for every (factory, n) pair.

    ``adversary_factories`` maps a display name to ``n -> adversary``.
    """
    result = SweepResult()
    for n in ns:
        for name, factory in adversary_factories.items():
            adv = factory(n)
            run = run_adversary(adv, n, max_rounds=max_rounds)
            if run.t_star is None:
                continue  # truncated by an explicit cap: skip the point
            result.points.append(
                SweepPoint(
                    adversary=name,
                    n=n,
                    t_star=run.t_star,
                    lower=lower_bound(n),
                    upper=upper_bound(n),
                )
            )
    return result


def sweep_n(
    factory: Callable[[int], AdversaryProtocol],
    ns: Sequence[int],
    name: str = "adversary",
) -> SweepResult:
    """Sweep one adversary family over ``n``."""
    return sweep_adversaries({name: factory}, ns)
