"""Parameter sweeps: broadcast time across ``n`` and adversaries.

The benchmark harnesses are thin wrappers over these functions, so the
same sweeps are available programmatically (and in the CLI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.bounds import lower_bound, upper_bound
from repro.core.broadcast import run_adversary
from repro.types import AdversaryProtocol


@dataclass
class SweepPoint:
    """One (adversary, n) measurement."""

    adversary: str
    n: int
    t_star: int
    lower: int
    upper: int

    @property
    def normalized(self) -> float:
        """``t*/n``."""
        return self.t_star / self.n

    @property
    def within_bounds(self) -> bool:
        """Theorem 3.1 upper bound respected (must always hold)."""
        return self.t_star <= self.upper


@dataclass
class SweepResult:
    """A grid of measurements with helpers for tabulation."""

    points: List[SweepPoint] = field(default_factory=list)

    def by_adversary(self) -> Dict[str, List[SweepPoint]]:
        """Group points by adversary name (insertion-ordered)."""
        groups: Dict[str, List[SweepPoint]] = {}
        for p in self.points:
            groups.setdefault(p.adversary, []).append(p)
        return groups

    def ns(self) -> List[int]:
        """Sorted distinct ``n`` values."""
        return sorted({p.n for p in self.points})

    def all_within_bounds(self) -> bool:
        """True iff no measurement violates the Theorem 3.1 upper bound."""
        return all(p.within_bounds for p in self.points)

    def best_per_n(self) -> Dict[int, SweepPoint]:
        """The strongest adversary measurement for each ``n``."""
        best: Dict[int, SweepPoint] = {}
        for p in self.points:
            if p.n not in best or p.t_star > best[p.n].t_star:
                best[p.n] = p
        return best


def make_sweep_point(adversary: str, n: int, t_star: Optional[int]) -> Optional[SweepPoint]:
    """The canonical measurement record for one completed grid point.

    Returns ``None`` for runs truncated by an explicit cap (``t_star``
    ``None``) -- such points are dropped from sweep results.  Both the
    sequential loop below and the sharded workers
    (:mod:`repro.engine.shard`) build their points here, which is what
    keeps the two paths bit-identical by construction.
    """
    if t_star is None:
        return None
    return SweepPoint(
        adversary=adversary,
        n=n,
        t_star=t_star,
        lower=lower_bound(n),
        upper=upper_bound(n),
    )


def sweep_adversaries(
    adversary_factories: Dict[str, Callable[[int], AdversaryProtocol]],
    ns: Sequence[int],
    max_rounds: Optional[int] = None,
    workers: Optional[int] = None,
) -> SweepResult:
    """Measure ``t*`` for every (factory, n) pair.

    ``adversary_factories`` maps a display name to ``n -> adversary``.
    ``workers`` (``> 1``) shards the grid across a process pool via
    :class:`repro.engine.shard.ShardedSweepRunner`; the result is
    bit-identical to the sequential path (factories must then be
    picklable).  ``None`` or ``1`` keeps the sequential loop below.
    """
    if workers is not None and workers != 1:
        from repro.engine.shard import ShardedSweepRunner

        return ShardedSweepRunner(workers=workers).sweep_adversaries(
            adversary_factories, ns, max_rounds=max_rounds
        )
    result = SweepResult()
    for n in ns:
        for name, factory in adversary_factories.items():
            adv = factory(n)
            run = run_adversary(adv, n, max_rounds=max_rounds)
            point = make_sweep_point(name, n, run.t_star)
            if point is not None:
                result.points.append(point)
    return result


def sweep_n(
    factory: Callable[[int], AdversaryProtocol],
    ns: Sequence[int],
    name: str = "adversary",
    workers: Optional[int] = None,
) -> SweepResult:
    """Sweep one adversary family over ``n`` (optionally sharded)."""
    return sweep_adversaries({name: factory}, ns, workers=workers)
