"""Small statistics helpers for the "is it linear?" questions.

The headline claims are about growth rates (linear vs ``n log n`` vs
``n log log n``); :func:`linear_fit` provides least-squares slopes with a
coefficient of determination so benchmark tables can report measured
slopes next to the formulas' constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """Result of a least-squares line fit ``y ≈ slope·x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Fitted value at ``x``."""
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares fit of ``ys`` on ``xs``.

    Raises
    ------
    ValueError
        For fewer than two points or degenerate (constant) ``xs``.
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("xs and ys must be 1-D sequences of equal length")
    if len(x) < 2:
        raise ValueError("need at least two points to fit a line")
    if float(x.std()) == 0.0:
        raise ValueError("xs are constant; slope is undefined")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r_squared)


def growth_ratio_table(ns: Sequence[int], ts: Sequence[int]) -> list:
    """Rows ``(n, t, t/n)`` used by several benchmark printouts."""
    if len(ns) != len(ts):
        raise ValueError("ns and ts must have equal length")
    return [(n, t, t / n) for n, t in zip(ns, ts)]
