"""Dependency-free ASCII plotting for terminal reports.

The environment is offline and headless; these helpers give the examples
and benchmark narratives lightweight visuals: sparklines for per-round
trajectories and a column chart for cross-``n`` comparisons.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

#: Eight-level block characters used by :func:`sparkline`.
_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render a numeric series as a one-line unicode sparkline.

    Constant series render as a flat middle band; empty input gives "".
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _BLOCKS[3] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx])
    return "".join(out)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart with right-aligned numeric annotations.

    ``width`` is the bar column's character budget; bars scale to the
    maximum value.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return ""
    vals = [float(v) for v in values]
    peak = max(max(vals), 1e-12)
    label_w = max(len(str(l)) for l in labels)
    lines: List[str] = []
    for label, v in zip(labels, vals):
        bar_len = int(round(v / peak * width))
        lines.append(
            f"{str(label).ljust(label_w)}  "
            f"{'#' * bar_len}{' ' * (width - bar_len)}  "
            f"{v:g}{unit}"
        )
    return "\n".join(lines)


def series_compare(
    xs: Sequence[int],
    series: dict,
    width: int = 60,
    height: int = 12,
    x_label: str = "n",
) -> str:
    """Plot several integer series against common x values as ASCII.

    Each series gets a distinct marker; collisions show the later marker.
    Intended for "t* vs n across adversaries" pictures in examples.
    """
    if not xs or not series:
        return ""
    markers = "ox+*#@%&"
    all_vals = [v for ys in series.values() for v in ys]
    lo, hi = min(all_vals), max(all_vals)
    span = max(hi - lo, 1)
    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = min(xs), max(xs)
    x_span = max(x_hi - x_lo, 1)

    def col(x: int) -> int:
        return int((x - x_lo) / x_span * (width - 1))

    def row(y: float) -> int:
        return height - 1 - int((y - lo) / span * (height - 1))

    legend = []
    for (name, ys), marker in zip(series.items(), markers):
        legend.append(f"{marker} = {name}")
        for x, y in zip(xs, ys):
            grid[row(y)][col(x)] = marker

    lines = ["".join(r) for r in grid]
    lines.append("-" * width)
    lines.append(f"{x_label}: {x_lo} .. {x_hi}   y: {lo} .. {hi}")
    lines.extend(legend)
    return "\n".join(lines)


def trajectory_panel(
    title: str,
    trajectories: dict,
) -> str:
    """Labelled sparkline panel: one line per named trajectory."""
    if not trajectories:
        return title
    label_w = max(len(str(k)) for k in trajectories)
    lines = [title]
    for name, values in trajectories.items():
        first = values[0] if len(values) else ""
        last = values[-1] if len(values) else ""
        lines.append(
            f"  {str(name).ljust(label_w)}  {sparkline(values)}  "
            f"({first} -> {last})"
        )
    return "\n".join(lines)
