"""Plain-text and markdown table rendering for benchmark reports.

Small, dependency-free formatting used by the benchmark harnesses, the
examples, and the CLI so that "the same rows the paper reports" come out
aligned and readable in a terminal.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _stringify(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table.

    Columns are right-aligned except the first (labels, left-aligned).
    """
    str_rows: List[List[str]] = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, headers have {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts)

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> str:
    """Render a GitHub-flavoured markdown table."""
    str_rows = [[_stringify(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, headers have {len(headers)}"
            )
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in str_rows)
    return "\n".join(lines)
