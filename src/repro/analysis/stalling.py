"""Stalling analysis: who fails to grow, and why.

Executable forms of the two structural lemmas (DESIGN.md):

* **Lemma R** -- the chosen root always gains while unfinished;
* **Lemma S** -- node ``x`` stalls iff its reach set is a union of
  complete subtrees of the round's tree.

:func:`verify_lemmas_on_round` checks both on a concrete (state, tree)
pair using *independent* implementations (set-based closure vs the
matrix-based gain computation); the property-test suite drives it with
random states and trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

from repro.core.state import BroadcastState
from repro.trees.rooted_tree import RootedTree
from repro.trees.subtree import (
    is_union_of_subtrees,
    is_union_of_subtrees_by_decomposition,
    stalled_nodes,
)


@dataclass(frozen=True)
class StallReport:
    """Stalling structure of one prospective round.

    Attributes
    ----------
    round_index: the round the tree would be played in.
    root: the tree's root (always in ``growing`` unless finished).
    stalled: nodes whose reach sets would not grow.
    growing: complement of ``stalled``.
    stall_fraction: ``|stalled| / n`` (the adversary wants this high).
    """

    round_index: int
    root: int
    stalled: FrozenSet[int]
    growing: FrozenSet[int]
    stall_fraction: float


def stall_report(state: BroadcastState, tree: RootedTree) -> StallReport:
    """Compute the stalling structure of playing ``tree`` from ``state``."""
    st = stalled_nodes(tree, state.reach_matrix_view())
    growing = frozenset(range(state.n)) - st
    return StallReport(
        round_index=state.round_index + 1,
        root=tree.root,
        stalled=st,
        growing=growing,
        stall_fraction=len(st) / state.n,
    )


def verify_lemmas_on_round(
    state: BroadcastState, tree: RootedTree
) -> Tuple[bool, bool, bool]:
    """Check Lemmas R and S (both implementations) on one configuration.

    Returns
    -------
    (lemma_r, lemma_s_closure, lemma_s_decomposition):
        * ``lemma_r`` -- the root gains or has already finished;
        * ``lemma_s_closure`` -- for every node, the matrix-based stall
          decision equals the closure-based union-of-subtrees test;
        * ``lemma_s_decomposition`` -- same against the independent
          peel-maximal-subtrees implementation.
    """
    reach = state.reach_matrix_view()
    st = stalled_nodes(tree, reach)
    root_row_full = bool(reach[tree.root].all())
    lemma_r = root_row_full or (tree.root not in st)

    lemma_s_closure = True
    lemma_s_decomposition = True
    for x in range(state.n):
        r_x = state.reach_set(x)
        stalled_matrix = x in st
        stalled_closure = is_union_of_subtrees(tree, r_x)
        stalled_decomp = is_union_of_subtrees_by_decomposition(tree, r_x)
        if stalled_matrix != stalled_closure:
            lemma_s_closure = False
        if stalled_matrix != stalled_decomp:
            lemma_s_decomposition = False
    return lemma_r, lemma_s_closure, lemma_s_decomposition


def stall_trajectory(
    trees: Sequence[RootedTree], n: int
) -> List[StallReport]:
    """Per-round stall reports along a whole run."""
    state = BroadcastState.initial(n)
    reports: List[StallReport] = []
    for tree in trees:
        reports.append(stall_report(state, tree))
        state.apply_tree_inplace(tree)
        if state.is_broadcast_complete():
            break
    return reports


def max_stall_fraction(reports: Sequence[StallReport]) -> float:
    """The best stalling round of a run (0.0 for an empty run)."""
    return max((r.stall_fraction for r in reports), default=0.0)
