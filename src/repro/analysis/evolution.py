"""Adjacency-matrix evolution reports -- the paper's Section 3 lens.

The paper's proof follows "the evolution of the adjacency matrix of the
network over time".  :func:`evolution_report` runs a tree sequence and
captures that evolution as data: per-round potentials, row/column
histograms, and the new-edge trajectory, ready for tabulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.potential import (
    MatrixPotential,
    RoundDelta,
    matrix_potential,
    minimum_new_edges_invariant,
    round_delta,
)
from repro.core.state import BroadcastState
from repro.trees.rooted_tree import RootedTree
from repro.types import validate_node_count


@dataclass
class EvolutionReport:
    """The captured matrix evolution of one run.

    Attributes
    ----------
    n: number of processes.
    t_star: first completion round (None if sequence ended before).
    potentials: per-round :class:`MatrixPotential` (index 0 = round 1).
    deltas: per-round :class:`RoundDelta`.
    """

    n: int
    t_star: Optional[int]
    potentials: List[MatrixPotential] = field(default_factory=list)
    deltas: List[RoundDelta] = field(default_factory=list)

    @property
    def new_edge_trajectory(self) -> List[int]:
        """Edges gained per round; every entry >= 1 (Section 2)."""
        return [d.new_edges for d in self.deltas]

    @property
    def leader_trajectory(self) -> List[int]:
        """Max reach-set size after each round."""
        return [p.max_row for p in self.potentials]

    def invariant_min_one_new_edge(self) -> bool:
        """Check Section 2's >= 1 new edge per round invariant."""
        return minimum_new_edges_invariant(self.deltas)

    def rounds(self) -> int:
        """Number of recorded rounds."""
        return len(self.potentials)


def evolution_report(
    trees: Sequence[RootedTree],
    n: Optional[int] = None,
    stop_at_broadcast: bool = True,
) -> EvolutionReport:
    """Run ``trees`` and record the full matrix evolution."""
    if n is None:
        if not trees:
            raise ValueError("cannot infer n from an empty sequence")
        n = trees[0].n
    validate_node_count(n)
    state = BroadcastState.initial(n)
    report = EvolutionReport(n=n, t_star=None)
    for tree in trees:
        before = state.copy()
        state.apply_tree_inplace(tree)
        report.potentials.append(matrix_potential(state))
        report.deltas.append(round_delta(before, state, tree))
        if report.t_star is None and state.is_broadcast_complete():
            report.t_star = state.round_index
            if stop_at_broadcast:
                break
    return report


def knowledge_matrix_snapshots(
    trees: Sequence[RootedTree],
    n: Optional[int] = None,
    every: int = 1,
) -> List[np.ndarray]:
    """Raw product-graph snapshots every ``every`` rounds (plus the final).

    Memory scales with ``rounds/every * n²`` bits; intended for small
    walkthrough examples and plots.
    """
    if n is None:
        if not trees:
            raise ValueError("cannot infer n from an empty sequence")
        n = trees[0].n
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every}")
    state = BroadcastState.initial(n)
    snaps: List[np.ndarray] = []
    for i, tree in enumerate(trees, start=1):
        state.apply_tree_inplace(tree)
        if i % every == 0:
            snaps.append(state.reach_matrix)
        if state.is_broadcast_complete():
            break
    if not snaps or not state.is_broadcast_complete() or state.round_index % every:
        snaps.append(state.reach_matrix)
    return snaps


def render_matrix(matrix: np.ndarray, mark: str = "#", blank: str = ".") -> str:
    """ASCII-art a boolean matrix (rows = reach sets)."""
    return "\n".join(
        "".join(mark if cell else blank for cell in row) for row in matrix
    )
