"""Falsification campaigns: actively trying to break Theorem 3.1.

A reproduction of a theorem is most convincing when it *attacks* the
claim.  :func:`falsification_campaign` throws every searcher the library
has at one ``n`` -- the portfolio, exhaustive greedy (small ``n``),
annealing, plus fresh random seeds -- and reports the largest broadcast
time anything achieved.  The campaign *fails to falsify* iff that maximum
respects ``⌈(1+√2)n − 1⌉``; any violation raises immediately with the
offending witness sequence (which would mean a model bug or a disproof).

This is also where the repository's strongest statement about the open
gap lives: :func:`measured_gap` reports how far below the upper bound the
best-known adversary sits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.bounds import lower_bound, upper_bound
from repro.core.broadcast import run_adversary
from repro.errors import AdversaryError
from repro.types import validate_node_count


@dataclass
class CampaignResult:
    """Outcome of one falsification campaign.

    Attributes
    ----------
    n: the attacked size.
    best_t_star: largest broadcast time any strategy achieved.
    best_strategy: name of the strategy achieving it.
    leaderboard: every strategy's achieved time.
    upper: the Theorem 3.1 upper bound at this n.
    lower: the lower-bound formula at this n.
    """

    n: int
    best_t_star: int
    best_strategy: str
    leaderboard: Dict[str, int] = field(default_factory=dict)
    upper: int = 0
    lower: int = 0

    @property
    def falsified(self) -> bool:
        """True would mean Theorem 3.1 is violated (never observed)."""
        return self.best_t_star > self.upper

    @property
    def meets_lower_bound(self) -> bool:
        """Did some strategy witness the lower-bound formula?"""
        return self.best_t_star >= self.lower

    @property
    def headroom(self) -> int:
        """Rounds between the best attack and the upper bound."""
        return self.upper - self.best_t_star


def falsification_campaign(
    n: int,
    random_seeds: int = 5,
    annealing_iterations: int = 500,
    include_exhaustive: bool = True,
) -> CampaignResult:
    """Attack Theorem 3.1's upper bound at one ``n`` with everything.

    Raises
    ------
    AdversaryError
        If any strategy exceeds the upper bound (i.e. the campaign
        "succeeds") -- which indicates a model bug, never silently.
    """
    validate_node_count(n)
    if n < 2:
        raise AdversaryError("falsification needs n >= 2")

    from repro.adversaries.annealing import anneal_sequence
    from repro.adversaries.greedy import ExhaustiveGreedyAdversary
    from repro.adversaries.oblivious import RandomTreeAdversary
    from repro.adversaries.zeiner import portfolio

    leaderboard: Dict[str, int] = {}

    for adv in portfolio(n, include_search=True):
        leaderboard[adv.name] = run_adversary(adv, n).t_star

    for seed in range(random_seeds):
        adv = RandomTreeAdversary(n, seed=1000 + seed)
        leaderboard[f"random[seed={1000 + seed}]"] = run_adversary(adv, n).t_star

    annealed = anneal_sequence(n, iterations=annealing_iterations, seed=0)
    leaderboard["annealing"] = annealed.best_t_star

    if include_exhaustive and n <= ExhaustiveGreedyAdversary.MAX_N:
        adv = ExhaustiveGreedyAdversary(n)
        leaderboard[adv.name] = run_adversary(adv, n).t_star

    best_strategy = max(leaderboard, key=lambda k: leaderboard[k])
    result = CampaignResult(
        n=n,
        best_t_star=leaderboard[best_strategy],
        best_strategy=best_strategy,
        leaderboard=leaderboard,
        upper=upper_bound(n),
        lower=lower_bound(n),
    )
    if result.falsified:
        raise AdversaryError(
            f"Theorem 3.1 upper bound exceeded at n={n}: "
            f"{best_strategy} achieved {result.best_t_star} > {result.upper}. "
            "This indicates a model implementation bug."
        )
    return result


def measured_gap(ns: List[int], **campaign_kwargs) -> List[CampaignResult]:
    """Run campaigns over several ``n`` (the open-gap picture)."""
    return [falsification_campaign(n, **campaign_kwargs) for n in ns]
