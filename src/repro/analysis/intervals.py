"""Cyclic-interval structure of reach sets.

The exact solver's optimal adversary lines share a striking invariant:
every reach set stays a *cyclic interval* -- a set of the form
``{a, a+1, ..., b} (mod n)``.  The cyclic chain-fan adversary was designed
around this observation, and this module makes the invariant checkable:

* :class:`CyclicInterval` -- normalized arc representation;
* :func:`as_cyclic_interval` -- recognize a set as an arc (or None);
* :func:`state_intervals` / :func:`state_is_interval_structured` --
  per-state recognition;
* :func:`interval_preservation_trace` -- run an adversary and report when
  (if ever) the interval structure breaks.

The interval lens also explains the stalling calculus: under a rotated
*forward* cyclic path starting at ``s``, an arc grows at its right end
unless that end is ``s − 1``; under a *backward* path, at its left end
unless that end is ``s + 1``.  Chain-fan trees mix the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, List, Optional, Sequence

from repro.core.state import BroadcastState
from repro.types import AdversaryProtocol, validate_node_count


@dataclass(frozen=True)
class CyclicInterval:
    """A nonempty arc ``{start, start+1, ..., start+length-1} (mod n)``.

    Normalization: a full arc (``length == n``) uses ``start = 0``;
    otherwise ``start`` is the unique element whose predecessor is absent.
    """

    n: int
    start: int
    length: int

    def __post_init__(self) -> None:
        validate_node_count(self.n)
        if not 1 <= self.length <= self.n:
            raise ValueError(f"arc length {self.length} invalid for n={self.n}")
        if not 0 <= self.start < self.n:
            raise ValueError(f"arc start {self.start} out of range for n={self.n}")
        if self.length == self.n and self.start != 0:
            raise ValueError("full arcs must be normalized to start=0")

    @property
    def end(self) -> int:
        """The last element of the arc (inclusive)."""
        return (self.start + self.length - 1) % self.n

    def members(self) -> frozenset:
        """The arc as a set of nodes."""
        return frozenset((self.start + i) % self.n for i in range(self.length))

    def contains(self, v: int) -> bool:
        """Membership test without materializing the set."""
        offset = (v - self.start) % self.n
        return offset < self.length

    def extend_right(self) -> "CyclicInterval":
        """The arc grown by one at its right end (saturates at full)."""
        if self.length == self.n:
            return self
        new_len = self.length + 1
        if new_len == self.n:
            return CyclicInterval(self.n, 0, self.n)
        return CyclicInterval(self.n, self.start, new_len)

    def extend_left(self) -> "CyclicInterval":
        """The arc grown by one at its left end (saturates at full)."""
        if self.length == self.n:
            return self
        new_len = self.length + 1
        if new_len == self.n:
            return CyclicInterval(self.n, 0, self.n)
        return CyclicInterval(self.n, (self.start - 1) % self.n, new_len)

    def is_full(self) -> bool:
        """True iff the arc covers every node (a broadcaster's reach)."""
        return self.length == self.n

    def __str__(self) -> str:
        return f"[{self.start}..{self.end}]/{self.n}(len={self.length})"


def as_cyclic_interval(nodes: AbstractSet[int], n: int) -> Optional[CyclicInterval]:
    """Recognize ``nodes`` as a cyclic interval over ``[n]``.

    Returns the normalized :class:`CyclicInterval`, or ``None`` if the set
    is empty or not an arc.
    """
    validate_node_count(n)
    size = len(nodes)
    if size == 0:
        return None
    if size == n:
        return CyclicInterval(n, 0, n)
    member = [False] * n
    for v in nodes:
        if not 0 <= v < n:
            raise ValueError(f"node {v} out of range for n={n}")
        member[v] = True
    # An arc of size < n has exactly one "start": member whose predecessor
    # is not a member.
    starts = [v for v in range(n) if member[v] and not member[(v - 1) % n]]
    if len(starts) != 1:
        return None
    start = starts[0]
    if all(member[(start + i) % n] for i in range(size)):
        return CyclicInterval(n, start, size)
    return None


def state_intervals(state: BroadcastState) -> List[Optional[CyclicInterval]]:
    """Recognize every reach set of a state as an arc (None where not)."""
    return [as_cyclic_interval(state.reach_set(x), state.n) for x in range(state.n)]


def state_is_interval_structured(state: BroadcastState) -> bool:
    """True iff every reach set is a cyclic interval."""
    return all(arc is not None for arc in state_intervals(state))


@dataclass
class IntervalTraceEntry:
    """One round of an interval-preservation trace."""

    round_index: int
    structured: bool
    arcs: List[Optional[CyclicInterval]]


def interval_preservation_trace(
    adversary: AdversaryProtocol,
    n: int,
    max_rounds: Optional[int] = None,
) -> List[IntervalTraceEntry]:
    """Run ``adversary`` and record the interval structure each round.

    Used to validate the cyclic chain-fan adversary's design claim: the
    trace entries should all have ``structured=True``.
    """
    from repro.core.bounds import trivial_upper_bound

    validate_node_count(n)
    cap = max_rounds if max_rounds is not None else trivial_upper_bound(n)
    adversary.reset()
    state = BroadcastState.initial(n)
    trace: List[IntervalTraceEntry] = []
    t = 0
    while not state.is_broadcast_complete() and t < cap:
        t += 1
        tree = adversary.next_tree(state, t)
        state.apply_tree_inplace(tree)
        arcs = state_intervals(state)
        trace.append(
            IntervalTraceEntry(
                round_index=t,
                structured=all(a is not None for a in arcs),
                arcs=arcs,
            )
        )
    return trace


def first_structure_break(trace: Sequence[IntervalTraceEntry]) -> Optional[int]:
    """The first round whose state is not interval-structured, if any."""
    for entry in trace:
        if not entry.structured:
            return entry.round_index
    return None
