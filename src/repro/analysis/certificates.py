"""Certificates: independent validation of claimed results.

Search adversaries and the exact solver output broadcast times and witness
sequences; before a number lands in EXPERIMENTS.md it is re-validated here
from scratch (fresh state, plain engine, no shared code paths with the
search that produced it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.broadcast import run_adversary, run_sequence
from repro.core.theorem import sandwich
from repro.errors import AdversaryError
from repro.trees.rooted_tree import RootedTree
from repro.types import AdversaryProtocol


@dataclass(frozen=True)
class Certificate:
    """A validated broadcast-time claim.

    Attributes
    ----------
    n: number of processes.
    t_star: the validated broadcast time.
    respects_upper_bound: Theorem 3.1 upper bound holds (must always).
    meets_lower_bound: the run achieves the Theorem 3.1 lower-bound
        formula (only expected of strong adversaries).
    """

    n: int
    t_star: int
    respects_upper_bound: bool
    meets_lower_bound: bool


def certify_sequence(
    trees: Sequence[RootedTree], claimed_t_star: int, n: Optional[int] = None
) -> Certificate:
    """Validate that a tree sequence has exactly the claimed ``t*``.

    Raises
    ------
    AdversaryError
        If the sequence completes at a different round (earlier or later),
        or never completes.
    """
    if n is None:
        if not trees:
            raise AdversaryError("cannot certify an empty sequence")
        n = trees[0].n
    result = run_sequence(trees, n=n, stop_at_broadcast=True)
    if result.t_star != claimed_t_star:
        raise AdversaryError(
            f"claimed t*={claimed_t_star} but the sequence completes at "
            f"{result.t_star}"
        )
    report = sandwich(n, result.t_star)
    return Certificate(
        n=n,
        t_star=result.t_star,
        respects_upper_bound=report.upper_bound_respected,
        meets_lower_bound=report.meets_lower_bound,
    )


def certify_adversary_run(adversary: AdversaryProtocol, n: int) -> Certificate:
    """Run an adversary fresh and certify the outcome against Theorem 3.1."""
    result = run_adversary(adversary, n)
    assert result.t_star is not None
    report = sandwich(n, result.t_star)
    if not report.upper_bound_respected:
        raise AdversaryError(
            f"adversary violated the Theorem 3.1 upper bound: "
            f"t*={result.t_star} > {report.upper}; either the theorem or "
            "the model implementation is wrong"
        )
    return Certificate(
        n=n,
        t_star=result.t_star,
        respects_upper_bound=True,
        meets_lower_bound=report.meets_lower_bound,
    )


def certify_lower_bound_witness(
    adversary: AdversaryProtocol, n: int
) -> Certificate:
    """Certify that an adversary witnesses the lower-bound formula.

    Like :func:`certify_adversary_run` but additionally requires
    ``t* >= ⌈(3n−1)/2⌉ − 2``; used for
    :class:`~repro.adversaries.zeiner.CyclicFamilyAdversary` claims.
    """
    cert = certify_adversary_run(adversary, n)
    if not cert.meets_lower_bound:
        raise AdversaryError(
            f"adversary does not witness the lower bound at n={n}: "
            f"t*={cert.t_star} < formula"
        )
    return cert
