"""Analysis and reporting utilities.

Executable versions of the paper's analytical lens (matrix evolution,
stalling structure) plus the sweep/table machinery the benchmarks use:

* :mod:`~repro.analysis.evolution` -- round-by-round matrix evolution
  reports (the paper's Section 3 perspective);
* :mod:`~repro.analysis.stalling` -- who stalls, why, and the executable
  lemmas (root-always-gains, stalling characterization);
* :mod:`~repro.analysis.certificates` -- validation of claimed broadcast
  times and adversary traces;
* :mod:`~repro.analysis.sweep` -- parameter sweeps over ``n`` and
  adversaries;
* :mod:`~repro.analysis.tables` -- plain-text / markdown table rendering
  used by benchmarks and the CLI;
* :mod:`~repro.analysis.stats` -- small statistics helpers (linear fits
  for "is it linear in n?" checks).
"""

from repro.analysis.evolution import EvolutionReport, evolution_report
from repro.analysis.stalling import StallReport, stall_report, verify_lemmas_on_round
from repro.analysis.certificates import (
    certify_adversary_run,
    certify_lower_bound_witness,
    certify_sequence,
)
from repro.analysis.sweep import SweepResult, sweep_adversaries, sweep_n
from repro.analysis.tables import format_markdown_table, format_table
from repro.analysis.stats import linear_fit, LinearFit
from repro.analysis.intervals import (
    CyclicInterval,
    as_cyclic_interval,
    interval_preservation_trace,
    state_intervals,
    state_is_interval_structured,
)
from repro.analysis.plots import bar_chart, sparkline, trajectory_panel
from repro.analysis.falsification import (
    CampaignResult,
    falsification_campaign,
    measured_gap,
)

__all__ = [
    "EvolutionReport",
    "evolution_report",
    "StallReport",
    "stall_report",
    "verify_lemmas_on_round",
    "certify_sequence",
    "certify_adversary_run",
    "certify_lower_bound_witness",
    "SweepResult",
    "sweep_n",
    "sweep_adversaries",
    "format_table",
    "format_markdown_table",
    "linear_fit",
    "LinearFit",
    "CyclicInterval",
    "as_cyclic_interval",
    "state_intervals",
    "state_is_interval_structured",
    "interval_preservation_trace",
    "sparkline",
    "bar_chart",
    "trajectory_panel",
    "CampaignResult",
    "falsification_campaign",
    "measured_gap",
]
