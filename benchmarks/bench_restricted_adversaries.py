"""E5 -- Figure 1's restricted rows: k leaves / k inner nodes => O(kn).

Zeiner et al. [14] prove linearity for adversaries restricted to trees
with ``k`` leaves or ``k`` inner nodes per round.  We sweep ``n`` for
``k ∈ {2, 3, 4}`` with the adaptive restricted adversaries and fit the
measured broadcast times: the claim reproduced is *linearity in n for
fixed k* (R² ≈ 1 on a line fit) with slope well under the ``2k``
convention used for the figure's ``O(kn)`` rows.
"""

from __future__ import annotations

import pytest

from repro.adversaries.restricted import KInnerAdversary, KLeafAdversary
from repro.analysis.stats import linear_fit
from repro.analysis.tables import format_table
from repro.core.bounds import k_inner_upper_bound, k_leaves_upper_bound
from repro.core.broadcast import run_adversary

NS = [6, 9, 12, 15, 18, 24, 30]
KS = [2, 3, 4]


@pytest.mark.table
def test_print_restricted_table(capsys):
    rows = []
    for k in KS:
        leaf_ts = [run_adversary(KLeafAdversary(n, k), n).t_star for n in NS]
        inner_ts = [run_adversary(KInnerAdversary(n, k), n).t_star for n in NS]
        leaf_fit = linear_fit(NS, leaf_ts)
        inner_fit = linear_fit(NS, inner_ts)
        rows.append(
            (
                f"k={k} leaves",
                *leaf_ts,
                f"{leaf_fit.slope:.2f}",
                f"{leaf_fit.r_squared:.3f}",
            )
        )
        rows.append(
            (
                f"k={k} inner",
                *inner_ts,
                f"{inner_fit.slope:.2f}",
                f"{inner_fit.r_squared:.3f}",
            )
        )
        # Linearity claims.
        assert leaf_fit.r_squared > 0.9
        assert inner_fit.r_squared > 0.9
        for n, t in zip(NS, leaf_ts):
            assert t <= k_leaves_upper_bound(n, k)
        for n, t in zip(NS, inner_ts):
            assert t <= k_inner_upper_bound(n, k)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["family", *[f"n={n}" for n in NS], "slope", "R^2"],
                rows,
                title="E5: restricted adversaries stay linear (O(kn) rows)",
            )
        )


@pytest.mark.parametrize("k", [2, 4])
def test_k_leaf_run_speed(benchmark, k):
    n = 24
    result = benchmark(lambda: run_adversary(KLeafAdversary(n, k), n))
    assert result.t_star is not None
