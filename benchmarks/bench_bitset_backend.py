"""Backend ablation: dense boolean matrices vs word-packed bitsets.

The tentpole claim quantified: a full broadcast run (compose + completion
check per round) through the ``bitset`` backend must beat ``dense`` by at
least 4x at n = 1024 (measured ~65x on the reference container, because a
round touches ``n * n/64`` words instead of ``n * n`` bools).  Also
benchmarked: the batched multi-run engine against B sequential runs, the
batched candidate-scoring kernel behind the greedy searcher, and the
sharded multiprocess sweep engine against the sequential sweep (>= 2x
wall-clock at n = 256 with 4 workers on a >= 4-core host).
"""

from __future__ import annotations

import time
from functools import partial

import numpy as np
import pytest

from repro.adversaries.greedy import GreedyDelayAdversary
from repro.analysis.sweep import sweep_adversaries
from repro.analysis.tables import format_table
from repro.core.backend import get_backend
from repro.core.broadcast import run_sequence
from repro.engine.batch import BatchRunner, run_sequences_batch
from repro.engine.shard import ShardedSweepRunner, usable_cpus
from repro.trees.generators import path, random_tree

BACKENDS = ("dense", "bitset")


def _static_path_run(n: int, backend: str):
    trees = [path(n)] * (n - 1)
    return run_sequence(trees, n=n, backend=backend)


def _time(fn, repeats: int = 2):
    """(best seconds, last result) over ``repeats`` calls."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("n", [64, 256])
def test_full_run_kernel(benchmark, n, backend):
    """Per-backend timing of a full static-path broadcast run."""
    result = benchmark(lambda: _static_path_run(n, backend))
    assert result.t_star == n - 1


@pytest.mark.table
@pytest.mark.parametrize("n", [64, 256, 1024])
def test_backend_speedup_table(n, report_sink):
    """Dense vs bitset on a full run; asserts the >= 4x bar at n = 1024."""
    times = {}
    for backend in BACKENDS:
        times[backend], result = _time(lambda b=backend: _static_path_run(n, b))
        assert result.t_star == n - 1
    speedup = times["dense"] / times["bitset"]
    rows = [
        (n, f"{times['dense'] * 1e3:.2f}", f"{times['bitset'] * 1e3:.2f}",
         f"{speedup:.1f}x"),
    ]
    table = format_table(
        ["n", "dense ms", "bitset ms", "speedup"],
        rows,
        title=f"Full broadcast run, n={n}",
    )
    print(table)
    report_sink.append(table)
    if n >= 1024:
        assert speedup >= 4.0, (
            f"bitset backend must be >= 4x dense at n={n}, got {speedup:.1f}x"
        )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("n", [64, 256])
def test_batch_vs_sequential(benchmark, n, backend):
    """B=32 random-sequence runs: one BatchRunner vs a per-run loop."""
    rng = np.random.default_rng(0)
    seqs = [
        [random_tree(n, rng) for _ in range(2 * n)] for _ in range(32)
    ]
    batched = benchmark(lambda: run_sequences_batch(seqs, n=n, backend=backend))
    sequential = [
        run_sequence(s, n=n, backend=backend).t_star for s in seqs
    ]
    assert batched == sequential


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("n", [64, 128])
def test_greedy_batched_scoring(benchmark, n, backend):
    """One greedy round (pool scoring via the batched kernel)."""
    bk = get_backend(backend)
    adv = GreedyDelayAdversary(n, seed=0)
    from repro.core.state import BroadcastState

    state = BroadcastState.initial(n, backend=bk)
    rng = np.random.default_rng(1)
    for _ in range(n // 2):
        state.apply_tree_inplace(random_tree(n, rng))
    tree = benchmark(lambda: adv.next_tree(state, 1))
    assert tree.n == n


def _sweep_grid(n: int):
    """A multi-adversary grid heavy enough to amortize worker startup.

    Eight independent greedy searchers (distinct pools via distinct
    seeds): each one is seconds of work at n = 256, every point is
    embarrassingly parallel, and 8 points over 4 workers balance into
    two full waves, keeping the ideal ceiling at 4x while making pool
    startup a small fraction of the measured window.
    """
    return {
        f"GreedyDelay[s{seed}]": partial(GreedyDelayAdversary, seed=seed)
        for seed in range(8)
    }, [n]


@pytest.mark.table
@pytest.mark.parametrize("n", [32, 256])
def test_sharded_sweep_speedup(n, report_sink):
    """Sharded (4 workers) vs sequential sweep: identical points, and
    >= 2x wall-clock at n >= 256 when the host has >= 4 usable cores."""
    workers = 4
    factories, ns = _sweep_grid(n)
    # Best-of-2 on both sides: a one-shot wall-clock sample on a shared
    # CI runner is too noisy to gate on (pool startup included each time).
    t_seq, seq = _time(lambda: sweep_adversaries(factories, ns), repeats=2)
    runner = ShardedSweepRunner(workers=workers)
    t_shard, sharded = _time(
        lambda: runner.sweep_adversaries(factories, ns), repeats=2
    )
    assert sharded == seq, "sharded sweep must be bit-identical to sequential"
    speedup = t_seq / t_shard
    table = format_table(
        ["n", "points", "sequential s", f"{workers} workers s", "speedup"],
        [(n, len(seq.points), f"{t_seq:.2f}", f"{t_shard:.2f}", f"{speedup:.1f}x")],
        title=f"Sharded vs sequential sweep, n={n}",
    )
    print(table)
    report_sink.append(table)
    cpus = usable_cpus()
    if n >= 256:
        if cpus < workers:
            pytest.skip(
                f"speedup bar needs >= {workers} usable cores, host has {cpus}"
            )
        assert speedup >= 2.0, (
            f"sharded sweep must be >= 2x sequential at n={n} with "
            f"{workers} workers, got {speedup:.1f}x"
        )


@pytest.mark.table
def test_batch_runner_smoke(report_sink):
    """Tiny end-to-end batch: stacked tensors track t* for every run."""
    n, B = 16, 8
    rng = np.random.default_rng(2)
    runner = BatchRunner(n, B, backend="bitset")
    seqs = [[random_tree(n, rng) for _ in range(3 * n)] for _ in range(B)]
    for i in range(3 * n):
        if runner.all_complete:
            break
        runner.step([s[i] for s in seqs])
    assert runner.all_complete
    rows = [(b, runner.t_star(b), len(runner.broadcasters(b))) for b in range(B)]
    table = format_table(
        ["run", "t*", "#broadcasters"], rows, title="BatchRunner smoke (n=16, B=8)"
    )
    print(table)
    report_sink.append(table)
