"""E4 -- Section 2's quoted baselines.

* a static path yields exactly ``t* = n − 1``;
* at least one new product-graph edge appears per round (so ``t* <= n²``);
* a static star finishes in one round (the other extreme).

The benchmark times the matrix engine's core kernel: one full static-path
run at various ``n`` (O(n²) per round, n − 1 rounds).
"""

from __future__ import annotations

import pytest

from repro.adversaries.oblivious import StaticTreeAdversary
from repro.analysis.evolution import evolution_report
from repro.analysis.tables import format_table
from repro.core.broadcast import run_sequence
from repro.trees.generators import binary_tree, path, star

NS = [8, 16, 32, 64, 128, 256]


@pytest.mark.table
def test_print_static_baseline_table(capsys):
    rows = []
    for n in NS:
        path_t = run_sequence([path(n)] * (n * n), n).t_star
        star_t = run_sequence([star(n)], n).t_star
        tree_t = run_sequence([binary_tree(n)] * n, n).t_star
        report = evolution_report([path(n)] * (n - 1), n)
        rows.append(
            (
                n,
                path_t,
                n - 1,
                star_t,
                tree_t,
                min(report.new_edge_trajectory),
            )
        )
    with capsys.disabled():
        print()
        print(
            format_table(
                [
                    "n",
                    "static path t*",
                    "paper says n-1",
                    "static star t*",
                    "static binary t*",
                    "min new edges/round",
                ],
                rows,
                title="E4: Section 2 baselines",
            )
        )
    for n, path_t, expected, star_t, tree_t, min_edges in rows:
        assert path_t == expected
        assert star_t == 1
        assert min_edges >= 1
        # A static tree broadcasts in its height.
        assert tree_t == binary_tree(n).height


@pytest.mark.parametrize("n", [64, 256, 1024])
def test_static_path_run_speed(benchmark, n):
    """Matrix-engine kernel: full n-1 round static-path run."""
    trees = [path(n)] * (n - 1)
    result = benchmark(lambda: run_sequence(trees, n))
    assert result.t_star == n - 1
