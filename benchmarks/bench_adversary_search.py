"""E8b -- adversary-search ablation.

Quantifies the design choices behind the lower-bound reproduction:

* **candidate family**: cyclic chain-fan family vs linear-order pools vs
  random pools -- only the cyclic family reaches the LB formula;
* **score**: quadratic potential vs the naive max-row score;
* **stride**: the m-subsampling knob of the cyclic family.

The benchmark times one full run of each searcher at a common ``n``.
"""

from __future__ import annotations

import pytest

from repro.adversaries.beam import BeamSearchAdversary
from repro.adversaries.greedy import GreedyDelayAdversary
from repro.adversaries.paths import SortedPathAdversary, StaticPathAdversary
from repro.adversaries.zeiner import CyclicFamilyAdversary, RunnerAdversary
from repro.analysis.tables import format_table
from repro.core.bounds import lower_bound, upper_bound
from repro.core.broadcast import run_adversary

N = 12


@pytest.mark.table
def test_print_search_ablation_table(capsys):
    contenders = [
        ("static path (baseline)", StaticPathAdversary(N)),
        ("sorted path", SortedPathAdversary(N)),
        ("runner", RunnerAdversary(N)),
        ("pool greedy", GreedyDelayAdversary(N)),
        ("pool beam d=2 w=6", BeamSearchAdversary(N, depth=2, width=6)),
        ("cyclic family stride=4", CyclicFamilyAdversary(N, m_stride=4)),
        ("cyclic family stride=2", CyclicFamilyAdversary(N, m_stride=2)),
        ("cyclic family stride=1", CyclicFamilyAdversary(N, m_stride=1)),
    ]
    rows = []
    results = {}
    for name, adv in contenders:
        t = run_adversary(adv, N).t_star
        results[name] = t
        rows.append((name, t, f"{t / N:.3f}", "yes" if t >= lower_bound(N) else "no"))
    with capsys.disabled():
        print()
        print(
            format_table(
                ["adversary", f"t* (n={N})", "t*/n", "meets LB formula"],
                rows,
                title=(
                    "E8b: search ablation -- only the cyclic chain-fan family "
                    f"reaches LB={lower_bound(N)} (UB={upper_bound(N)})"
                ),
            )
        )
    assert results["cyclic family stride=1"] == lower_bound(N)
    # The linear-order heuristics stay strictly below the formula.
    assert results["sorted path"] < lower_bound(N)
    assert results["runner"] < lower_bound(N)
    # Everything respects the theorem.
    assert all(t <= upper_bound(N) for t in results.values())


@pytest.mark.parametrize(
    "factory,label",
    [
        (lambda: CyclicFamilyAdversary(N), "cyclic"),
        (lambda: GreedyDelayAdversary(N), "greedy"),
        (lambda: BeamSearchAdversary(N, depth=2, width=6), "beam"),
    ],
    ids=["cyclic", "greedy", "beam"],
)
def test_search_adversary_speed(benchmark, factory, label):
    adv = factory()
    result = benchmark(lambda: run_adversary(adv, N))
    assert result.t_star is not None
