"""Simulation-service throughput: HTTP requests/sec, cold vs warm cache.

End-to-end measurement through the real stack -- HTTP parsing, spec
canonicalization + digesting, scheduler dispatch, executor run, JSON
response -- for a batch of distinct specs submitted cold (every digest
computed) and then warm (every digest answered from the content-addressed
cache).

The asserted bar: at n = 256 under the bitset backend, a warm-cache
lookup must be >= 10x faster than recomputation.  The workload is the
adaptive sorted-path family (no compiled-schedule shortcut: each round
re-sorts by reach sizes and builds a fresh path), so "recompute" means
real per-round work while "warm" is one digest lookup per request.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analysis.tables import format_table
from repro.service.client import ServiceClient
from repro.service.server import ServiceServer

#: Measurements are persisted here (merged key-by-key) so CI can archive
#: service throughput next to the printed tables.
RESULTS_PATH = Path(__file__).with_name("BENCH_service.json")


def _persist(key: str, payload: dict) -> None:
    """Merge one measurement into ``BENCH_service.json`` (best effort)."""
    try:
        existing = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        existing = {}
    if not isinstance(existing, dict):
        existing = {}
    existing[key] = payload
    RESULTS_PATH.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

#: Four distinct digests per n: the sorted-path parameter square.
SPEC_PARAMS = [
    {"ascending": True, "tie_break": "index"},
    {"ascending": True, "tie_break": "column"},
    {"ascending": False, "tie_break": "index"},
    {"ascending": False, "tie_break": "column"},
]


def _specs(n: int):
    return [
        {"adversary": "sorted-path", "n": n, "params": params, "backend": "bitset"}
        for params in SPEC_PARAMS
    ]


def _submit_all(client: ServiceClient, specs) -> float:
    """Submit every spec, wait for all, return elapsed wall seconds."""
    t0 = time.perf_counter()
    job_ids = [client.submit_run(spec)["job_id"] for spec in specs]
    for job_id in job_ids:
        doc = client.wait(job_id, timeout=600)
        assert doc["status"] == "done", doc["error"]
    return time.perf_counter() - t0


@pytest.mark.table
@pytest.mark.parametrize("n", [64, 256])
def test_http_requests_per_second_cold_vs_warm(n, capsys):
    """Cold vs warm requests/sec through the API; >= 10x bar at n = 256."""
    with ServiceServer() as server:
        client = ServiceClient.from_url(server.url)
        specs = _specs(n)
        t_cold = _submit_all(client, specs)
        t_warm = min(_submit_all(client, specs) for _ in range(3))
        metrics = client.metrics()
    assert metrics["computations"] == len(specs)  # warm passes computed nothing
    speedup = t_cold / max(t_warm, 1e-9)
    _persist(
        f"http_cold_vs_warm_n{n}",
        {
            "n": n,
            "requests": len(specs),
            "cold_req_per_s": len(specs) / t_cold,
            "warm_req_per_s": len(specs) / t_warm,
            "warm_speedup": speedup,
        },
    )
    rows = [
        (
            n,
            len(specs),
            f"{len(specs) / t_cold:.1f}",
            f"{len(specs) / t_warm:.1f}",
            f"{speedup:.1f}x",
        )
    ]
    with capsys.disabled():
        print()
        print(
            format_table(
                ["n", "requests", "cold req/s", "warm req/s", "warm speedup"],
                rows,
                title=(
                    "Service throughput: cold (compute) vs warm "
                    "(content-addressed cache), bitset backend"
                ),
            )
        )
    if n >= 256:
        assert speedup >= 10.0, (
            f"warm-cache lookups only {speedup:.1f}x faster than recomputation "
            f"at n={n} (bitset); expected >= 10x"
        )


@pytest.mark.table
def test_experiment_task_graph_cold_vs_warm(capsys):
    """E1-E8 as task graphs: cold compute vs warm content-addressed rerun.

    The asserted bars: every warm rerun computes zero tasks (zero
    simulation runs in particular) while rendering a byte-identical
    table, and the warm pass is >= 5x faster than the cold pass for the
    run-heavy experiments (E2's cyclic grid dominates its cold time).
    """
    from repro.experiments import run_experiment
    from repro.service.cache import ResultCache

    cache = ResultCache()
    rows = []
    speedups = {}
    for eid in [f"E{i}" for i in range(1, 9)]:
        t0 = time.perf_counter()
        cold_table, cold = run_experiment(eid, cache=cache)
        t_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm_table, warm = run_experiment(eid, cache=cache)
        t_warm = time.perf_counter() - t0
        assert warm.stats["computed"] == 0, f"{eid} warm rerun computed tasks"
        assert warm.stats["runs_computed"] == 0
        assert warm_table.render() == cold_table.render()
        speedups[eid] = t_cold / max(t_warm, 1e-9)
        _persist(
            f"experiment_{eid}_cold_vs_warm",
            {
                "tasks": cold.stats["tasks"],
                "runs_computed": cold.stats["runs_computed"],
                "cold_s": t_cold,
                "warm_s": t_warm,
                "warm_speedup": speedups[eid],
            },
        )
        rows.append(
            (
                eid,
                cold.stats["tasks"],
                cold.stats["runs_computed"],
                f"{t_cold * 1e3:.1f}ms",
                f"{t_warm * 1e3:.1f}ms",
                f"{speedups[eid]:.1f}x",
            )
        )
    with capsys.disabled():
        print()
        print(
            format_table(
                ["experiment", "tasks", "runs", "cold", "warm", "speedup"],
                rows,
                title="E1-E8 through the task API: cold vs warm cache",
            )
        )
    assert speedups["E2"] >= 5.0, (
        f"warm E2 rerun only {speedups['E2']:.1f}x faster; expected >= 5x"
    )


@pytest.mark.parametrize("n", [64])
def test_warm_submit_latency(benchmark, n):
    """pytest-benchmark probe: one fully-warm submit+wait round trip."""
    with ServiceServer() as server:
        client = ServiceClient.from_url(server.url)
        spec = {"adversary": "static-path", "n": n, "backend": "bitset"}
        client.wait(client.submit_run(spec)["job_id"], timeout=60)

        def warm_round_trip():
            doc = client.submit_run(spec)
            assert doc["status"] == "done" and doc["cached"]
            return doc

        benchmark(warm_round_trip)
