"""E1 -- Figure 1: previously known and new upper bounds.

Regenerates the paper's only figure as a table: every bound formula
evaluated over a range of ``n``, plus the crossover points where the new
linear bound overtakes the older ones.  The benchmark component measures
the bound-evaluation kernels (trivial, but it anchors the harness) and,
more meaningfully, the full Figure 1 table construction.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core import bounds as B

NS = [8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
K = 3


def build_figure1_rows():
    """The figure's rows: one per n, one column per bound."""
    rows = []
    for n in NS:
        rows.append(
            (
                n,
                B.trivial_upper_bound(n),
                B.nlogn_upper_bound(n),
                B.fugger_nowak_winkler_upper_bound(n),
                B.upper_bound(n),
                B.k_leaves_upper_bound(n, K),
                B.k_inner_upper_bound(n, K),
                B.lower_bound(n),
            )
        )
    return rows


@pytest.mark.table
def test_print_figure1_table(capsys):
    """Emit the Figure 1 table (shape check: the new bound wins for n >= 6)."""
    rows = build_figure1_rows()
    headers = [
        "n",
        "trivial n^2",
        "n log n [14]",
        "2n loglog n + 2n [9]",
        "(1+sqrt2)n [new]",
        f"2kn (k={K} leaves)",
        f"2kn (k={K} inner)",
        "LB [14]",
    ]
    with capsys.disabled():
        print()
        print(format_table(headers, rows, title="E1 / Figure 1: bounds overview"))
        print(
            f"crossover new < n log n from n = {B.crossover_nlogn_vs_linear()}; "
            f"new < [9] from n = {B.crossover_loglog_vs_linear()}"
        )
    # Shape assertions: the paper's ordering story.  The new bound beats
    # everything from tiny n; [9] overtakes n log n only asymptotically
    # (their crossover sits at n = 256 with our additive constant).
    for n, trivial, nlogn, loglog, new, _, _, lb in rows:
        if n >= 8:
            assert new < loglog and new < nlogn and new < trivial
        if n >= 512:
            assert loglog < nlogn < trivial
        assert lb <= new


def bench_all_bounds(n: int) -> dict:
    return B.all_bounds(n, k=K)


def test_bound_evaluation_speed(benchmark):
    """Kernel timing: evaluating the full bound set at n = 4096."""
    result = benchmark(bench_all_bounds, 4096)
    assert result["new_linear"] == B.upper_bound(4096)
