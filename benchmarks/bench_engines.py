"""E8a -- engine ablation: matrix engine vs process-level simulator.

Both engines implement the identical model (property-tested); this
ablation quantifies the cost of the process-level view and of the generic
boolean matmul versus the O(n²) tree fast path.  The design choice
justified here: the matrix engine with the column-gather composition is
the default everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core import matrix as M
from repro.core.broadcast import run_sequence
from repro.engine.simulator import HeardOfSimulator
from repro.trees.generators import path, random_tree


def _sequence(n: int, rounds: int, seed: int):
    rng = np.random.default_rng(seed)
    return [random_tree(n, rng) for _ in range(rounds)]


@pytest.mark.parametrize("n", [32, 128, 512])
def test_matrix_engine_speed(benchmark, n):
    trees = _sequence(n, rounds=16, seed=0)
    result = benchmark(lambda: run_sequence(trees, n, stop_at_broadcast=False))
    assert result.final_state.round_index == 16


@pytest.mark.parametrize("n", [32, 128])
def test_process_engine_speed(benchmark, n):
    trees = _sequence(n, rounds=16, seed=0)

    def run():
        sim = HeardOfSimulator(n)
        sim.run(trees, stop_at_broadcast=False)
        return sim

    sim = benchmark(run)
    assert sim.round_index == 16


@pytest.mark.parametrize("n", [64, 256])
def test_tree_fast_path_vs_generic_matmul(benchmark, n):
    """The composition ablation: fast path timing (generic checked equal)."""
    rng = np.random.default_rng(1)
    tree = random_tree(n, rng)
    reach = M.identity_matrix(n)
    for t in _sequence(n, 4, seed=2):
        reach = M.compose_with_tree(reach, t)

    fast = benchmark(lambda: M.compose_with_tree(reach, tree))
    generic = M.bool_product(reach, tree.to_adjacency())
    assert (fast == generic).all()


@pytest.mark.table
def test_print_engine_equivalence_note(capsys):
    """Record the equivalence + a small side-by-side timing table."""
    import time

    rows = []
    for n in (32, 128):
        trees = _sequence(n, rounds=16, seed=3)
        t0 = time.perf_counter()
        mat = run_sequence(trees, n, stop_at_broadcast=False)
        t_matrix = time.perf_counter() - t0
        t0 = time.perf_counter()
        sim = HeardOfSimulator(n)
        sim_t = sim.run(trees, stop_at_broadcast=False)
        t_sim = time.perf_counter() - t0
        assert mat.t_star == sim_t
        rows.append((n, f"{t_matrix * 1e3:.1f}ms", f"{t_sim * 1e3:.1f}ms",
                     f"{t_sim / max(t_matrix, 1e-9):.0f}x"))
    with capsys.disabled():
        print()
        print(
            format_table(
                ["n", "matrix engine", "process engine", "slowdown"],
                rows,
                title="E8a: engine ablation (identical results, different cost)",
            )
        )
