"""E8a -- engine ablations: matrix vs process engine; compiled vs tree loop.

Both engines implement the identical model (property-tested); this
ablation quantifies the cost of the process-level view and of the generic
boolean matmul versus the O(n²) tree fast path.  The design choice
justified here: the matrix engine with the column-gather composition is
the default everywhere.

The second ablation pins the unified execution layer
(:mod:`repro.engine.executor`): the compiled parent-schedule fast path
versus the per-round :class:`RootedTree` loop, over the static-path
family (static + rotated cyclic paths) at large ``n`` under the bitset
backend.  Schedules that rebuild a tree every round (the rotated path --
the general oblivious case) gain an order of magnitude; the family
aggregate is asserted >= 2x.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.adversaries.paths import RotatingPathAdversary, StaticPathAdversary
from repro.analysis.tables import format_table
from repro.core import matrix as M
from repro.core.backend import use_backend
from repro.core.broadcast import run_sequence
from repro.engine.executor import RunSpec, SequentialExecutor
from repro.engine.simulator import HeardOfSimulator
from repro.trees.generators import path, random_tree


def _sequence(n: int, rounds: int, seed: int):
    rng = np.random.default_rng(seed)
    return [random_tree(n, rng) for _ in range(rounds)]


@pytest.mark.parametrize("n", [32, 128, 512])
def test_matrix_engine_speed(benchmark, n):
    trees = _sequence(n, rounds=16, seed=0)
    result = benchmark(lambda: run_sequence(trees, n, stop_at_broadcast=False))
    assert result.final_state.round_index == 16


@pytest.mark.parametrize("n", [32, 128])
def test_process_engine_speed(benchmark, n):
    trees = _sequence(n, rounds=16, seed=0)

    def run():
        sim = HeardOfSimulator(n)
        sim.run(trees, stop_at_broadcast=False)
        return sim

    sim = benchmark(run)
    assert sim.round_index == 16


@pytest.mark.parametrize("n", [64, 256])
def test_tree_fast_path_vs_generic_matmul(benchmark, n):
    """The composition ablation: fast path timing (generic checked equal)."""
    rng = np.random.default_rng(1)
    tree = random_tree(n, rng)
    reach = M.identity_matrix(n)
    for t in _sequence(n, 4, seed=2):
        reach = M.compose_with_tree(reach, t)

    fast = benchmark(lambda: M.compose_with_tree(reach, tree))
    generic = M.bool_product(reach, tree.to_adjacency())
    assert (fast == generic).all()


#: The static-path family: oblivious path schedules the executors compile.
STATIC_PATH_FAMILY = [
    ("StaticPath", StaticPathAdversary),
    ("RotatingPath", lambda n: RotatingPathAdversary(n, shift=1)),
]


def _time_run(executor: SequentialExecutor, factory, n: int) -> float:
    t0 = time.perf_counter()
    report = executor.run(RunSpec(adversary=factory(n), n=n))
    elapsed = time.perf_counter() - t0
    assert report.t_star == n - 1  # every path-family member achieves n - 1
    return elapsed


@pytest.mark.parametrize("n", [128, 512])
def test_compiled_schedule_vs_tree_loop(n, capsys):
    """Compiled parent schedules vs per-round RootedTree construction.

    Under the bitset backend the compose kernel is cheap, so per-round
    tree construction dominates oblivious runs; compiling the schedule
    once must pay off >= 2x on the static-path family aggregate at
    n = 512 (measured ~5x: ~1.1x on the statically cached path, ~10x on
    the rotated path that would otherwise build a tree per round).
    """
    compiled_exec = SequentialExecutor()
    tree_exec = SequentialExecutor(use_compiled=False)
    rows = []
    compiled_total = tree_total = 0.0
    with use_backend("bitset"):
        for label, factory in STATIC_PATH_FAMILY:
            # Warm the schedule/row caches out of the timed region, as a
            # long-running sweep would.
            _time_run(compiled_exec, factory, n)
            t_compiled = min(_time_run(compiled_exec, factory, n) for _ in range(3))
            t_tree = min(_time_run(tree_exec, factory, n) for _ in range(3))
            compiled_total += t_compiled
            tree_total += t_tree
            rows.append(
                (
                    label,
                    n,
                    f"{t_tree * 1e3:.1f}ms",
                    f"{t_compiled * 1e3:.1f}ms",
                    f"{t_tree / max(t_compiled, 1e-9):.1f}x",
                )
            )
    family_speedup = tree_total / max(compiled_total, 1e-9)
    rows.append(
        (
            "family total",
            n,
            f"{tree_total * 1e3:.1f}ms",
            f"{compiled_total * 1e3:.1f}ms",
            f"{family_speedup:.1f}x",
        )
    )
    with capsys.disabled():
        print()
        print(
            format_table(
                ["adversary", "n", "tree loop", "compiled", "speedup"],
                rows,
                title=(
                    "E8b: compiled parent schedules vs per-round trees "
                    "(bitset backend)"
                ),
            )
        )
    if n >= 512:
        assert family_speedup >= 2.0, (
            f"compiled schedules only {family_speedup:.2f}x faster at n={n}; "
            "expected >= 2x on the static-path family under bitset"
        )


@pytest.mark.table
def test_print_engine_equivalence_note(capsys):
    """Record the equivalence + a small side-by-side timing table."""
    import time

    rows = []
    for n in (32, 128):
        trees = _sequence(n, rounds=16, seed=3)
        t0 = time.perf_counter()
        mat = run_sequence(trees, n, stop_at_broadcast=False)
        t_matrix = time.perf_counter() - t0
        t0 = time.perf_counter()
        sim = HeardOfSimulator(n)
        sim_t = sim.run(trees, stop_at_broadcast=False)
        t_sim = time.perf_counter() - t0
        assert mat.t_star == sim_t
        rows.append((n, f"{t_matrix * 1e3:.1f}ms", f"{t_sim * 1e3:.1f}ms",
                     f"{t_sim / max(t_matrix, 1e-9):.0f}x"))
    with capsys.disabled():
        print()
        print(
            format_table(
                ["n", "matrix engine", "process engine", "slowdown"],
                rows,
                title="E8a: engine ablation (identical results, different cost)",
            )
        )
