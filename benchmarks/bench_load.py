"""Load harness: hundreds of concurrent clients against a warm cache.

Drives a running service (or a self-hosted one, auth + rate limiting
enabled, when ``--url`` is omitted) with N client threads hammering
``POST /v1/runs`` over persistent keep-alive connections.  Every spec is
warmed first, so the measured ceiling is the serving path itself -- HTTP
parsing, auth, admission, digesting, cache lookup, JSON response --
not simulation time.

Exit status is the acceptance check: nonzero when any 5xx was observed,
when throughput was zero, or when ``--min-rps`` was not met.  Results
are merged into ``benchmarks/BENCH_load.json``.

Usage::

    python benchmarks/bench_load.py --quick          # CI smoke: 16 clients, 2s
    python benchmarks/bench_load.py                  # full: 200 clients, 10s
    python benchmarks/bench_load.py --url http://host:8642 --token TOKEN
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional
from urllib.parse import urlparse

REPO_SRC = Path(__file__).resolve().parents[1] / "src"
if str(REPO_SRC) not in sys.path:  # runnable without PYTHONPATH
    sys.path.insert(0, str(REPO_SRC))

from repro.analysis.tables import format_table  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

RESULTS_PATH = Path(__file__).with_name("BENCH_load.json")

#: Distinct warm digests the clients cycle through (static paths at a
#: few sizes: cheap to warm, four cache entries to spread lookups over).
WARM_NS = (16, 24, 32, 48)


class _Counters:
    """One thread's tallies, merged after the join (no shared locks)."""

    def __init__(self) -> None:
        self.statuses: Dict[int, int] = {}
        self.latencies: List[float] = []
        self.transport_errors = 0

    def record(self, status: int, latency: float) -> None:
        self.statuses[status] = self.statuses.get(status, 0) + 1
        self.latencies.append(latency)


def _client_loop(
    host: str,
    port: int,
    token: Optional[str],
    bodies: List[str],
    start: threading.Barrier,
    stop_at_holder: List[float],
    counters: _Counters,
) -> None:
    headers = {"Content-Type": "application/json"}
    if token:
        headers["Authorization"] = f"Bearer {token}"
    conn = http.client.HTTPConnection(host, port, timeout=30)
    i = 0
    start.wait()
    while time.perf_counter() < stop_at_holder[0]:
        t0 = time.perf_counter()
        try:
            conn.request("POST", "/v1/runs", body=bodies[i % len(bodies)], headers=headers)
            response = conn.getresponse()
            response.read()
        except (OSError, http.client.HTTPException):
            # Reconnect and keep going: a dropped keep-alive connection
            # (server restart, 429 with Connection: close) is not fatal.
            counters.transport_errors += 1
            conn.close()
            conn = http.client.HTTPConnection(host, port, timeout=30)
            continue
        counters.record(response.status, time.perf_counter() - t0)
        i += 1
    conn.close()


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def _persist(key: str, payload: dict, path: Path) -> None:
    try:
        existing = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        existing = {}
    if not isinstance(existing, dict):
        existing = {}
    existing[key] = payload
    path.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def run_load(
    url: str,
    token: Optional[str],
    clients: int,
    duration: float,
) -> dict:
    """Warm the cache, then hammer it; returns the measurement document."""
    parsed = urlparse(url)
    host, port = parsed.hostname or "127.0.0.1", parsed.port or 80
    specs = [{"adversary": "static-path", "n": n} for n in WARM_NS]

    warm = ServiceClient(host, port, token=token, retry_rate_limited=10)
    for spec in specs:
        doc = warm.submit_run(spec)
        if doc["status"] != "done":
            warm.wait(doc["job_id"], timeout=120)

    bodies = [json.dumps(spec) for spec in specs]
    per_thread = [_Counters() for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)
    stop_at = [float("inf")]
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(host, port, token, bodies, barrier, stop_at, counters),
            daemon=True,
        )
        for counters in per_thread
    ]
    for t in threads:
        t.start()
    barrier.wait()  # clients counted down: the clock starts now
    t0 = time.perf_counter()
    stop_at[0] = t0 + duration
    time.sleep(duration)
    for t in threads:
        t.join(timeout=60)
    elapsed = time.perf_counter() - t0

    statuses: Dict[int, int] = {}
    latencies: List[float] = []
    transport_errors = 0
    for counters in per_thread:
        for status, count in counters.statuses.items():
            statuses[status] = statuses.get(status, 0) + count
        latencies.extend(counters.latencies)
        transport_errors += counters.transport_errors
    latencies.sort()
    total = sum(statuses.values())
    return {
        "clients": clients,
        "duration_s": round(elapsed, 3),
        "requests": total,
        "req_per_s": round(total / max(elapsed, 1e-9), 1),
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "n_5xx": sum(v for k, v in statuses.items() if k >= 500),
        "n_429": statuses.get(429, 0),
        "transport_errors": transport_errors,
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url",
        default=None,
        help="target a running service (default: self-host one with auth "
        "+ rate limiting enabled)",
    )
    parser.add_argument("--token", default=None, help="bearer token for --url")
    parser.add_argument("--clients", type=int, default=200)
    parser.add_argument("--duration", type=float, default=10.0, help="seconds")
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: 16 clients for 2s"
    )
    parser.add_argument(
        "--min-rps",
        type=float,
        default=0.0,
        help="fail (exit 1) below this sustained req/s",
    )
    parser.add_argument(
        "--out", default=str(RESULTS_PATH), help="JSON results file (merged)"
    )
    args = parser.parse_args(argv)
    clients = 16 if args.quick else args.clients
    duration = 2.0 if args.quick else args.duration

    server = None
    if args.url is None:
        from repro.service.server import ServiceServer
        from repro.service.tenancy import TenantLimits

        # Auth and rate limiting are *on* (the hardened code path is what
        # gets measured); the limit itself is far above the ceiling so
        # the bucket never rejects a well-behaved load run.
        server = ServiceServer(
            auth={"bench-token": "bench"},
            tenant_limits=TenantLimits(rate=1_000_000.0, burst=1_000_000),
        ).start()
        url, token = server.url, "bench-token"
    else:
        url, token = args.url, args.token

    try:
        doc = run_load(url, token, clients=clients, duration=duration)
    finally:
        if server is not None:
            server.stop()

    key = "quick" if args.quick else f"clients{clients}"
    _persist(key, doc, Path(args.out))
    print(
        format_table(
            ["clients", "duration", "requests", "req/s", "p50", "p95", "p99", "5xx"],
            [
                (
                    doc["clients"],
                    f"{doc['duration_s']:.1f}s",
                    doc["requests"],
                    f"{doc['req_per_s']:.0f}",
                    f"{doc['p50_ms']:.1f}ms",
                    f"{doc['p95_ms']:.1f}ms",
                    f"{doc['p99_ms']:.1f}ms",
                    doc["n_5xx"],
                )
            ],
            title="Warm-cache load (auth + rate limiting enabled)",
        )
    )
    if doc["n_5xx"]:
        print(f"FAIL: {doc['n_5xx']} server errors (5xx)", file=sys.stderr)
        return 1
    if doc["requests"] == 0 or doc["req_per_s"] <= 0:
        print("FAIL: zero throughput", file=sys.stderr)
        return 1
    if doc["req_per_s"] < args.min_rps:
        print(
            f"FAIL: {doc['req_per_s']:.0f} req/s below the "
            f"--min-rps {args.min_rps:.0f} bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
