"""E2 -- Theorem 3.1: the measured sandwich.

For each ``n``: run the adversary portfolio, report the strongest measured
broadcast time between the two formulas, and assert

* every adversary respects the upper bound ``⌈(1+√2)n − 1⌉``;
* the cyclic chain-fan adversary achieves the lower-bound formula
  ``⌈(3n−1)/2⌉ − 2`` exactly.

The benchmark component times the lower-bound witness run (the expensive,
headline computation).
"""

from __future__ import annotations

import pytest

from repro.adversaries.zeiner import CyclicFamilyAdversary, best_known_adversary
from repro.analysis.tables import format_table
from repro.core.bounds import lower_bound, upper_bound
from repro.core.broadcast import run_adversary

NS = [4, 5, 6, 8, 10, 12, 16, 20]


@pytest.mark.table
def test_print_sandwich_table(capsys):
    """The measured Theorem 3.1 table (paper-vs-measured, E2)."""
    rows = []
    for n in NS:
        _, best, board = best_known_adversary(n, include_search=False)
        assert all(t <= upper_bound(n) for t in board.values()), (
            f"upper bound violated at n={n}: {board}"
        )
        rows.append(
            (
                n,
                lower_bound(n),
                best.t_star,
                upper_bound(n),
                f"{best.t_star / n:.3f}",
                "yes" if best.t_star >= lower_bound(n) else "no",
            )
        )
    with capsys.disabled():
        print()
        print(
            format_table(
                ["n", "LB formula", "best measured t*", "UB formula", "t*/n", "LB met"],
                rows,
                title="E2 / Theorem 3.1: LB <= t* <= UB (measured portfolio)",
            )
        )
    for _, lb, t, ub, _, met in rows:
        assert lb <= t <= ub
        assert met == "yes"


@pytest.mark.parametrize("n", [8, 12, 16])
def test_lower_bound_witness_speed(benchmark, n):
    """Timing of the cyclic chain-fan witness run."""
    result = benchmark(lambda: run_adversary(CyclicFamilyAdversary(n), n))
    assert result.t_star == lower_bound(n)
