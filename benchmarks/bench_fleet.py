"""Fleet scaling: cold-cache sweep wall time at 1 vs 2 worker processes.

Starts a fleet-enabled service in-process, attaches N ``repro worker``
subprocesses over real HTTP, and times a cold-cache sweep of CPU-heavy
cyclic cells submitted through ``POST /v1/sweeps``.  The 1-worker
measurement runs through the same claim/heartbeat/complete path, so the
reported speedup isolates fleet parallelism, not protocol overhead.

The acceptance check -- >= 1.8x going from 1 to 2 workers -- needs real
cores (server + two executing workers); it is asserted only when
``os.cpu_count() >= 4``.  The measured numbers are merged into
``benchmarks/BENCH_fleet.json`` either way.

Usage::

    python benchmarks/bench_fleet.py --quick    # CI-sized cells
    python benchmarks/bench_fleet.py            # full: ~7s serial work
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_SRC = Path(__file__).resolve().parents[1] / "src"
if str(REPO_SRC) not in sys.path:  # runnable without PYTHONPATH
    sys.path.insert(0, str(REPO_SRC))

from repro.analysis.tables import format_table  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.server import ServiceServer  # noqa: E402

RESULTS_PATH = Path(__file__).with_name("BENCH_fleet.json")
MIN_SPEEDUP = 1.8

#: Cyclic chain-fan cells: the most CPU-expensive registered family, so
#: worker parallelism (not HTTP) dominates the wall time.
FULL_NS = (28, 32, 36, 40, 44, 48)
QUICK_NS = (24, 26, 28, 30, 32, 34)


def _worker_env() -> Dict[str, str]:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(REPO_SRC) if not existing else str(REPO_SRC) + os.pathsep + existing
    )
    return env


def _spawn_workers(url: str, count: int) -> List[subprocess.Popen]:
    return [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "worker",
                "--url", url, "--name", f"bench-w{i}",
                "--batch", "1", "--poll", "0.2",
            ],
            env=_worker_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for i in range(count)
    ]


def _wait_for_workers(client: ServiceClient, count: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(client.metrics()["fleet"]["workers"]) >= count:
            return
        time.sleep(0.05)
    raise RuntimeError(f"{count} workers never registered with the service")


def measure(workers: int, ns: List[int], timeout: float) -> dict:
    """Cold-cache sweep wall time through ``workers`` fleet processes."""
    sweep = {"adversaries": ["cyclic"], "ns": list(ns)}
    with ServiceServer(fleet=True, claim_deadline=max(timeout, 60.0)) as server:
        client = ServiceClient.from_url(server.url)
        procs = _spawn_workers(server.url, workers)
        try:
            _wait_for_workers(client, workers)
            t0 = time.perf_counter()
            job = client.submit_sweep(sweep)
            doc = client.wait(job["job_id"], timeout=timeout)
            elapsed = time.perf_counter() - t0
            if doc["status"] != "done":
                raise RuntimeError(f"sweep ended {doc['status']}: {doc.get('error')}")
            fleet = client.metrics()["fleet"]
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10)
    counters = fleet["counters"]
    return {
        "workers": workers,
        "cells": len(ns),
        "wall_s": round(elapsed, 3),
        "completions_ok": counters["completions_ok"],
        "local_fallbacks": counters["local_fallbacks"],
        "lease_expiries": counters["lease_expiries"],
        "t_stars": [p["t_star"] for p in doc["result"]["points"]],
    }


def _persist(key: str, payload: dict, path: Path) -> None:
    try:
        existing = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        existing = {}
    if not isinstance(existing, dict):
        existing = {}
    existing[key] = payload
    path.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized cells (~3s serial work)"
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0, help="per-sweep deadline in seconds"
    )
    args = parser.parse_args(argv)

    ns = list(QUICK_NS if args.quick else FULL_NS)
    one = measure(1, ns, args.timeout)
    two = measure(2, ns, args.timeout)
    if one["t_stars"] != two["t_stars"]:
        print("FAIL: 1-worker and 2-worker sweeps disagree", file=sys.stderr)
        return 1
    speedup = one["wall_s"] / two["wall_s"] if two["wall_s"] else 0.0

    cpus = os.cpu_count() or 1
    enforced = cpus >= 4
    payload = {
        "ns": ns,
        "cpu_count": cpus,
        "workers1": one,
        "workers2": two,
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
        "enforced": enforced,
    }
    _persist("quick" if args.quick else "full", payload, RESULTS_PATH)

    print(
        format_table(
            ["workers", "wall s", "completions", "fallbacks"],
            [
                (m["workers"], m["wall_s"], m["completions_ok"], m["local_fallbacks"])
                for m in (one, two)
            ],
            title=f"fleet scaling, {len(ns)} cold cyclic cells (speedup {speedup:.2f}x)",
        )
    )
    print(f"results merged into {RESULTS_PATH}")

    if enforced and speedup < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {speedup:.2f}x < {MIN_SPEEDUP}x with {cpus} CPUs",
            file=sys.stderr,
        )
        return 1
    if not enforced:
        print(
            f"note: {cpus} CPU(s) -- the {MIN_SPEEDUP}x floor needs >= 4, not enforced"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
