"""E6 -- the nonsplit bridge of the related work ([1], [9]).

Two reproduced claims:

* **Lemma N** ([1]): composing any ``n − 1`` rooted-tree rounds gives a
  nonsplit graph -- checked over random and adversarial sequences;
* **radius shape** ([9]): broadcast over nonsplit graphs completes in far
  fewer rounds than over trees (``O(log log n)`` vs ``Θ(n)``) -- measured
  for the cyclic-window and random nonsplit families.

The benchmark times the nonsplit check (a boolean matmul) and a nonsplit
broadcast run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversaries.nonsplit import (
    NonsplitAdversary,
    broadcast_time_nonsplit,
    cyclic_nonsplit_graph,
    nonsplit_radius,
    random_nonsplit_graph,
)
from repro.adversaries.zeiner import CyclicFamilyAdversary
from repro.analysis.tables import format_table
from repro.core.broadcast import run_adversary
from repro.core.product import is_nonsplit
from repro.gossip.consensus import blocks_are_nonsplit
from repro.trees.generators import random_tree

NS = [8, 16, 32, 64, 128]


@pytest.mark.table
def test_print_nonsplit_table(capsys):
    rows = []
    rng = np.random.default_rng(0)
    for n in NS:
        tree_t = run_adversary(CyclicFamilyAdversary(n, m_stride=max(1, n // 16)), n).t_star
        cyc_radius = nonsplit_radius(cyclic_nonsplit_graph(n))
        rnd_t, _ = broadcast_time_nonsplit(NonsplitAdversary(n, mode="random", seed=1), n)
        rows.append((n, tree_t, cyc_radius, rnd_t, f"{tree_t / max(rnd_t, 1):.1f}x"))
    with capsys.disabled():
        print()
        print(
            format_table(
                [
                    "n",
                    "tree adversary t*",
                    "cyclic nonsplit radius",
                    "random nonsplit t*",
                    "tree/nonsplit ratio",
                ],
                rows,
                title="E6: nonsplit graphs broadcast dramatically faster than trees",
            )
        )
    # Shape: nonsplit times stay tiny while tree times grow linearly.
    for n, tree_t, cyc_radius, rnd_t, _ in rows:
        assert cyc_radius <= 6
        assert rnd_t <= 8
        assert tree_t >= n - 1


@pytest.mark.table
def test_lemma_n_blocks_nonsplit_bulk(capsys):
    """Lemma N over 200 random sequences (bulk check beyond unit tests)."""
    rng = np.random.default_rng(7)
    checked = 0
    for _ in range(200):
        n = int(rng.integers(2, 10))
        trees = [random_tree(n, rng) for _ in range(n - 1)]
        assert blocks_are_nonsplit(trees, n)
        checked += 1
    with capsys.disabled():
        print(f"\nE6/Lemma N: {checked} random (n-1)-round blocks, all nonsplit")


def test_nonsplit_check_speed(benchmark):
    a = cyclic_nonsplit_graph(512)
    assert benchmark(lambda: is_nonsplit(a))


def test_nonsplit_broadcast_speed(benchmark):
    n = 128
    adv = NonsplitAdversary(n, mode="random", seed=3)
    t, _ = benchmark(lambda: broadcast_time_nonsplit(adv, n))
    assert t <= 8
