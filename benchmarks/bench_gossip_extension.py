"""E7 -- the gossip extension (paper Section 5 future work).

Reproduced structural finding: **gossip time is unbounded** under
adversarial rooted trees -- the adversary that witnesses the broadcast
lower bound also prevents all-to-all dissemination forever (a static path
already does).  Under benign random trees gossip completes within a small
multiple of the broadcast time.

The benchmark times a full random-tree gossip run.
"""

from __future__ import annotations

import pytest

from repro.adversaries.oblivious import RandomTreeAdversary, StaticTreeAdversary
from repro.adversaries.zeiner import CyclicFamilyAdversary
from repro.analysis.tables import format_table
from repro.gossip.gossip import gossip_time_adversary
from repro.trees.generators import path

NS = [6, 8, 12, 16, 24]


@pytest.mark.table
def test_print_gossip_table(capsys):
    rows = []
    for n in NS:
        adv_res = gossip_time_adversary(CyclicFamilyAdversary(n), n, max_rounds=4 * n)
        path_res = gossip_time_adversary(StaticTreeAdversary(path(n)), n, max_rounds=4 * n)
        rnd_res = gossip_time_adversary(RandomTreeAdversary(n, seed=0), n)
        rows.append(
            (
                n,
                adv_res.broadcast_time,
                "never" if adv_res.gossip_time is None else adv_res.gossip_time,
                "never" if path_res.gossip_time is None else path_res.gossip_time,
                rnd_res.broadcast_time,
                rnd_res.gossip_time,
            )
        )
    with capsys.disabled():
        print()
        print(
            format_table(
                [
                    "n",
                    "adversarial broadcast t*",
                    "adversarial gossip",
                    "static-path gossip",
                    "random broadcast t*",
                    "random gossip",
                ],
                rows,
                title="E7: gossip is unbounded adversarially, cheap under random trees",
            )
        )
    for _, _, adv_gossip, path_gossip, _, rnd_gossip in rows:
        assert adv_gossip == "never"
        assert path_gossip == "never"
        assert isinstance(rnd_gossip, int)


def test_random_gossip_speed(benchmark):
    n = 32
    res = benchmark(lambda: gossip_time_adversary(RandomTreeAdversary(n, seed=5), n))
    assert res.completed
