"""E2 supplement -- where the adversary spends its budget.

Threshold broadcast times ``t*_k`` (first round some reach set has size
>= k) under the static path vs the lower-bound witness.  The static path
pays one round per threshold uniformly (``t*_k = k − 1``); the cyclic
chain-fan adversary back-loads the cost -- the final thresholds are the
expensive ones, matching the intuition behind the ``3n/2`` analysis
(first build staggered knowledge cheaply, then make every further step
dear).
"""

from __future__ import annotations

import pytest

from repro.adversaries.oblivious import StaticTreeAdversary
from repro.adversaries.zeiner import CyclicFamilyAdversary
from repro.analysis.tables import format_table
from repro.core.bounds import lower_bound
from repro.gossip.threshold import (
    compare_profiles,
    threshold_profile_adversary,
)
from repro.trees.generators import path

N = 12


@pytest.mark.table
def test_print_threshold_table(capsys):
    profiles = {
        "static path": threshold_profile_adversary(
            StaticTreeAdversary(path(N)), N
        ),
        "cyclic chain-fan": threshold_profile_adversary(
            CyclicFamilyAdversary(N), N
        ),
    }
    rows = compare_profiles(profiles)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["k", "static path t*_k", "cyclic t*_k"],
                rows,
                title=f"E2 supplement: threshold broadcast times at n={N}",
            )
        )
        cyc = profiles["cyclic chain-fan"]
        print(f"cyclic marginal costs k->k+1: {cyc.marginal_costs()}")
    # Shape checks: path is arithmetic; cyclic ends at the LB formula and
    # back-loads its cost.
    static = profiles["static path"]
    cyc = profiles["cyclic chain-fan"]
    for k in range(1, N + 1):
        assert static.time_for(k) == k - 1
    assert cyc.broadcast_time == lower_bound(N)
    marg = cyc.marginal_costs()
    assert marg[-1] >= marg[0]


def test_threshold_profile_speed(benchmark):
    profile = benchmark(
        lambda: threshold_profile_adversary(CyclicFamilyAdversary(N), N)
    )
    assert profile.broadcast_time == lower_bound(N)
