"""Observability overhead: the disabled path must stay under 2%.

Two measurements, both persisted to ``benchmarks/BENCH_obs.json``:

1. **Disabled budget** (the asserted contract).  With tracing and
   profiling off, the instrumentation reduces to cheap guards: a
   module-global ``is None`` check per kernel composition, a
   ``profile.enabled()`` read per run, and a shared no-op span object
   per executor entry.  We micro-measure each guard, multiply by a
   generous per-run guard count, and assert the total stays below 2% of
   a real run's wall time.  The analytic form keeps the assertion
   robust on noisy CI boxes: the guards are nanoseconds against a run
   measured in milliseconds.

2. **Off-vs-on ratio** (informational).  The same workload with
   tracing + profiling enabled, spans appended to a temp file.  Enabled
   runs are allowed to cost; the number is recorded so regressions in
   the *enabled* path are visible in the JSON history too.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parents[1] / "src"
if str(REPO_SRC) not in sys.path:  # runnable without PYTHONPATH
    sys.path.insert(0, str(REPO_SRC))

import pytest  # noqa: E402

from repro.adversaries import CyclicFamilyAdversary  # noqa: E402
from repro.core import kernels as core_kernels  # noqa: E402
from repro.engine.executor import RunSpec, SequentialExecutor  # noqa: E402
from repro.obs import profile as obs_profile  # noqa: E402
from repro.obs import trace as obs_trace  # noqa: E402

RESULTS_PATH = Path(__file__).with_name("BENCH_obs.json")

#: Workload: one sequential cyclic run (t* ~ 1.5n rounds of real kernel
#: work -- the engine path every guard sits on).
BENCH_N = 32

#: The disabled-path budget from the observability issue.
DISABLED_BUDGET = 0.02


@pytest.fixture(autouse=True)
def _obs_off():
    obs_trace.disable()
    obs_profile.disable()
    obs_profile.reset()
    yield
    obs_trace.disable()
    obs_profile.disable()
    obs_profile.reset()


def _persist(key: str, payload: dict) -> None:
    try:
        existing = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        existing = {}
    if not isinstance(existing, dict):
        existing = {}
    existing[key] = payload
    RESULTS_PATH.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _run_once() -> float:
    spec = RunSpec(adversary=CyclicFamilyAdversary, n=BENCH_N)
    executor = SequentialExecutor()
    t0 = time.perf_counter()
    report = executor.run(spec)
    elapsed = time.perf_counter() - t0
    assert report.t_star is not None
    return elapsed


def _best_run_seconds(repeats: int = 2) -> float:
    return min(_run_once() for _ in range(repeats))


def _per_call_seconds(fn, iters: int = 200_000) -> float:
    t0 = time.perf_counter()
    for _ in range(iters):
        fn()
    return (time.perf_counter() - t0) / iters


def test_disabled_guard_budget():
    """Asserted contract: disabled instrumentation costs < 2% of a run."""
    run_s = _best_run_seconds()

    observer_check_s = _per_call_seconds(
        lambda: core_kernels._compose_observer is None
    )
    enabled_check_s = _per_call_seconds(obs_profile.enabled)

    def noop_span():
        with obs_trace.span("bench"):
            pass

    span_s = _per_call_seconds(noop_span, iters=50_000)

    # Generous per-run guard counts: the observer check fires once per
    # round (t* ~ 1.5n, doubled for slack), the enabled() read and the
    # no-op span a handful of times per run (x16 for slack).
    rounds = 2 * 2 * BENCH_N
    guard_s = rounds * (observer_check_s + enabled_check_s) + 16 * span_s
    overhead = guard_s / run_s

    _persist(
        "disabled_budget",
        {
            "n": BENCH_N,
            "run_seconds": round(run_s, 6),
            "observer_check_ns": round(observer_check_s * 1e9, 2),
            "enabled_check_ns": round(enabled_check_s * 1e9, 2),
            "noop_span_ns": round(span_s * 1e9, 2),
            "guards_per_run": rounds,
            "guard_seconds": round(guard_s, 9),
            "overhead_fraction": round(overhead, 6),
            "budget": DISABLED_BUDGET,
        },
    )
    assert overhead < DISABLED_BUDGET, (
        f"disabled observability guards cost {overhead:.2%} of a run "
        f"(budget {DISABLED_BUDGET:.0%})"
    )


def test_off_vs_on_overhead(tmp_path):
    """Informational: record what fully-enabled tracing actually costs."""
    off_s = _best_run_seconds()

    sink = tmp_path / "spans.jsonl"
    obs_trace.enable(str(sink))
    obs_profile.enable()
    try:
        on_s = _best_run_seconds()
    finally:
        obs_trace.disable()
        obs_profile.disable()

    spans = obs_trace.read_spans(str(sink))
    assert any(s["name"] == "run" for s in spans)

    ratio = on_s / off_s if off_s > 0 else float("inf")
    _persist(
        "off_vs_on",
        {
            "n": BENCH_N,
            "off_seconds": round(off_s, 6),
            "on_seconds": round(on_s, 6),
            "on_over_off": round(ratio, 4),
            "spans_per_traced_run": len(spans) // 3,
        },
    )
    # Enabled runs are allowed to cost; just sanity-bound the ratio so a
    # pathological regression (e.g. sync-on-every-span) still fails.
    assert ratio < 25.0
