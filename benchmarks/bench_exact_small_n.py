"""E3 -- exact game values t*(T_n) for small n.

The exact solver certifies the true broadcast game value by exhaustive
minimax.  Reproduced finding: **t*(T_n) equals the lower-bound formula
⌈(3n−1)/2⌉ − 2 for every n = 2..6** -- the Zeiner et al. lower bound is
tight at these sizes, and the paper's open gap (Section 5) leans toward
the lower end at small n.

n = 6 (7776 trees/state, ~112k canonical states, tens of minutes) is
gated behind ``REPRO_BENCH_EXACT_N6=1``; its result is recorded in
EXPERIMENTS.md.  The benchmark times the n = 4 solve.
"""

from __future__ import annotations

import os

import pytest

from repro.adversaries.exact import ExactGameSolver
from repro.analysis.tables import format_table
from repro.core.bounds import lower_bound, upper_bound

#: (n, exact value) -- n=6 computed once with this library (1620 s, 112620
#: canonical states); re-verified in-suite only when explicitly requested.
EXACT_VALUES = [(2, 1), (3, 2), (4, 4), (5, 5)]
EXACT_N6 = (6, 7)


@pytest.mark.table
def test_print_exact_table(capsys):
    """Exact values vs the Theorem 3.1 formulas."""
    rows = []
    for n, expected in EXACT_VALUES:
        result = ExactGameSolver(n).solve()
        assert result.t_star == expected
        rows.append(
            (
                n,
                lower_bound(n),
                result.t_star,
                upper_bound(n),
                result.states_explored,
                result.tree_count,
                f"{result.elapsed_seconds:.2f}s",
            )
        )
    n6, v6 = EXACT_N6
    rows.append((n6, lower_bound(n6), f"{v6} (recorded)", upper_bound(n6), 112620, 7776, "1620s"))
    with capsys.disabled():
        print()
        print(
            format_table(
                ["n", "LB formula", "exact t*(T_n)", "UB formula", "states", "|T_n|", "time"],
                rows,
                title="E3: exact game values (LB formula is tight for n <= 6)",
            )
        )
    for n, expected in EXACT_VALUES:
        assert expected == lower_bound(n)


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_EXACT_N6") != "1",
    reason="n=6 exact solve takes ~30 minutes; set REPRO_BENCH_EXACT_N6=1",
)
def test_exact_n6_full_solve():
    result = ExactGameSolver(6, max_states=30_000_000).solve()
    assert result.t_star == EXACT_N6[1] == lower_bound(6)


def test_exact_solver_speed_n4(benchmark):
    """Timing of the full exhaustive solve at n = 4."""
    result = benchmark(lambda: ExactGameSolver(4).solve())
    assert result.t_star == 4
