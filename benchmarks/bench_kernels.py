"""Kernel-tier benchmarks: graph-compose kernels and the t* squaring search.

Two measurement families, both persisted into ``benchmarks/BENCH_kernels.json``
(same merge-by-key convention as ``BENCH_load.json``, plus a ``machine``
block from :func:`repro.core.kernels.machine_info`):

* ``compose_*`` -- one bitset graph-composition step per registered
  kernel (``word-or`` / ``blas`` / ``gather``) on a dense (density 0.3)
  and a sparse (mean degree ~8) random graph, with the dense int32
  ``bool_product`` reference timed up to n = 1024.  The acceptance
  number: at n = 4096 the *dispatched* kernel must be >= 5x faster than
  the word-OR baseline on the dense cell.
* ``tstar_*`` -- completion search on the static path (t* = n - 1):
  repeated-squaring fast path vs the compiled round-by-round loop
  (``use_squaring=False``).  The acceptance number: >= 10x at n >= 1024
  (t* = 1023 >= 512), with identical t*.

The n = 4096 cells are additionally gated behind ``REPRO_BENCH_FULL=1``
so the default tier-1 run stays fast; CI's bench-smoke deselects every
big-n id via ``-k`` and only exercises the n = 64 smoke cells.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -q                   # small cells
    REPRO_BENCH_FULL=1 PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -q  # full grid
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict

import numpy as np
import pytest

from repro.adversaries.paths import StaticPathAdversary
from repro.core import kernels as K
from repro.core import matrix as M
from repro.core.backend import get_backend
from repro.engine.executor import RunSpec, SequentialExecutor

RESULTS_PATH = Path(__file__).with_name("BENCH_kernels.json")

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

#: The int32 matmul reference is timed only up to this n (it is the seed
#: semantics, not a contender, and is minutes-slow at n = 4096).
DENSE_REFERENCE_MAX_N = 1024

COMPOSE_NS = [64, 256, 1024, 4096]
TSTAR_NS = [64, 1024, 4096]

BITSET = get_backend("bitset")


def _require(n: int) -> None:
    if n >= 4096 and not FULL:
        pytest.skip("n=4096 cells run only under REPRO_BENCH_FULL=1")


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _persist(key: str, payload: dict) -> None:
    try:
        existing = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        existing = {}
    if not isinstance(existing, dict):
        existing = {}
    existing[key] = payload
    existing["machine"] = K.machine_info()
    RESULTS_PATH.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _graphs(n: int) -> Dict[str, np.ndarray]:
    rng = np.random.default_rng(n)
    dense_g = rng.random((n, n)) < 0.3
    sparse_g = rng.random((n, n)) < (8.0 / n)
    np.fill_diagonal(dense_g, True)
    np.fill_diagonal(sparse_g, True)
    return {"dense": dense_g, "sparse": sparse_g}


@pytest.mark.table
@pytest.mark.parametrize("n", COMPOSE_NS)
def test_compose_kernels(n, report_sink):
    """Time every bitset kernel on one composition step; persist + assert."""
    _require(n)
    rng = np.random.default_rng(n + 1)
    a = rng.random((n, n)) < 0.4
    np.fill_diagonal(a, True)
    mat = BITSET.from_dense(a)
    repeats = 2 if n >= 4096 else 3

    doc: dict = {"n": n, "cells": {}}
    for flavor, g in _graphs(n).items():
        seconds: Dict[str, float] = {}
        baseline = None
        for kernel in K.available_kernels("bitset"):
            with K.use_kernel(kernel):
                seconds[kernel] = _best_of(
                    lambda: BITSET.compose_with_graph(mat, g), repeats
                )
        if n <= DENSE_REFERENCE_MAX_N:
            seconds["dense-reference"] = _best_of(lambda: M.bool_product(a, g), 1)
        dispatched = K.choose_kernel("bitset", n, g)
        baseline = seconds["word-or"]
        cell = {
            "graph": flavor,
            "degree": round(float(np.count_nonzero(g)) / n, 1),
            "dispatched": dispatched,
            "seconds": {k: round(v, 6) for k, v in seconds.items()},
            "speedup_vs_word_or": {
                k: round(baseline / v, 2) for k, v in seconds.items() if v > 0
            },
        }
        if "dense-reference" in seconds:
            cell["speedup_vs_dense"] = {
                k: round(seconds["dense-reference"] / v, 2)
                for k, v in seconds.items()
                if v > 0
            }
        doc["cells"][flavor] = cell
        report_sink.append(
            f"[kernels] compose n={n} {flavor}: dispatched={dispatched} "
            + " ".join(f"{k}={v:.4f}s" for k, v in seconds.items())
        )
        # Correctness is pinned by tests/; here just sanity-check dispatch:
        # the chosen kernel must never lose to word-or by more than noise.
        if n >= 256:
            assert seconds[dispatched] <= baseline * 1.25, (n, flavor, seconds)

    if n >= 4096:
        # Acceptance: the dispatched kernel beats the word-OR baseline by
        # >= 5x at n = 4096 on at least one graph regime (the sparse cell
        # carries this by a wide margin via gather; the dense cell's BLAS
        # win is bounded by the ~1.5-2s sgemm floor on this 1-CPU host,
        # so it gets a softer regression canary instead of the 5x bar).
        best = max(
            cell["speedup_vs_word_or"][cell["dispatched"]]
            for cell in doc["cells"].values()
        )
        doc["acceptance_min_speedup"] = 5.0
        doc["acceptance_speedup"] = best
        assert best >= 5.0, doc["cells"]
        dense_cell = doc["cells"]["dense"]
        assert dense_cell["speedup_vs_word_or"][dense_cell["dispatched"]] >= 2.0, (
            dense_cell
        )
    _persist(f"compose_n{n}", doc)


@pytest.mark.table
@pytest.mark.parametrize("n", TSTAR_NS)
def test_tstar_squaring_search(n, report_sink):
    """Squaring vs the compiled loop on the static path; persist + assert."""
    _require(n)
    repeats = 2 if n >= 4096 else 3

    def run(use_squaring: bool):
        spec = RunSpec(adversary=StaticPathAdversary(n), n=n, backend="bitset")
        return SequentialExecutor(use_squaring=use_squaring).run(spec)

    fast = run(True)
    slow = run(False)
    assert fast.t_star == slow.t_star == n - 1
    assert fast.final_state.key() == slow.final_state.key()

    t_fast = _best_of(lambda: run(True), repeats)
    t_slow = _best_of(lambda: run(False), repeats)
    speedup = t_slow / t_fast if t_fast > 0 else float("inf")
    doc = {
        "n": n,
        "t_star": fast.t_star,
        "seconds": {"squaring": round(t_fast, 6), "loop": round(t_slow, 6)},
        "speedup": round(speedup, 2),
    }
    report_sink.append(
        f"[kernels] tstar n={n}: squaring={t_fast:.4f}s loop={t_slow:.4f}s "
        f"speedup={speedup:.1f}x"
    )
    if n >= 1024:  # t* = n - 1 >= 512: the acceptance regime
        doc["acceptance_min_speedup"] = 10.0
        assert speedup >= 10.0, doc
    _persist(f"tstar_n{n}", doc)


def test_results_file_is_well_formed():
    """Whatever cells exist on disk must parse and carry the schema."""
    if not RESULTS_PATH.exists():
        pytest.skip("BENCH_kernels.json not generated yet")
    doc = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
    assert isinstance(doc, dict) and doc
    assert "machine" in doc
    assert {"platform", "numpy", "cpus"} <= set(doc["machine"])
    for key, cell in doc.items():
        if key.startswith("compose_"):
            assert cell["cells"]["dense"]["seconds"], key
        if key.startswith("tstar_"):
            assert cell["seconds"]["squaring"] > 0, key
