"""E8c -- abstraction and black-box-search ablations.

Two more quantitative answers to "why the cyclic chain-fan family?":

* the **arc game** (rotated cyclic paths only, solved exactly) is worth
  exactly ``n − 1`` -- no better than the static path, proving the *fan*
  moves carry the lower-bound construction beyond paths;
* **simulated annealing** over raw tree sequences (structure-free local
  search) also plateaus at the path value within practical budgets --
  the lower-bound manifold is thin.

The abstraction itself is validated against the real model move-by-move.
"""

from __future__ import annotations

import pytest

from repro.adversaries.annealing import anneal_sequence
from repro.adversaries.interval_game import (
    arc_game_optimal_sequence,
    arc_game_value,
    validate_abstraction,
)
from repro.adversaries.zeiner import CyclicFamilyAdversary
from repro.analysis.tables import format_table
from repro.core.bounds import lower_bound
from repro.core.broadcast import run_adversary


@pytest.mark.table
def test_print_abstraction_ablation(capsys):
    rows = []
    for n in (4, 5, 6):
        arc = arc_game_value(n)
        annealed = anneal_sequence(n, iterations=600, seed=0).best_t_star
        cyclic = run_adversary(CyclicFamilyAdversary(n), n).t_star
        rows.append((n, n - 1, arc, annealed, cyclic, lower_bound(n)))
        assert arc == n - 1
        assert cyclic == lower_bound(n)
        assert annealed <= cyclic
        assert validate_abstraction(n, arc_game_optimal_sequence(n))
    with capsys.disabled():
        print()
        print(
            format_table(
                [
                    "n",
                    "static path",
                    "arc game exact (paths only)",
                    "annealing (600 it)",
                    "cyclic chain-fan",
                    "LB formula",
                ],
                rows,
                title="E8c: rotated paths alone are worth exactly n-1; fans are essential",
            )
        )


def test_arc_game_solver_speed(benchmark):
    assert benchmark(lambda: arc_game_value(5)) == 4


def test_annealing_speed(benchmark):
    result = benchmark(lambda: anneal_sequence(5, iterations=100, seed=1))
    assert result.best_t_star >= 4
