"""Benchmark-suite configuration.

Each ``bench_*.py`` module regenerates one experiment from DESIGN.md's
per-experiment index (E1..E8).  Tables are printed to stdout (run pytest
with ``-s`` to see them inline; they are always emitted so ``tee`` captures
them) and the timing-sensitive kernels are measured with
pytest-benchmark.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "table: marks benchmarks that print a paper-style table"
    )


@pytest.fixture(scope="session")
def report_sink():
    """Accumulates printed tables so a session summary can be emitted."""
    lines = []
    yield lines
    if lines:
        print("\n".join(lines))
