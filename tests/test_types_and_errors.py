"""Tests for the shared validators and the exception hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro import errors
from repro.types import (
    as_edge_list,
    validate_node,
    validate_node_count,
    validate_round_index,
)


class TestValidators:
    def test_node_count_accepts_numpy_ints(self):
        assert validate_node_count(np.int64(5)) == 5
        assert isinstance(validate_node_count(np.int64(5)), int)

    def test_node_count_rejects(self):
        with pytest.raises(ValueError):
            validate_node_count(0)
        with pytest.raises(ValueError):
            validate_node_count(-3)
        with pytest.raises(ValueError):
            validate_node_count(2.5)
        with pytest.raises(ValueError):
            validate_node_count("4")

    def test_node_range(self):
        assert validate_node(3, 4) == 3
        with pytest.raises(ValueError):
            validate_node(4, 4)
        with pytest.raises(ValueError):
            validate_node(-1, 4)
        with pytest.raises(ValueError):
            validate_node(1.5, 4)

    def test_round_index_is_one_based(self):
        assert validate_round_index(1) == 1
        with pytest.raises(ValueError, match="t = 1, 2"):
            validate_round_index(0)

    def test_as_edge_list_normalizes(self):
        edges = as_edge_list([(np.int64(0), np.int64(1)), (1, 2)])
        assert edges == ((0, 1), (1, 2))
        assert all(isinstance(v, int) for e in edges for v in e)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            errors.InvalidTreeError,
            errors.InvalidGraphError,
            errors.DimensionMismatchError,
            errors.AdversaryError,
            errors.SearchBudgetExceeded,
            errors.SimulationError,
            errors.TraceError,
        ):
            assert issubclass(exc_type, errors.ReproError)

    def test_value_errors_are_value_errors(self):
        # Callers using plain except ValueError still catch validation.
        assert issubclass(errors.InvalidTreeError, ValueError)
        assert issubclass(errors.InvalidGraphError, ValueError)
        assert issubclass(errors.DimensionMismatchError, ValueError)
        assert issubclass(errors.TraceError, ValueError)

    def test_runtime_errors_are_runtime_errors(self):
        assert issubclass(errors.AdversaryError, RuntimeError)
        assert issubclass(errors.SimulationError, RuntimeError)
        assert issubclass(errors.SearchBudgetExceeded, RuntimeError)

    def test_budget_carries_state_count(self):
        exc = errors.SearchBudgetExceeded("cap", states_explored=42)
        assert exc.states_explored == 42
        assert "cap" in str(exc)

    def test_one_handler_catches_everything(self):
        caught = []
        for exc_type in (errors.InvalidTreeError, errors.AdversaryError):
            try:
                raise exc_type("boom")
            except errors.ReproError as exc:
                caught.append(type(exc))
        assert caught == [errors.InvalidTreeError, errors.AdversaryError]
