"""Keep the runnable examples in docstrings honest."""

from __future__ import annotations

import doctest

import repro


def test_package_root_doctest():
    """The quickstart in the package docstring must actually run."""
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 4  # the quickstart has several lines
