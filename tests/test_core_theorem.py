"""Unit tests for the executable Theorem 3.1 checks."""

from __future__ import annotations

import pytest

from repro.core.bounds import lower_bound, upper_bound
from repro.core.theorem import (
    check_exact_value,
    check_theorem_31,
    normalized_gap_limit,
    sandwich,
    theorem_gap,
)


class TestSandwich:
    def test_report_fields(self):
        r = sandwich(10, 13)
        assert r.lower == lower_bound(10)
        assert r.upper == upper_bound(10)
        assert r.normalized == pytest.approx(1.3)
        assert r.upper_bound_respected
        assert r.meets_lower_bound

    def test_below_lower_bound_flagged(self):
        r = sandwich(10, 9)  # static path value, below the formula
        assert r.upper_bound_respected
        assert not r.meets_lower_bound

    def test_violation_detected(self):
        r = sandwich(10, 25)  # 25 > ⌈(1+√2)·10 − 1⌉ = 24
        assert not r.upper_bound_respected

    def test_str_mentions_everything(self):
        text = str(sandwich(10, 13))
        assert "n=10" in text and "13" in text

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            sandwich(5, -1)


class TestChecks:
    def test_check_theorem_31(self):
        assert check_theorem_31(10, 24)
        assert not check_theorem_31(10, 25)

    def test_check_exact_value_requires_both_sides(self):
        # Exact small-n values (certified by the solver): 1, 2, 4, 5.
        assert check_exact_value(2, 1)
        assert check_exact_value(3, 2)
        assert check_exact_value(4, 4)
        assert check_exact_value(5, 5)
        assert not check_exact_value(4, 3)   # below the LB formula
        assert not check_exact_value(4, 10)  # above the UB formula

    def test_gap_positive_and_linear(self):
        assert theorem_gap(100) > 0
        # Gap grows roughly like 0.914 n.
        assert theorem_gap(1000) == pytest.approx(
            normalized_gap_limit() * 1000, rel=0.02
        )

    def test_normalized_gap_limit_value(self):
        assert normalized_gap_limit() == pytest.approx(0.9142, abs=1e-3)
