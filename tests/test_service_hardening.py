"""Production hardening end-to-end: auth, throttling, quotas, hang/crash paths.

Everything here runs against real sockets on ephemeral ports.  The
acceptance criteria from the hardening PR live in this file:

* auth off is byte-for-byte the old open service; auth on means 401
  without a valid bearer token (``/healthz`` stays open for probes);
* clients past the rate limit see ``429`` + ``Retry-After`` and a
  bounded-retry client converges -- N threads past the limit all succeed;
* an over-quota tenant is rejected with ``QuotaExceededError`` while
  other tenants keep working (isolation);
* a slow-loris client that never sends its declared body gets 408 and
  its connection dropped instead of pinning a handler thread;
* a client that vanishes mid-long-poll is swallowed (counted, no
  traceback);
* a terminal job a client is still watching survives retention.
"""

from __future__ import annotations

import io
import json
import socket
import struct
import threading
import time

import pytest

from repro.errors import (
    AuthenticationError,
    QuotaExceededError,
    RateLimitedError,
    ServiceError,
)
from repro.service.client import ServiceClient
from repro.service.scheduler import JobScheduler
from repro.service.server import ServiceServer
from repro.service.tenancy import TenantLimits, TenantRegistry


def _run_spec(n: int) -> dict:
    return {"adversary": "static-path", "n": n}


# ----------------------------------------------------------------------
# Auth
# ----------------------------------------------------------------------


def test_auth_off_behaves_like_the_open_service():
    with ServiceServer() as server:
        client = ServiceClient.from_url(server.url)
        doc = client.submit_run(_run_spec(8))
        assert doc["tenant"] == "public"
        metrics = client.metrics()
        assert "tenants" not in metrics  # no registry, no accounting block
        assert metrics["http"]["auth_failures"] == 0


def test_auth_rejects_missing_and_bad_tokens():
    with ServiceServer(auth={"tok-a": "alice"}, tenancy=TenantRegistry()) as server:
        anonymous = ServiceClient.from_url(server.url)
        # Probes stay open: a load balancer does not carry a token.
        assert anonymous.healthz()["status"] == "ok"
        with pytest.raises(AuthenticationError):
            anonymous.metrics()
        with pytest.raises(AuthenticationError):
            ServiceClient.from_url(server.url, token="wrong").submit_run(_run_spec(8))

        alice = ServiceClient.from_url(server.url, token="tok-a")
        doc = alice.wait(alice.submit_run(_run_spec(8))["job_id"], timeout=30)
        assert doc["status"] == "done" and doc["tenant"] == "alice"
        metrics = alice.metrics()
        assert metrics["http"]["auth_failures"] == 2
        assert metrics["tenants"]["alice"]["submitted"] == 1


# ----------------------------------------------------------------------
# Rate limiting + backpressure
# ----------------------------------------------------------------------


def test_rate_limit_answers_429_with_retry_after():
    with ServiceServer(tenant_limits=TenantLimits(rate=0.5, burst=1)) as server:
        client = ServiceClient.from_url(server.url)
        client.submit_run(_run_spec(8))  # burst token
        with pytest.raises(RateLimitedError) as excinfo:
            client.submit_run(_run_spec(10))
        exc = excinfo.value
        assert exc.status == 429
        assert exc.payload["reason"] == "rate-limited"
        assert exc.retry_after is not None and exc.retry_after > 0
        assert server.http_metrics()["rate_limited"] == 1


def test_rate_limit_sends_retry_after_header():
    import http.client

    with ServiceServer(tenant_limits=TenantLimits(rate=0.5, burst=1)) as server:
        host, port = server.address
        for expect_throttle in (False, True):
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                conn.request(
                    "POST",
                    "/v1/runs",
                    body=json.dumps(_run_spec(8)),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                response.read()
                if expect_throttle:
                    assert response.status == 429
                    assert int(response.headers["Retry-After"]) >= 1
                else:
                    assert response.status == 202
            finally:
                conn.close()


def test_rate_limited_threads_all_succeed_with_bounded_retry():
    """N threads past the bucket: 429s happen, bounded retry converges."""
    n_threads = 8
    with ServiceServer(tenant_limits=TenantLimits(rate=20.0, burst=1)) as server:
        barrier = threading.Barrier(n_threads)
        docs, errors = [], []
        lock = threading.Lock()

        def submit(i: int) -> None:
            client = ServiceClient.from_url(
                server.url, token=None, retry_rate_limited=50
            )
            barrier.wait()
            try:
                doc = client.submit_run(_run_spec(8 + 2 * i))
            except ServiceError as exc:  # pragma: no cover - the failure mode
                with lock:
                    errors.append(exc)
            else:
                with lock:
                    docs.append(doc)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(docs) == n_threads
        assert len({doc["job_id"] for doc in docs}) == n_threads
        # The barrier guarantees a burst-1 bucket turned most of them away
        # at least once before the retries got them through.
        assert server.http_metrics()["rate_limited"] >= 1


def test_global_backpressure_rejects_when_queue_is_full():
    with ServiceServer(max_queue_depth=2) as server:
        server.scheduler.stop()  # workers drained: submissions pile up queued
        client = ServiceClient.from_url(server.url)
        assert client.submit_run(_run_spec(8))["status"] == "queued"
        assert client.submit_run(_run_spec(10))["status"] == "queued"
        with pytest.raises(RateLimitedError) as excinfo:
            client.submit_run(_run_spec(12))
        assert excinfo.value.payload["reason"] == "rate-limited"
        assert "queue is full" in str(excinfo.value)

        server.scheduler.start()  # drain; the same submission now lands
        retrying = ServiceClient.from_url(server.url, retry_rate_limited=5)
        doc = retrying.submit_run(_run_spec(12))
        assert retrying.wait(doc["job_id"], timeout=30)["status"] == "done"


# ----------------------------------------------------------------------
# Quotas
# ----------------------------------------------------------------------


def test_quota_exhaustion_isolates_tenants():
    tenancy = TenantRegistry(per_tenant={"alice": TenantLimits(max_bytes=1)})
    auth = {"tok-a": "alice", "tok-b": "bob"}
    with ServiceServer(auth=auth, tenancy=tenancy) as server:
        alice = ServiceClient.from_url(server.url, token="tok-a", retry_rate_limited=3)
        bob = ServiceClient.from_url(server.url, token="tok-b")

        doc = alice.wait(alice.submit_run(_run_spec(8))["job_id"], timeout=30)
        assert doc["status"] == "done"
        assert tenancy.usage("alice")["bytes_used"] >= 1  # result charged

        # Over budget now: rejected as a quota (not retried -- waiting
        # does not replenish a quota, so this raises immediately even
        # though the client is configured for bounded 429 retry).
        t0 = time.monotonic()
        with pytest.raises(QuotaExceededError) as excinfo:
            alice.submit_run(_run_spec(10))
        assert time.monotonic() - t0 < 2.0
        assert excinfo.value.payload["reason"] == "quota"

        # Isolation: bob still computes -- including alice's own digest.
        doc = bob.wait(bob.submit_run(_run_spec(10))["job_id"], timeout=30)
        assert doc["status"] == "done"
        doc = bob.submit_run(_run_spec(8))
        assert doc["status"] == "done" and doc["cached"] is True
        metrics = bob.metrics()
        assert metrics["tenants"]["alice"]["quota_rejections"] == 1
        assert metrics["tenants"]["bob"]["quota_rejections"] == 0


def test_batch_quota_errors_items_in_place():
    tenancy = TenantRegistry(per_tenant={"alice": TenantLimits(max_jobs=1)})
    with ServiceServer(auth={"tok-a": "alice"}, tenancy=tenancy) as server:
        server.scheduler.stop()  # keep jobs active so the quota binds
        alice = ServiceClient.from_url(server.url, token="tok-a")
        jobs = alice.submit_runs([_run_spec(8), _run_spec(10), _run_spec(12)])
        assert "job_id" in jobs[0]
        assert "quota" in jobs[1]["error"] and "quota" in jobs[2]["error"]
        server.scheduler.start()


# ----------------------------------------------------------------------
# Hang/crash bugfix sweep
# ----------------------------------------------------------------------


def _recv_all(sock: socket.socket, deadline: float = 10.0) -> bytes:
    sock.settimeout(deadline)
    chunks = []
    try:
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            chunks.append(chunk)
    except socket.timeout:  # pragma: no cover - server kept the socket open
        pass
    return b"".join(chunks)


def test_stalling_client_gets_408_and_is_dropped():
    """Slow loris: declare a body, never send it; the thread comes back."""
    with ServiceServer(request_timeout=0.5) as server:
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"POST /v1/runs HTTP/1.1\r\n"
                b"Host: x\r\nContent-Type: application/json\r\n"
                b"Content-Length: 100\r\n\r\n"  # ...and then nothing
            )
            raw = _recv_all(sock)
        assert b" 408 " in raw.split(b"\r\n", 1)[0]
        assert server.http_metrics()["request_timeouts"] == 1
        # The handler thread is free again: the server still answers.
        client = ServiceClient.from_url(server.url)
        assert client.healthz()["status"] == "ok"
        doc = client.submit_run(_run_spec(8))
        assert client.wait(doc["job_id"], timeout=30)["status"] == "done"


def test_client_disconnect_mid_longpoll_is_counted_not_raised(capfd):
    with ServiceServer() as server:
        server.scheduler.stop()  # the job stays queued: the watch must hold
        queued = ServiceClient.from_url(server.url).submit_run(_run_spec(8))
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=10)
        sock.sendall(
            f"GET /v1/runs/{queued['job_id']}?watch={queued['version']}"
            f"&timeout=0.5 HTTP/1.1\r\nHost: x\r\n\r\n".encode()
        )
        # RST on close (SO_LINGER 0): the handler's eventual write fails
        # hard instead of buffering into a dead socket.
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        sock.close()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if server.http_metrics()["client_disconnects"] >= 1:
                break
            time.sleep(0.05)
        assert server.http_metrics()["client_disconnects"] >= 1
        server.scheduler.start()
    assert "Traceback" not in capfd.readouterr().err


def test_watched_terminal_job_survives_retirement():
    """The long-poll 404 bug: retention must not evict a watched job."""
    with JobScheduler(max_finished_jobs=1, watch_grace=60.0) as scheduler:
        first = scheduler.submit_run(_run_spec(8))
        scheduler.wait(first.job_id, timeout=30)
        # A watcher saw the terminal doc; its next request must find it.
        scheduler.wait_for_update(first.job_id, version=-1, timeout=5)
        for n in (10, 12, 14):
            scheduler.wait(scheduler.submit_run(_run_spec(n)).job_id, timeout=30)
        assert scheduler.job(first.job_id).status == "done"  # pinned


def test_watch_grace_zero_restores_plain_retention():
    with JobScheduler(max_finished_jobs=1, watch_grace=0.0) as scheduler:
        first = scheduler.submit_run(_run_spec(8))
        scheduler.wait(first.job_id, timeout=30)
        scheduler.wait_for_update(first.job_id, version=-1, timeout=5)
        for n in (10, 12, 14):
            scheduler.wait(scheduler.submit_run(_run_spec(n)).job_id, timeout=30)
        with pytest.raises(ServiceError):
            scheduler.job(first.job_id)


# ----------------------------------------------------------------------
# Structured request logs
# ----------------------------------------------------------------------


def test_access_log_emits_structured_json_lines():
    stream = io.StringIO()
    with ServiceServer(
        auth={"tok-a": "alice"}, access_log=True, log_stream=stream
    ) as server:
        client = ServiceClient.from_url(server.url, token="tok-a")
        client.submit_run(_run_spec(8))
        deadline = time.monotonic() + 5
        records = []
        while time.monotonic() < deadline:
            records = [
                json.loads(line)
                for line in stream.getvalue().splitlines()
                if line.strip()
            ]
            if any(r["path"] == "/v1/runs" for r in records):
                break
            time.sleep(0.02)
    post = next(r for r in records if r["path"] == "/v1/runs")
    assert post["method"] == "POST"
    assert post["tenant"] == "alice"
    assert post["status"] == 202
    assert post["duration_ms"] >= 0
    assert isinstance(post["queue_depth"], int)
    assert isinstance(post["ts"], float)
