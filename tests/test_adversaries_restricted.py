"""Tests for the k-leaf / k-inner restricted adversaries (Figure 1 rows)."""

from __future__ import annotations

import pytest

from repro.adversaries.restricted import (
    KInnerAdversary,
    KLeafAdversary,
    broom_from_order,
    check_k_inner,
    check_k_leaves,
    spider_from_order,
)
from repro.core.bounds import k_inner_upper_bound, k_leaves_upper_bound
from repro.core.broadcast import run_adversary
from repro.errors import AdversaryError


class TestBuilders:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_spider_from_order_leaf_count(self, k):
        tree = spider_from_order(list(range(7)), k)
        assert tree.leaf_count() == min(k, 6)

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_broom_from_order_inner_count(self, k):
        tree = broom_from_order(list(range(7)), k)
        assert tree.inner_count() == k

    def test_spider_respects_order(self):
        tree = spider_from_order([3, 0, 1, 2], 2)
        assert tree.root == 3


class TestKLeafAdversary:
    @pytest.mark.parametrize("n,k", [(6, 1), (6, 2), (8, 3), (10, 2)])
    def test_every_round_has_k_leaves(self, n, k):
        adv = KLeafAdversary(n, k)
        result = run_adversary(adv, n, keep_trees=True)
        assert result.t_star is not None
        for tree in result.trees:
            assert check_k_leaves(tree, k)

    @pytest.mark.parametrize("k", [2, 3])
    def test_time_within_kn_bound(self, k):
        # The O(kn) claim with our constant 2: t* <= 2kn.
        for n in (6, 10, 14):
            t = run_adversary(KLeafAdversary(n, k), n).t_star
            assert t <= k_leaves_upper_bound(n, k)

    def test_k1_plays_paths_and_respects_bound(self):
        # One leaf == a path.  The adaptive re-sorting can finish faster
        # than a static path (re-rooting helps broadcast); the contract is
        # legality plus the O(kn) bound.
        result = run_adversary(KLeafAdversary(8, 1), 8, keep_trees=True)
        assert all(t.is_path() for t in result.trees)
        assert result.t_star <= k_leaves_upper_bound(8, 1)

    def test_rejects_bad_k(self):
        with pytest.raises(AdversaryError):
            KLeafAdversary(6, 0)
        with pytest.raises(AdversaryError):
            KLeafAdversary(6, 6)


class TestKInnerAdversary:
    @pytest.mark.parametrize("n,k", [(6, 1), (6, 2), (8, 3), (10, 2)])
    def test_every_round_has_k_inner(self, n, k):
        adv = KInnerAdversary(n, k)
        result = run_adversary(adv, n, keep_trees=True)
        assert result.t_star is not None
        for tree in result.trees:
            assert check_k_inner(tree, k)

    @pytest.mark.parametrize("k", [2, 3])
    def test_time_within_kn_bound(self, k):
        for n in (6, 10, 14):
            t = run_adversary(KInnerAdversary(n, k), n).t_star
            assert t <= k_inner_upper_bound(n, k)

    def test_k1_is_star_like_fast(self):
        # One inner node == a star: broadcast cannot be delayed long.
        t = run_adversary(KInnerAdversary(8, 1), 8).t_star
        assert t <= 16

    def test_rejects_bad_k(self):
        with pytest.raises(AdversaryError):
            KInnerAdversary(6, 0)
