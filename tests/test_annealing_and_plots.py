"""Tests for the annealing searcher and the ASCII plot helpers."""

from __future__ import annotations

import pytest

from repro.adversaries.annealing import anneal_sequence
from repro.analysis.plots import bar_chart, series_compare, sparkline, trajectory_panel
from repro.core.bounds import upper_bound
from repro.core.broadcast import run_sequence
from repro.errors import AdversaryError
from repro.trees.generators import path


class TestAnnealing:
    def test_deterministic_given_seed(self):
        a = anneal_sequence(5, iterations=120, seed=3)
        b = anneal_sequence(5, iterations=120, seed=3)
        assert a.best_t_star == b.best_t_star
        assert [t.parents for t in a.best_sequence] == [
            t.parents for t in b.best_sequence
        ]

    def test_never_below_static_path_baseline(self):
        # The initial sequence is the static path, so n - 1 is a floor.
        result = anneal_sequence(6, iterations=150, seed=0)
        assert result.best_t_star >= 5

    def test_respects_upper_bound(self):
        n = 6
        result = anneal_sequence(n, iterations=200, seed=1)
        assert result.best_t_star <= upper_bound(n)

    def test_witness_sequence_realizes_score(self):
        result = anneal_sequence(5, iterations=150, seed=2)
        realized = run_sequence(result.best_sequence, 5).t_star
        assert realized == result.best_t_star

    def test_history_is_monotone(self):
        result = anneal_sequence(6, iterations=200, seed=4)
        assert result.history == sorted(result.history)
        assert result.iterations == 200
        assert 0 <= result.accepted <= 200

    def test_custom_initial_sequence(self):
        init = [path(5)] * 3  # shorter than the horizon: gets padded
        result = anneal_sequence(5, iterations=30, seed=0, initial=init)
        assert result.best_t_star >= 1

    def test_validation(self):
        with pytest.raises(AdversaryError):
            anneal_sequence(1, iterations=5)
        with pytest.raises(AdversaryError):
            anneal_sequence(5, iterations=0)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_is_flat(self):
        line = sparkline([3, 3, 3])
        assert len(set(line)) == 1
        assert len(line) == 3

    def test_monotone_ramps(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] < line[-1]
        assert len(line) == 4


class TestBarChart:
    def test_proportions(self):
        out = bar_chart(["a", "bb"], [1, 2], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_empty(self):
        assert bar_chart([], []) == ""

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])


class TestSeriesCompare:
    def test_contains_markers_and_legend(self):
        out = series_compare(
            [4, 8, 12],
            {"path": [3, 7, 11], "cyclic": [4, 10, 16]},
            width=30,
            height=8,
        )
        assert "o = path" in out
        assert "x = cyclic" in out
        assert "n: 4 .. 12" in out

    def test_empty(self):
        assert series_compare([], {}) == ""


def test_trajectory_panel():
    out = trajectory_panel("T", {"up": [1, 2, 3]})
    assert out.splitlines()[0] == "T"
    assert "(1 -> 3)" in out
