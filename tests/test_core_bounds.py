"""Unit tests for the bound formulas of Figure 1 / Theorem 3.1."""

from __future__ import annotations

import math

import pytest

from repro.core import bounds as B


class TestHeadlineBounds:
    def test_upper_bound_formula(self):
        # ⌈(1+√2)n − 1⌉ spot values.
        assert B.upper_bound(1) == math.ceil(1 + math.sqrt(2) - 1)
        assert B.upper_bound(4) == 9    # ceil(8.657)
        assert B.upper_bound(10) == 24  # ceil(23.142)
        assert B.upper_bound(100) == 241

    def test_lower_bound_formula(self):
        # ⌈(3n−1)/2⌉ − 2 spot values (clamped at small n).
        assert B.lower_bound(1) == 0
        assert B.lower_bound(2) == 1
        assert B.lower_bound(3) == 2
        assert B.lower_bound(4) == 4
        assert B.lower_bound(5) == 5
        assert B.lower_bound(6) == 7
        assert B.lower_bound(101) == 149

    def test_sandwich_order(self):
        for n in range(1, 200):
            assert B.lower_bound(n) <= B.upper_bound(n)

    def test_upper_is_about_2_414_n(self):
        n = 10_000
        assert B.upper_bound(n) / n == pytest.approx(1 + math.sqrt(2), abs=1e-3)

    def test_lower_is_about_1_5_n(self):
        n = 10_000
        assert B.lower_bound(n) / n == pytest.approx(1.5, abs=1e-3)


class TestLegacyBounds:
    def test_trivial_bound(self):
        assert B.trivial_upper_bound(7) == 49

    def test_static_path(self):
        assert B.static_path_time(8) == 7

    def test_nlogn(self):
        assert B.nlogn_upper_bound(1) == 0
        assert B.nlogn_upper_bound(8) == 24
        assert B.nlogn_upper_bound(16) == 64

    def test_loglog_degenerates_small_n(self):
        assert B.fugger_nowak_winkler_upper_bound(2) == 4

    def test_loglog_value(self):
        # 2·16·log2(log2 16) + 2·16 = 32·2 + 32 = 96.
        assert B.fugger_nowak_winkler_upper_bound(16) == 96

    def test_restricted_bounds_linear_in_n(self):
        assert B.k_leaves_upper_bound(10, 3) == 60
        assert B.k_inner_upper_bound(10, 3) == 60
        assert B.k_leaves_upper_bound(20, 3) == 2 * B.k_leaves_upper_bound(10, 3)

    def test_restricted_bounds_reject_bad_k(self):
        with pytest.raises(ValueError):
            B.k_leaves_upper_bound(10, 0)
        with pytest.raises(ValueError):
            B.k_inner_upper_bound(10, -1)


class TestOrderingAsymptotics:
    def test_figure1_ordering_large_n(self):
        # For large n: new linear < loglog < nlogn < trivial (Figure 1's story).
        n = 4096
        assert (
            B.upper_bound(n)
            < B.fugger_nowak_winkler_upper_bound(n)
            < B.nlogn_upper_bound(n)
            < B.trivial_upper_bound(n)
        )

    def test_crossover_nlogn(self):
        cross = B.crossover_nlogn_vs_linear()
        assert B.nlogn_upper_bound(cross) > B.upper_bound(cross)
        assert B.nlogn_upper_bound(cross - 1) <= B.upper_bound(cross - 1)

    def test_crossover_loglog(self):
        cross = B.crossover_loglog_vs_linear()
        assert B.fugger_nowak_winkler_upper_bound(cross) > B.upper_bound(cross)

    def test_all_bounds_keys(self):
        table = B.all_bounds(32, k=2)
        assert table["new_linear"] == B.upper_bound(32)
        assert table["k_leaves_k=2"] == B.k_leaves_upper_bound(32, 2)
        assert len(table) == 8


def test_linear_constant():
    assert B.LINEAR_CONSTANT == pytest.approx(2.41421356, abs=1e-6)
