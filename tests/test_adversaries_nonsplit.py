"""Tests for the nonsplit-graph adversaries (related work, E6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversaries.nonsplit import (
    NonsplitAdversary,
    broadcast_time_nonsplit,
    cyclic_nonsplit_graph,
    nonsplit_radius,
    random_nonsplit_graph,
)
from repro.core.product import is_nonsplit
from repro.errors import AdversaryError, InvalidGraphError


class TestGraphFamilies:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 16])
    def test_cyclic_family_is_nonsplit(self, n):
        assert is_nonsplit(cyclic_nonsplit_graph(n))

    def test_cyclic_rejects_small_window(self):
        with pytest.raises(InvalidGraphError):
            cyclic_nonsplit_graph(8, window=2)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_family_is_nonsplit(self, seed):
        rng = np.random.default_rng(seed)
        assert is_nonsplit(random_nonsplit_graph(12, rng=rng))

    def test_random_family_reflexive(self):
        a = random_nonsplit_graph(8, rng=np.random.default_rng(0))
        assert a.diagonal().all()

    def test_in_degree_parameter_respected_roughly(self):
        a = random_nonsplit_graph(20, in_degree=4, rng=np.random.default_rng(1))
        # Repairs may add a few edges, but columns stay small-ish.
        assert a.sum(axis=0).max() <= 10


class TestNonsplitAdversary:
    @pytest.mark.parametrize("mode", ["cyclic", "random", "rotating"])
    def test_modes_complete_fast(self, mode):
        n = 16
        t, state = broadcast_time_nonsplit(NonsplitAdversary(n, mode=mode), n)
        assert state.is_broadcast_complete()
        # Nonsplit graphs cannot stall: much faster than the tree bound.
        assert t <= n

    def test_rejects_unknown_mode(self):
        with pytest.raises(AdversaryError):
            NonsplitAdversary(5, mode="bogus")

    def test_random_mode_reproducible(self):
        n = 10
        t1, _ = broadcast_time_nonsplit(NonsplitAdversary(n, seed=4), n)
        t2, _ = broadcast_time_nonsplit(NonsplitAdversary(n, seed=4), n)
        assert t1 == t2

    def test_split_graph_detected(self):
        class Liar(NonsplitAdversary):
            def next_graph(self, state, round_index):
                return np.eye(self._n, dtype=bool)  # identity is split

        with pytest.raises(AdversaryError, match="split graph"):
            broadcast_time_nonsplit(Liar(5), 5)


class TestRadius:
    def test_cyclic_radius_small(self):
        # Columns of size > n/2 merge everyone within about log rounds.
        assert nonsplit_radius(cyclic_nonsplit_graph(16)) <= 4

    def test_complete_graph_radius_one(self):
        assert nonsplit_radius(np.ones((5, 5), dtype=bool)) == 1

    def test_radius_grows_slowly(self):
        # The [9] claim shape: radius is way below n.
        for n in (8, 32, 64):
            assert nonsplit_radius(cyclic_nonsplit_graph(n)) <= 8
