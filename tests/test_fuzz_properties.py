"""Property-based fuzz suite over randomized tree sequences.

Universally-quantified invariants from the paper, asserted on random
adversarial inputs across BOTH matrix backends:

* monotonicity -- reach sets only grow: reach counts and edge counts are
  non-decreasing round over round, and a completed broadcast stays
  completed (so ``t*`` is monotone in rounds: extending a sequence never
  changes an achieved ``t*``);
* Figure 1 / Theorem 3.1 bounds -- every sequence long enough completes,
  with ``1 <= t* <= ⌈(1+√2)n − 1⌉ <= n²`` (n >= 2);
* composition associativity -- ``(A ∘ B) ∘ C = A ∘ (B ∘ C)`` both for the
  dense reference product and through each backend's
  ``compose_with_graph`` kernel (which exercises the word-parallel bitset
  ``bool_product``);
* per-round gains accounting -- ``gains_under`` predicts exactly the
  reach-size delta of playing the tree;
* cross-backend equality -- dense and bitset agree on ``t*``, the final
  matrix, and every intermediate reach count.

Runs are deterministic: hypothesis is ``derandomize``d (CI exercises the
suite under a fixed seed on both backends).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core import matrix as M
from repro.core.backend import get_backend, use_backend
from repro.core.bounds import trivial_upper_bound, upper_bound
from repro.core.broadcast import run_sequence
from repro.core.state import BroadcastState
from repro.trees.generators import random_tree
from repro.trees.rooted_tree import RootedTree

BACKENDS = ["dense", "bitset"]

FUZZ = settings(
    derandomize=True,
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def tree_sequences(draw, min_n: int = 2, max_n: int = 12, max_len: int = 24):
    """A random (n, [trees]) pair over a shared node count."""
    n = draw(st.integers(min_n, max_n))
    length = draw(st.integers(1, max_len))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return n, [random_tree(n, rng) for _ in range(length)]


@st.composite
def reflexive_matrices(draw, max_n: int = 24):
    """A random reflexive 0/1 matrix (product graphs are reflexive)."""
    n = draw(st.integers(1, max_n))
    seed = draw(st.integers(0, 2**31 - 1))
    density = draw(st.floats(0.05, 0.9))
    a = np.random.default_rng(seed).random((n, n)) < density
    np.fill_diagonal(a, True)
    return a


# ----------------------------------------------------------------------
# Monotonicity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@FUZZ
@given(tree_sequences())
def test_reach_and_edges_nondecreasing(backend, seq):
    n, trees = seq
    with use_backend(backend):
        state = BroadcastState.initial(n)
        prev_reach = state.reach_sizes()
        prev_edges = state.edge_count()
        completed = False
        for tree in trees:
            state.apply_tree_inplace(tree)
            reach = state.reach_sizes()
            assert (reach >= prev_reach).all()
            assert state.edge_count() >= prev_edges
            if completed:  # broadcast never un-completes
                assert state.is_broadcast_complete()
            completed = completed or state.is_broadcast_complete()
            prev_reach, prev_edges = reach, state.edge_count()


@pytest.mark.parametrize("backend", BACKENDS)
@FUZZ
@given(tree_sequences(max_len=16), st.integers(1, 8))
def test_tstar_monotone_in_rounds(backend, seq, extra):
    """Extending a sequence never changes an achieved ``t*``."""
    n, trees = seq
    rng = np.random.default_rng(len(trees) * 7919 + n)
    longer = trees + [random_tree(n, rng) for _ in range(extra)]
    with use_backend(backend):
        t_short = run_sequence(trees, n=n, stop_at_broadcast=False).t_star
        t_long = run_sequence(longer, n=n, stop_at_broadcast=False).t_star
    if t_short is not None:
        assert t_long == t_short
    elif t_long is not None:
        assert len(trees) < t_long <= len(longer)


# ----------------------------------------------------------------------
# Figure 1 / Theorem 3.1 bounds
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@FUZZ
@given(tree_sequences(max_n=10, max_len=1))
def test_tstar_within_figure1_bounds(backend, seq):
    """Any sufficiently long sequence completes within the paper's bounds."""
    n, trees = seq
    rng = np.random.default_rng(n * 31337)
    padded = trees + [
        random_tree(n, rng) for _ in range(upper_bound(n) - len(trees))
    ]
    with use_backend(backend):
        t = run_sequence(padded, n=n).t_star
    assert t is not None, "Theorem 3.1: broadcast must complete by the UB"
    assert 1 <= t <= upper_bound(n) <= trivial_upper_bound(n)


# ----------------------------------------------------------------------
# Composition associativity
# ----------------------------------------------------------------------


@FUZZ
@given(st.integers(2, 20), st.integers(0, 2**31 - 1))
def test_bool_product_associative_dense(n, seed):
    rng = np.random.default_rng(seed)
    a, b, c = (rng.random((n, n)) < 0.25 for _ in range(3))
    left = M.bool_product(M.bool_product(a, b), c)
    right = M.bool_product(a, M.bool_product(b, c))
    assert (left == right).all()


@pytest.mark.parametrize("backend", BACKENDS)
@FUZZ
@given(reflexive_matrices(), st.integers(0, 2**31 - 1))
def test_compose_with_graph_associative(backend, a, seed):
    """Backend composition kernels respect ``(A∘B)∘C = A∘(B∘C)``."""
    n = a.shape[0]
    rng = np.random.default_rng(seed)
    b = rng.random((n, n)) < 0.3
    c = rng.random((n, n)) < 0.3
    np.fill_diagonal(b, True)
    np.fill_diagonal(c, True)
    bk = get_backend(backend)
    ha = bk.from_dense(a)
    left = bk.compose_with_graph(bk.compose_with_graph(ha, b), c)
    right = bk.compose_with_graph(ha, M.bool_product(b, c))
    assert (bk.to_dense(left) == bk.to_dense(right)).all()
    assert (bk.to_dense(left) == M.bool_product(M.bool_product(a, b), c)).all()


@pytest.mark.parametrize("backend", BACKENDS)
@FUZZ
@given(tree_sequences(max_len=6))
def test_tree_composition_equals_generic_product(backend, seq):
    """The tree fast path equals the generic ``A ∘ (tree + loops)``."""
    n, trees = seq
    bk = get_backend(backend)
    state = bk.identity(n)
    dense = M.identity_matrix(n)
    for tree in trees:
        state = bk.compose_with_tree(state, tree.parent_array_numpy())
        dense = M.bool_product(dense, tree.to_adjacency(include_self_loops=True))
        assert (bk.to_dense(state) == dense).all()


# ----------------------------------------------------------------------
# Gains accounting
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@FUZZ
@given(tree_sequences(max_len=10))
def test_gains_under_predicts_reach_delta(backend, seq):
    n, trees = seq
    with use_backend(backend):
        state = BroadcastState.initial(n)
        for tree in trees[:-1]:
            state.apply_tree_inplace(tree)
        tree = trees[-1]
        gains = state.gains_under(tree)
        before = state.reach_sizes()
        after = state.apply_tree(tree).reach_sizes()
        assert (gains >= 0).all()
        assert (before + gains == after).all()


# ----------------------------------------------------------------------
# Cross-backend equality
# ----------------------------------------------------------------------


@FUZZ
@given(tree_sequences())
def test_backends_agree_roundwise(seq):
    n, trees = seq
    dense_state = BroadcastState.initial(n, backend="dense")
    bitset_state = BroadcastState.initial(n, backend="bitset")
    for tree in trees:
        dense_state.apply_tree_inplace(tree)
        bitset_state.apply_tree_inplace(tree)
        assert (dense_state.reach_sizes() == bitset_state.reach_sizes()).all()
        assert dense_state.edge_count() == bitset_state.edge_count()
        assert (
            dense_state.is_broadcast_complete()
            == bitset_state.is_broadcast_complete()
        )
    assert (dense_state.reach_matrix == bitset_state.reach_matrix).all()


@FUZZ
@given(tree_sequences(min_n=2, max_n=9, max_len=12))
def test_backends_agree_on_tstar(seq):
    n, trees = seq
    assert (
        run_sequence(trees, n=n, backend="dense").t_star
        == run_sequence(trees, n=n, backend="bitset").t_star
    )


KERNEL_PAIRS = [
    (backend, kernel)
    for backend in BACKENDS
    for kernel in kernels.available_kernels(backend)
]


@pytest.mark.parametrize("backend,kernel", KERNEL_PAIRS)
@FUZZ
@given(reflexive_matrices(), st.integers(0, 2**31 - 1))
def test_forced_kernel_compose_matches_reference(backend, kernel, a, seed):
    """Every registered kernel computes exactly ``bool_product``."""
    n = a.shape[0]
    rng = np.random.default_rng(seed)
    g = rng.random((n, n)) < 0.3
    np.fill_diagonal(g, True)
    bk = get_backend(backend)
    with kernels.use_kernel(kernel):
        got = bk.to_dense(bk.compose_with_graph(bk.from_dense(a), g))
    assert (got == M.bool_product(a, g)).all()
