"""The word-parallel bitset ``bool_product`` against the dense reference.

The bitset backend used to fall back to dense boolean matmul for
``compose_with_graph`` (the only kernel the nonsplit experiments need).
:func:`repro.core.bitset.bool_product_words` replaces that with an
OR-AND reduction over packed heard-of rows; these tests pin exact
agreement with :func:`repro.core.matrix.bool_product` on 100+ randomized
0/1 matrices up to n = 256, the chunking boundaries, validation
behaviour, and the E6 nonsplit integration under ``REPRO_BACKEND=bitset``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import matrix as M
from repro.core.backend import get_backend, use_backend
from repro.core.bitset import BitsetBackend, bool_product_words
from repro.errors import DimensionMismatchError, InvalidGraphError

BITSET = get_backend("bitset")


def _random_reflexive(n: int, density: float, rng: np.random.Generator):
    a = rng.random((n, n)) < density
    np.fill_diagonal(a, True)
    return a


def _assert_products_agree(a: np.ndarray, g: np.ndarray) -> None:
    want = M.bool_product(a, g)
    got = BITSET.to_dense(BITSET.compose_with_graph(BITSET.from_dense(a), g))
    np.testing.assert_array_equal(got, want)


class TestRandomizedEquivalence:
    # 3 densities x 34 seeds = 102 randomized cases, n drawn up to 256.
    @pytest.mark.parametrize("density", [0.05, 0.3, 0.8])
    @pytest.mark.parametrize("seed", range(34))
    def test_matches_dense_matmul(self, density, seed):
        rng = np.random.default_rng(10_000 * seed + int(density * 100))
        n = int(rng.integers(1, 257))
        a = rng.random((n, n)) < density
        g = rng.random((n, n)) < density
        _assert_products_agree(a, g)

    @pytest.mark.parametrize(
        "n",
        [1, 2, 63, 64, 65, 127, 128, 129, 255, 256],
        ids=lambda n: f"n{n}",
    )
    def test_word_boundaries(self, n):
        """Sizes straddling the 64-bit word packing boundaries."""
        rng = np.random.default_rng(n)
        _assert_products_agree(
            _random_reflexive(n, 0.4, rng), _random_reflexive(n, 0.4, rng)
        )

    def test_identity_is_neutral(self):
        rng = np.random.default_rng(0)
        a = _random_reflexive(100, 0.3, rng)
        eye = np.eye(100, dtype=np.bool_)
        _assert_products_agree(a, eye)
        np.testing.assert_array_equal(
            BITSET.to_dense(
                BITSET.compose_with_graph(BITSET.from_dense(eye), a)
            ),
            a,
        )

    def test_all_ones_absorbs(self):
        n = 70
        ones = np.ones((n, n), dtype=np.bool_)
        a = _random_reflexive(n, 0.2, np.random.default_rng(1))
        _assert_products_agree(a, ones)
        _assert_products_agree(ones, a)

    def test_empty_graph_composes_to_empty(self):
        # No self-loops in g: x reaches y in R∘G only through g-edges.
        n = 50
        a = _random_reflexive(n, 0.5, np.random.default_rng(2))
        g = np.zeros((n, n), dtype=np.bool_)
        _assert_products_agree(a, g)


class TestChunking:
    def test_chunked_paths_agree(self):
        """Large n forces multiple OR-reduce chunks; result is unchanged."""
        rng = np.random.default_rng(3)
        n = 1100  # chunk = (1 << 22) // (n * words) < n => several chunks
        a = _random_reflexive(n, 0.02, rng)
        g = _random_reflexive(n, 0.02, rng)
        packed = BITSET.from_dense(a)
        got = BITSET.to_dense(bool_product_words(packed, g))
        np.testing.assert_array_equal(got, M.bool_product(a, g))

    def test_padding_bits_stay_zero(self):
        """Kernels must never set bits beyond n in the packed words."""
        rng = np.random.default_rng(4)
        n = 67  # 2 words, 61 padding bits
        out = BITSET.compose_with_graph(
            BITSET.from_dense(_random_reflexive(n, 0.5, rng)),
            _random_reflexive(n, 0.5, rng),
        )
        pad_mask = np.uint64((1 << 64) - (1 << (n % 64)))
        assert (out[:, -1] & pad_mask).max() == 0


class TestValidation:
    def test_rejects_non_01_graph(self):
        a = BITSET.identity(4)
        with pytest.raises(InvalidGraphError):
            BITSET.compose_with_graph(a, np.full((4, 4), 2))

    def test_rejects_shape_mismatch(self):
        a = BITSET.identity(4)
        with pytest.raises(DimensionMismatchError):
            BITSET.compose_with_graph(a, np.eye(5, dtype=np.bool_))

    def test_no_dense_fallback(self):
        """The override exists (not inherited from MatrixBackend)."""
        assert "compose_with_graph" in BitsetBackend.__dict__


class TestNonsplitIntegration:
    def test_apply_graph_cross_backend(self):
        from repro.adversaries.nonsplit import cyclic_nonsplit_graph
        from repro.core.state import BroadcastState

        for n in (5, 33, 64, 90):
            g = cyclic_nonsplit_graph(n)
            dense = BroadcastState.initial(n, backend="dense").apply_graph(g)
            packed = BroadcastState.initial(n, backend="bitset").apply_graph(g)
            np.testing.assert_array_equal(
                dense.reach_matrix, packed.reach_matrix
            )

    def test_e6_experiment_under_bitset(self):
        """The whole nonsplit experiment passes on the packed kernel."""
        from repro.experiments import get_experiment

        with use_backend("bitset"):
            table = get_experiment("E6").run()
        assert table.checks_passed
