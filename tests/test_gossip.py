"""Tests for the gossip extension and the nonsplit reduction (E6/E7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversaries.oblivious import RandomTreeAdversary, StaticTreeAdversary
from repro.adversaries.zeiner import CyclicFamilyAdversary
from repro.gossip.consensus import (
    blocks_are_nonsplit,
    common_in_neighbor,
    nonsplit_block_count,
    simulate_nonsplit_rounds,
)
from repro.gossip.gossip import gossip_time_adversary, gossip_time_sequence
from repro.core.product import is_nonsplit
from repro.errors import DimensionMismatchError
from repro.trees.generators import path, random_tree, star


class TestGossipSequence:
    def test_star_never_gossips(self):
        # The center reaches everyone, but leaves never reach each other.
        res = gossip_time_sequence([star(4)] * 20, 4)
        assert res.broadcast_time == 1
        assert res.gossip_time is None
        assert not res.completed

    def test_gossip_requires_all_rows(self):
        # Alternate stars at different centers: eventually all-to-all.
        trees = [star(3, center=c) for c in (0, 1, 2)] * 3
        res = gossip_time_sequence(trees, 3)
        assert res.completed
        assert res.gossip_time >= res.broadcast_time
        assert res.gap >= 0

    def test_single_node(self):
        res = gossip_time_sequence([], 1)
        assert res.broadcast_time is None  # zero rounds were run


class TestGossipAdversary:
    def test_adversarial_trees_prevent_gossip_forever(self):
        # Structural fact: a static path never lets the last node spread.
        res = gossip_time_adversary(StaticTreeAdversary(path(6)), 6)
        assert res.broadcast_time == 5
        assert res.gossip_time is None

    def test_cyclic_adversary_also_prevents_gossip(self):
        res = gossip_time_adversary(CyclicFamilyAdversary(6), 6)
        assert res.gossip_time is None

    def test_random_trees_gossip_quickly(self):
        res = gossip_time_adversary(RandomTreeAdversary(10, seed=2), 10)
        assert res.completed
        assert res.gossip_time <= 40

    def test_explicit_cap(self):
        res = gossip_time_adversary(RandomTreeAdversary(8, seed=0), 8, max_rounds=1)
        assert res.gossip_time is None


class TestNonsplitReduction:
    """Lemma N: composing n-1 rooted trees yields a nonsplit graph [1]."""

    @pytest.mark.parametrize("seed", range(6))
    def test_blocks_of_random_trees_are_nonsplit(self, seed):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(2, 9))
        trees = [random_tree(n, gen) for _ in range(3 * (n - 1))]
        assert blocks_are_nonsplit(trees, n)

    def test_static_path_blocks_nonsplit(self):
        # Even the most stubborn adversary sequence composes nonsplit.
        n = 7
        assert blocks_are_nonsplit([path(n)] * (n - 1), n)

    def test_adversarial_blocks_nonsplit(self):
        n = 6
        from repro.core.broadcast import run_adversary

        result = run_adversary(CyclicFamilyAdversary(n), n, keep_trees=True)
        trees = result.trees
        # Pad with paths so at least one full block exists.
        trees = trees + [path(n)] * (n - 1)
        assert blocks_are_nonsplit(trees, n)

    def test_fewer_than_block_rounds_can_be_split(self):
        # A single tree round is split in general; the reduction really
        # needs n - 1 rounds.
        n = 5
        blocks = simulate_nonsplit_rounds([path(n)] * (n - 1), n)
        assert len(blocks) == 1
        assert is_nonsplit(blocks[0])
        assert not is_nonsplit(path(n).to_adjacency())

    def test_block_count(self):
        assert nonsplit_block_count(10, 6) == 2
        assert nonsplit_block_count(4, 6) == 0
        assert nonsplit_block_count(10, 1) == 0

    def test_requires_n_ge_2(self):
        with pytest.raises(DimensionMismatchError):
            simulate_nonsplit_rounds([], 1)

    def test_common_in_neighbor_witness(self):
        n = 5
        from repro.core.product import product_of_trees

        block = product_of_trees([path(n)] * (n - 1))
        for x in range(n):
            for y in range(n):
                w = common_in_neighbor(block, x, y)
                assert w >= 0
                assert block[w, x] and block[w, y]

    def test_common_in_neighbor_absent(self):
        a = np.eye(3, dtype=bool)
        assert common_in_neighbor(a, 0, 1) == -1
