"""Tests for the compiled parent-schedule cache (:mod:`repro.trees.compile`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.trees.compile import (
    clear_compile_cache,
    compile_cache_info,
    cycle_schedule,
    parent_row,
    sequence_schedule,
    static_schedule,
)
from repro.trees.generators import path, star
from repro.trees.rooted_tree import RootedTree


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


class TestParentRow:
    def test_matches_parent_array(self):
        tree = path(6)
        assert (parent_row(tree) == tree.parent_array_numpy()).all()

    def test_memoized_across_instances(self):
        # Two structurally identical trees share one cached array.
        a = RootedTree([0, 0, 1, 2])
        b = RootedTree([0, 0, 1, 2])
        assert parent_row(a) is parent_row(b)

    def test_rows_are_read_only(self):
        row = parent_row(star(5))
        with pytest.raises(ValueError):
            row[0] = 3


class TestStaticSchedule:
    def test_shape_and_content(self):
        tree = path(4)
        schedule = static_schedule(tree, 7)
        assert schedule.shape == (7, 4)
        assert (schedule == np.asarray(tree.parents)).all()

    def test_is_constant_memory_view(self):
        # Broadcast views share one row regardless of the round count.
        schedule = static_schedule(path(4), 10_000)
        assert schedule.strides[0] == 0
        assert not schedule.flags.writeable

    def test_negative_rounds_rejected(self):
        with pytest.raises(SimulationError, match="rounds"):
            static_schedule(path(4), -1)


class TestSequenceSchedule:
    def test_hold_clamps_to_last_tree(self):
        trees = [path(4), star(4)]
        schedule = sequence_schedule(trees, 5, after="hold")
        assert (schedule[0] == parent_row(trees[0])).all()
        for t in range(1, 5):
            assert (schedule[t] == parent_row(trees[1])).all()

    def test_repeat_cycles(self):
        trees = [path(4), star(4)]
        schedule = sequence_schedule(trees, 6, after="repeat")
        for t in range(6):
            assert (schedule[t] == parent_row(trees[t % 2])).all()
        assert (cycle_schedule(trees, 6) == schedule).all()

    def test_error_mode_refuses_past_the_end(self):
        trees = [path(4), star(4)]
        assert sequence_schedule(trees, 2, after="error") is not None
        assert sequence_schedule(trees, 3, after="error") is None

    def test_bad_mode_rejected(self):
        with pytest.raises(SimulationError, match="after"):
            sequence_schedule([path(4)], 2, after="loop")

    def test_empty_sequence_rejected(self):
        with pytest.raises(SimulationError, match="empty"):
            sequence_schedule([], 2)

    def test_memoization_hits(self):
        trees = [path(5), star(5)]
        first = sequence_schedule(trees, 8, after="repeat")
        before = compile_cache_info()
        second = sequence_schedule(trees, 8, after="repeat")
        after = compile_cache_info()
        assert second is first
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_distinct_horizons_are_distinct_entries(self):
        trees = [path(5), star(5)]
        a = sequence_schedule(trees, 8, after="repeat")
        b = sequence_schedule(trees, 16, after="repeat")
        assert a.shape == (8, 5) and b.shape == (16, 5)
        assert (b[:8] == a).all()

    def test_schedules_are_read_only(self):
        schedule = sequence_schedule([path(4), star(4)], 4, after="repeat")
        with pytest.raises(ValueError):
            schedule[0, 0] = 1


class TestCachedSchedule:
    def test_builder_runs_once_per_key(self):
        from repro.trees.compile import cached_schedule

        calls = []

        def build():
            calls.append(1)
            return np.zeros((3, 4), dtype=np.int64)

        first = cached_schedule(("test", 4, 3), build)
        second = cached_schedule(("test", 4, 3), build)
        assert second is first
        assert len(calls) == 1
        assert not first.flags.writeable

    def test_rotating_and_alternating_schedules_are_memoized(self):
        from repro.adversaries.paths import (
            AlternatingPathAdversary,
            RotatingPathAdversary,
        )

        for adv in (RotatingPathAdversary(8, shift=3), AlternatingPathAdversary(8, period=2)):
            first = adv.compile_schedule(8, 12)
            before = compile_cache_info()["misses"]
            second = type(adv)(8, 3) if isinstance(adv, RotatingPathAdversary) else (
                AlternatingPathAdversary(8, period=2)
            )
            assert second.compile_schedule(8, 12) is first
            assert compile_cache_info()["misses"] == before


class TestCacheManagement:
    def test_info_counts(self):
        clear_compile_cache()
        parent_row(path(3))
        sequence_schedule([path(3), star(3)], 4)
        info = compile_cache_info()
        assert info["rows"] >= 1
        assert info["schedules"] == 1

    def test_clear_resets_everything(self):
        sequence_schedule([path(3), star(3)], 4)
        clear_compile_cache()
        info = compile_cache_info()
        assert info == {"rows": 0, "schedules": 0, "hits": 0, "misses": 0}
