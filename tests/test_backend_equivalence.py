"""Cross-backend equivalence: dense and bitset must be indistinguishable.

The central correctness net for the bitset backend: randomized tree
sequences (seeded, n up to 128) must produce identical broadcast times,
broadcaster sets, reach/heard-of counts, matrices, and keys under both
backends, and the search adversaries must make identical decisions.
``N_VALUES x CASES_PER_N`` gives the randomized cross-backend case count
(asserted >= 200 below).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.beam import BeamSearchAdversary
from repro.adversaries.greedy import GreedyDelayAdversary, score_tree
from repro.adversaries.zeiner import CyclicFamilyAdversary
from repro.core import kernels
from repro.core import matrix as M
from repro.core.backend import available_backends, get_backend
from repro.core.broadcast import run_adversary, run_sequence
from repro.core.product import product_of_trees
from repro.core.state import BroadcastState
from repro.engine.batch import score_candidates
from repro.trees.generators import random_tree
from repro.trees.rooted_tree import RootedTree

#: Node counts straddling every packing boundary (1 bit .. 2 words).
N_VALUES = [
    1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 32, 33,
    63, 64, 65, 96, 127, 128,
]
CASES_PER_N = 10

DENSE = get_backend("dense")
BITSET = get_backend("bitset")


def test_case_count_meets_bar():
    """The randomized cross-backend sweep below covers >= 200 cases."""
    assert len(N_VALUES) * CASES_PER_N >= 200


def _random_sequence(n: int, rng: np.random.Generator):
    rounds = int(rng.integers(1, 3 * n + 2))
    return [random_tree(n, rng) for _ in range(rounds)]


@pytest.mark.parametrize("n", N_VALUES)
def test_random_sequences_agree(n):
    """t*, broadcasters, counts, and matrices agree on random sequences."""
    for seed in range(CASES_PER_N):
        rng = np.random.default_rng(1000 * n + seed)
        trees = _random_sequence(n, rng)
        dense = run_sequence(trees, n=n, stop_at_broadcast=False, backend="dense")
        packed = run_sequence(trees, n=n, stop_at_broadcast=False, backend="bitset")
        assert dense.t_star == packed.t_star
        assert dense.broadcasters == packed.broadcasters
        ds, ps = dense.final_state, packed.final_state
        assert (ds.reach_sizes() == ps.reach_sizes()).all()
        assert (ds.heard_of_sizes() == ps.heard_of_sizes()).all()
        assert ds.edge_count() == ps.edge_count()
        assert (ds.reach_matrix == ps.reach_matrix).all()
        assert ds.key() == ps.key()
        assert ds == ps


@pytest.mark.parametrize("n", [2, 3, 5, 9, 17, 40, 65])
def test_stepwise_queries_agree(n):
    """Every per-round query agrees while a run is in flight."""
    rng = np.random.default_rng(n)
    d = BroadcastState.initial(n, backend="dense")
    b = BroadcastState.initial(n, backend="bitset")
    for _ in range(n + 2):
        tree = random_tree(n, rng)
        d.apply_tree_inplace(tree)
        b.apply_tree_inplace(tree)
        assert d.is_broadcast_complete() == b.is_broadcast_complete()
        assert d.broadcasters() == b.broadcasters()
        assert d.edge_count() == b.edge_count()
        x = int(rng.integers(n))
        assert d.reach_set(x) == b.reach_set(x)
        assert d.heard_of_set(x) == b.heard_of_set(x)
        assert d.missing(x) == b.missing(x)
        probe = random_tree(n, rng)
        assert (d.gains_under(probe) == b.gains_under(probe)).all()
        assert d.would_stall(probe) == b.would_stall(probe)
        assert (d.reach_matrix_view() == b.reach_matrix_view()).all()


@pytest.mark.parametrize("n", [2, 4, 8, 19, 33, 80])
def test_dense_roundtrip(n):
    """from_dense/to_dense is exact for arbitrary reflexive matrices."""
    rng = np.random.default_rng(n)
    a = rng.random((n, n)) < 0.35
    np.fill_diagonal(a, True)
    packed = BITSET.from_dense(a)
    assert (BITSET.to_dense(packed) == a).all()
    assert BITSET.matrix_key(packed) == DENSE.matrix_key(a.copy())
    assert (BITSET.full_rows(packed) == a.all(axis=1)).all()


@pytest.mark.parametrize("n", [3, 6, 12, 20])
def test_product_of_trees_agrees(n):
    rng = np.random.default_rng(n)
    trees = [random_tree(n, rng) for _ in range(n - 1)]
    assert (
        product_of_trees(trees, backend="dense")
        == product_of_trees(trees, backend="bitset")
    ).all()


@pytest.mark.parametrize("n", [4, 7, 12, 24])
@pytest.mark.parametrize(
    "factory",
    [
        lambda n: GreedyDelayAdversary(n, seed=3),
        lambda n: BeamSearchAdversary(n, depth=2, width=4, seed=3),
        lambda n: CyclicFamilyAdversary(n),
    ],
    ids=["greedy", "beam", "cyclic-family"],
)
def test_adversaries_play_identically(n, factory):
    """Search adversaries pick the same trees and t* on both backends."""
    dense = run_adversary(factory(n), n, keep_trees=True, backend="dense")
    packed = run_adversary(factory(n), n, keep_trees=True, backend="bitset")
    assert dense.t_star == packed.t_star
    assert dense.broadcasters == packed.broadcasters
    assert dense.trees == packed.trees


@pytest.mark.parametrize("n", [2, 5, 11, 30, 70])
def test_batched_scoring_matches_reference(n):
    """score_candidates == score_tree, per candidate, on both backends."""
    rng = np.random.default_rng(n)
    for backend in ("dense", "bitset"):
        state = BroadcastState.initial(n, backend=backend)
        for _ in range(n // 2 + 1):
            state.apply_tree_inplace(random_tree(n, rng))
        candidates = [random_tree(n, rng) for _ in range(8)]
        assert score_candidates(state, candidates) == [
            score_tree(state, t) for t in candidates
        ]


@given(data=st.data(), n=st.integers(min_value=1, max_value=70))
@settings(max_examples=60, deadline=None)
def test_compose_property(data, n):
    """Property: one composition step agrees for arbitrary matrix + tree."""
    bits = data.draw(
        st.lists(
            st.lists(st.booleans(), min_size=n, max_size=n),
            min_size=n,
            max_size=n,
        )
    )
    a = np.array(bits, dtype=np.bool_)
    np.fill_diagonal(a, True)
    seed = data.draw(st.integers(min_value=0, max_value=2**31))
    tree = random_tree(n, np.random.default_rng(seed))
    parent = tree.parent_array_numpy()
    want = a | a[:, parent]
    got = BITSET.to_dense(BITSET.compose_with_tree(BITSET.from_dense(a), parent))
    assert (got == want).all()


def test_backend_conversion_between_states():
    state = BroadcastState.initial(9, backend="dense")
    rng = np.random.default_rng(0)
    for _ in range(4):
        state.apply_tree_inplace(random_tree(9, rng))
    other = state.with_backend("bitset")
    assert other.backend is BITSET
    assert other == state
    assert (other.reach_matrix == state.reach_matrix).all()


# ----------------------------------------------------------------------
# Kernel sweeps: every graph-compose kernel is a drop-in replacement
# ----------------------------------------------------------------------


class TestKernelSweep:
    """Force each registered kernel and re-check cross-backend equality.

    ``REPRO_KERNEL`` must never be observable in results -- only in
    wall-clock.  These sweeps drive the same randomized matrices through
    every kernel registered for each backend and demand byte equality
    with the ``bool_product`` reference.
    """

    @pytest.mark.parametrize("kernel", kernels.available_kernels("bitset"))
    @pytest.mark.parametrize("n", [1, 17, 33, 64, 96, 128])
    def test_forced_bitset_kernel_matches_reference(self, kernel, n, monkeypatch):
        monkeypatch.setenv(kernels.ENV_KERNEL, kernel)
        rng = np.random.default_rng(7000 + n)
        a = rng.random((n, n)) < 0.4
        np.fill_diagonal(a, True)
        g = rng.random((n, n)) < 0.3
        np.fill_diagonal(g, True)
        got = BITSET.to_dense(BITSET.compose_with_graph(BITSET.from_dense(a), g))
        assert (got == M.bool_product(a, g)).all()

    @pytest.mark.parametrize("kernel", kernels.available_kernels("dense"))
    @pytest.mark.parametrize("n", [1, 17, 64, 128])
    def test_forced_dense_kernel_matches_reference(self, kernel, n, monkeypatch):
        monkeypatch.setenv(kernels.ENV_KERNEL, kernel)
        rng = np.random.default_rng(8000 + n)
        a = rng.random((n, n)) < 0.4
        np.fill_diagonal(a, True)
        g = rng.random((n, n)) < 0.3
        np.fill_diagonal(g, True)
        got = DENSE.compose_with_graph(a.copy(), g)
        assert (got == M.bool_product(a, g)).all()

    @pytest.mark.parametrize("kernel", kernels.available_kernels("bitset"))
    def test_product_of_trees_invariant_under_kernel(self, kernel):
        n = 65
        rng = np.random.default_rng(65)
        trees = [random_tree(n, rng) for _ in range(5)]
        want = product_of_trees(trees, backend="dense")
        with kernels.use_kernel(kernel):
            got = product_of_trees(trees, backend="bitset")
        assert (got == want).all()


@pytest.mark.skipif(
    "numba" not in available_backends(), reason="numba not installed"
)
@pytest.mark.parametrize("n", [1, 33, 65, 128])
def test_numba_backend_agrees_with_dense(n):
    """When importable, the numba backend joins the equivalence net."""
    rng = np.random.default_rng(9000 + n)
    trees = _random_sequence(n, rng)
    dense = run_sequence(trees, n=n, stop_at_broadcast=False, backend="dense")
    packed = run_sequence(trees, n=n, stop_at_broadcast=False, backend="numba")
    assert dense.t_star == packed.t_star
    assert dense.broadcasters == packed.broadcasters
    assert (dense.final_state.reach_matrix == packed.final_state.reach_matrix).all()
